//! `hrdm-lint` — workspace-aware static analysis for the HRDM engine.
//!
//! The engine carries invariants no general-purpose tool checks: Relaxed
//! atomics are only sound in the metrics crate, locks must be acquired in
//! a consistent order across the group-commit core, library code on the
//! storage/net paths must not panic, the 19-kind wire protocol must stay
//! exhaustively wired, and decode-side allocations must be capped before
//! trusting wire- or disk-derived lengths. This crate scans the workspace
//! with a masking lexer (no `syn`; string literals, comments, and
//! `#[cfg(test)]` regions are excluded) and enforces those invariants as
//! five rules, with inline `// lint: <rule>-ok(<reason>)` waivers and a
//! checked-in `lint.allow` prefix allowlist for sanctioned exceptions.
//!
//! Run it with `cargo run -p hrdm-lint`; it exits non-zero on any
//! unwaived violation. The rule catalog lives in [`rules`].

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lexer;
pub mod rules;
pub mod waiver;
pub mod workspace;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use workspace::SourceFile;

/// One rule violation (possibly waived).
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule that fired, e.g. `no-panic`.
    pub rule: &'static str,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Extra evidence sites (used by lock-order cycles, where a single
    /// violation spans several acquisition points).
    pub anchors: Vec<(String, usize)>,
}

/// The outcome of a full lint run.
#[derive(Default)]
pub struct Report {
    /// Violations not covered by a waiver or the allowlist.
    pub violations: Vec<Violation>,
    /// Violations that were covered, kept for `--verbose` accounting.
    pub waived: Vec<Violation>,
    /// Per-rule count of files each rule actually examined — the
    /// self-check test uses this to prove rules did not silently no-op.
    pub rule_stats: BTreeMap<&'static str, usize>,
}

impl Report {
    /// True when no unwaived violations remain.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// What to scan and which paths carry special meaning per rule.
pub struct LintConfig {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Crates where `Ordering::Relaxed` is sanctioned (metrics only).
    pub obs_crates: Vec<String>,
    /// Crates whose non-test library code must not panic.
    pub panic_crates: Vec<String>,
    /// Files whose decode paths must cap allocations.
    pub decode_files: Vec<String>,
    /// The wire-format definition file.
    pub frame_file: String,
    /// The proptest strategy-coverage pin for the wire format.
    pub coverage_file: String,
}

impl LintConfig {
    /// The engine's own configuration, rooted at `root`.
    pub fn for_root(root: &Path) -> LintConfig {
        LintConfig {
            root: root.to_path_buf(),
            obs_crates: vec!["obs".into()],
            panic_crates: vec![
                "storage".into(),
                "net".into(),
                "query".into(),
                "core".into(),
            ],
            decode_files: vec![
                "crates/net/src/frame.rs".into(),
                "crates/storage/src/codec.rs".into(),
                "crates/storage/src/catalog.rs".into(),
                "crates/storage/src/wal.rs".into(),
                "crates/storage/src/database.rs".into(),
                "crates/storage/src/heap.rs".into(),
                "crates/storage/src/page.rs".into(),
                // Out-of-core layer: page faults and B+tree node reads
                // size buffers from on-disk bytes.
                "crates/storage/src/pool.rs".into(),
                "crates/storage/src/btree.rs".into(),
                "crates/storage/src/paged.rs".into(),
                // Streaming executor: batch buffers sized from caller-
                // supplied options must be capped before allocation.
                "crates/query/src/exec.rs".into(),
                // Telemetry HTTP plane: the request-head reader grows a
                // buffer from socket bytes and must stay bounded.
                "crates/net/src/http.rs".into(),
            ],
            frame_file: "crates/net/src/frame.rs".into(),
            coverage_file: "crates/net/tests/protocol.rs".into(),
        }
    }
}

/// Runs every rule (or just `only`, if given) over the workspace at
/// `config.root` and partitions the results by waiver/allowlist coverage.
pub fn run(config: &LintConfig, only: Option<&str>) -> Result<Report, String> {
    let files = workspace::load_workspace(&config.root)?;
    let allow = Allowlist::load(&config.root)?;
    let mut report = Report::default();

    // Malformed waivers are violations in their own right — an
    // unparseable waiver must not silently fail to waive.
    for file in &files {
        for bad in &file.waivers.bad {
            report.violations.push(Violation {
                rule: "waiver-syntax",
                file: file.rel.clone(),
                line: bad.line,
                message: bad.message.clone(),
                anchors: Vec::new(),
            });
        }
    }

    for rule in rules::all() {
        if only.is_some_and(|name| name != rule.name()) {
            continue;
        }
        let raw = rule.check(config, &files, &mut report.rule_stats);
        for v in raw {
            if covered(&files, &allow, &v) {
                report.waived.push(v);
            } else {
                report.violations.push(v);
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// A violation is covered if its primary site — or, for multi-site
/// violations like lock cycles, *any* anchor — carries a waiver, or if
/// the allowlist exempts the file from the rule.
fn covered(files: &[SourceFile], allow: &Allowlist, v: &Violation) -> bool {
    if allow.covers(v.rule, &v.file) {
        return true;
    }
    let mut sites: Vec<(&str, usize)> = vec![(v.file.as_str(), v.line)];
    sites.extend(v.anchors.iter().map(|(f, l)| (f.as_str(), *l)));
    sites.iter().any(|(file, line)| {
        if allow.covers(v.rule, file) {
            return true;
        }
        files
            .iter()
            .find(|sf| sf.rel == *file)
            .is_some_and(|sf| sf.waivers.covers(v.rule, *line).is_some())
    })
}
