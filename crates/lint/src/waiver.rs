//! Inline waivers: `// lint: <rule>-ok(<reason>)`.
//!
//! A waiver is written as a line comment in the **original** source (the
//! masking lexer blanks comments, so waivers are parsed from the raw
//! text). It suppresses violations of `<rule>` on the waiver's own line
//! and on the line directly below it — so both trailing-comment and
//! line-above styles work:
//!
//! ```text
//! let id = ctr.fetch_add(1, Ordering::Relaxed); // lint: atomic-ordering-ok(uniqueness only)
//!
//! // lint: no-panic-ok(invariant: validated two lines up)
//! let v = map.get(&k).expect("pre-validated");
//! ```
//!
//! A reason is mandatory: `-ok()` with an empty reason is itself reported
//! as a violation of the `waiver-syntax` pseudo-rule, so waivers cannot
//! silently rot into unexplained exemptions.

/// One parsed waiver.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The rule being waived, e.g. `atomic-ordering`.
    pub rule: String,
    /// The justification inside the parentheses.
    pub reason: String,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
}

/// Waivers found in a malformed state (missing reason, unclosed paren).
#[derive(Clone, Debug)]
pub struct BadWaiver {
    /// 1-based line of the malformed waiver.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

/// All waivers in one file, indexed for line lookup.
#[derive(Default)]
pub struct Waivers {
    entries: Vec<Waiver>,
    /// Malformed waivers, surfaced as violations by the engine.
    pub bad: Vec<BadWaiver>,
}

impl Waivers {
    /// Parses every waiver marker in `source`. Callers pass the
    /// strings-masked view of a file (comments kept, string-literal
    /// contents blanked) so markers spelled inside string literals —
    /// fixtures, this parser's own constant — never parse as waivers.
    pub fn parse(source: &str) -> Waivers {
        const MARKER: &str = "// lint:";
        let mut w = Waivers::default();
        for (idx, raw_line) in source.lines().enumerate() {
            let line = idx + 1;
            let Some(pos) = raw_line.find(MARKER) else {
                continue;
            };
            let rest = raw_line[pos + MARKER.len()..].trim_start();
            let Some(ok_at) = rest.find("-ok(") else {
                w.bad.push(BadWaiver {
                    line,
                    message: "waiver must be `// lint: <rule>-ok(<reason>)`".into(),
                });
                continue;
            };
            let rule = rest[..ok_at].trim().to_string();
            let after = &rest[ok_at + 4..];
            let Some(close) = after.rfind(')') else {
                w.bad.push(BadWaiver {
                    line,
                    message: "waiver reason is missing its closing `)`".into(),
                });
                continue;
            };
            let reason = after[..close].trim().to_string();
            if rule.is_empty() || reason.is_empty() {
                w.bad.push(BadWaiver {
                    line,
                    message: "waiver needs both a rule name and a non-empty reason".into(),
                });
                continue;
            }
            w.entries.push(Waiver { rule, reason, line });
        }
        w
    }

    /// Is `rule` waived for a violation on `line`? Matches a waiver on
    /// the same line (trailing comment) or on the line above.
    pub fn covers(&self, rule: &str, line: usize) -> Option<&Waiver> {
        self.entries
            .iter()
            .find(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
    }

    /// All parsed waivers (for reporting counts).
    pub fn all(&self) -> &[Waiver] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_and_line_above_styles_both_cover() {
        let src = "\
a.fetch_add(1, Ordering::Relaxed); // lint: atomic-ordering-ok(stat only)
// lint: no-panic-ok(checked above)
x.unwrap();
";
        let w = Waivers::parse(src);
        assert!(w.bad.is_empty());
        assert!(w.covers("atomic-ordering", 1).is_some());
        assert!(w.covers("no-panic", 3).is_some());
        assert!(w.covers("no-panic", 1).is_none());
        assert!(w.covers("atomic-ordering", 3).is_none());
    }

    #[test]
    fn empty_reason_is_malformed() {
        let src = "x.unwrap(); // lint: no-panic-ok()\n";
        let w = Waivers::parse(src);
        assert!(w.covers("no-panic", 1).is_none());
        assert_eq!(w.bad.len(), 1);
    }

    #[test]
    fn missing_ok_suffix_is_malformed() {
        let src = "// lint: no-panic fine here\n";
        let w = Waivers::parse(src);
        assert_eq!(w.bad.len(), 1);
    }
}
