//! The `hrdm-lint` binary: scans the workspace and exits non-zero on any
//! unwaived violation.
//!
//! ```text
//! cargo run -p hrdm-lint                # lint the workspace
//! cargo run -p hrdm-lint -- --list-rules
//! cargo run -p hrdm-lint -- --rule no-panic
//! cargo run -p hrdm-lint -- --root /path/to/tree --verbose
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use hrdm_lint::{rules, LintConfig};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Option<String> = None;
    let mut list = false;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--rule" => only = args.next(),
            "--list-rules" => list = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                print!(
                    "hrdm-lint: static analysis for the HRDM workspace\n\n\
                     usage: hrdm-lint [--root DIR] [--rule NAME] [--list-rules] [--verbose]\n\n\
                     Waive a finding inline with `// lint: <rule>-ok(<reason>)` on the\n\
                     offending line or the line above; structural exemptions go in\n\
                     `lint.allow` (`<rule> <path-prefix>` per line) at the root.\n"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("hrdm-lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    if list {
        for rule in rules::all() {
            println!("{:<20} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    // Default root: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let config = LintConfig::for_root(&root);

    if let Some(name) = &only {
        if !rules::all().iter().any(|r| r.name() == name) {
            eprintln!("hrdm-lint: no rule named `{name}` (see --list-rules)");
            return ExitCode::FAILURE;
        }
    }

    let report = match hrdm_lint::run(&config, only.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hrdm-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    for v in &report.violations {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        for (file, line) in &v.anchors {
            if (file.as_str(), *line) != (v.file.as_str(), v.line) {
                println!("    evidence: {file}:{line}");
            }
        }
    }
    if verbose {
        for v in &report.waived {
            println!("waived: {}:{}: [{}]", v.file, v.line, v.rule);
        }
        for (rule, files) in &report.rule_stats {
            println!("stat: {rule} examined {files} file(s)");
        }
    }
    if report.clean() {
        println!(
            "hrdm-lint: clean ({} waived finding(s))",
            report.waived.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "hrdm-lint: {} violation(s), {} waived",
            report.violations.len(),
            report.waived.len()
        );
        ExitCode::FAILURE
    }
}
