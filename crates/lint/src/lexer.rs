//! A region-aware masking lexer for Rust source.
//!
//! Rules must never fire on text inside string literals, comments, or
//! `#[cfg(test)]` items. Rather than parse Rust properly (no `syn` — the
//! workspace is std-only), the lexer produces a **masked** copy of each
//! file: byte-for-byte the same length as the input (so offsets and line
//! numbers carry over), with the *contents* of string literals and the
//! entirety of comments blanked to spaces. Quote characters of ordinary
//! string literals are kept so patterns like `.expect("` stay visible.
//!
//! On top of the mask it computes:
//!
//! * `#[cfg(test)]` **regions** — the byte extent of every item annotated
//!   with the attribute (a `mod tests { … }` block, a test fn, a `use`),
//!   so rules can skip test-only code inside library files;
//! * **function spans** — every `fn name(…) { … }` with its body extent,
//!   for rules that reason per function (lock order, bounded-alloc);
//! * **line starts** — to map byte offsets back to 1-based line numbers.

/// One `fn` item: its name and the byte range of its `{ … }` body
/// (exclusive of the braces themselves).
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The function's name as written (unqualified).
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub header_start: usize,
    /// Byte offset just inside the opening `{` of the body.
    pub body_start: usize,
    /// Byte offset of the closing `}` of the body.
    pub body_end: usize,
}

/// A lexed file: the masked text plus the structural facts rules need.
pub struct Lexed {
    /// Same length as the input; string contents and comments blanked.
    pub masked: String,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Every `fn` with a body, in source order.
    pub functions: Vec<FnSpan>,
    /// Byte offset of the start of each line (line 1 first).
    line_starts: Vec<usize>,
}

impl Lexed {
    /// Lexes `source` into a masked view.
    pub fn new(source: &str) -> Lexed {
        let masked = mask(source);
        let test_regions = find_test_regions(&masked);
        let functions = find_functions(&masked);
        let mut line_starts = vec![0usize];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Lexed {
            masked,
            test_regions,
            functions,
            line_starts,
        }
    }

    /// The 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// The innermost function whose body contains `offset`.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| offset >= f.body_start && offset < f.body_end)
            .min_by_key(|f| f.body_end - f.body_start)
    }
}

/// Blanks comments (entirely) and string-literal contents (keeping the
/// surrounding quotes). Raw strings are blanked including their quotes —
/// their hash fences make them useless as pattern anchors anyway.
/// Newlines are always preserved so line numbers survive the mask.
fn mask(source: &str) -> String {
    mask_with(source, false)
}

/// Like the default mask, but comments survive. The waiver parser uses
/// this view:
/// waivers live in comments, but a *string literal* spelling out the
/// waiver marker (test fixtures, the parser's own constant) must not
/// parse as one.
pub fn mask_keeping_comments(source: &str) -> String {
    mask_with(source, true)
}

fn mask_with(source: &str, keep_comments: bool) -> String {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: keep or blank to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(if keep_comments { bytes[i] } else { b' ' });
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting tracked.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.min(bytes.len());
                for &bb in &bytes[start..end] {
                    out.push(if keep_comments {
                        bb
                    } else if bb == b'\n' {
                        b'\n'
                    } else {
                        b' '
                    });
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) && !prev_is_ident_char(bytes, i, &out) => {
                // Raw string r"…" / r#"…"# / br#"…"# — blank it all.
                let mut j = i;
                if bytes[j] == b'b' {
                    j += 1;
                }
                j += 1; // past 'r'
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // past opening quote
                loop {
                    match bytes.get(j) {
                        None => break,
                        Some(&b'"') => {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while seen < hashes && bytes.get(k) == Some(&b'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break;
                            }
                            j += 1;
                        }
                        Some(_) => j += 1,
                    }
                }
                for &bb in &bytes[i..j.min(bytes.len())] {
                    out.push(if bb == b'\n' { b'\n' } else { b' ' });
                }
                i = j;
            }
            b'"' => {
                // Ordinary (or byte) string: keep quotes, blank contents.
                out.push(b'"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out.push(b' ');
                            out.push(b' ');
                            i += 2;
                        }
                        b'"' => {
                            out.push(b'"');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal is 'x', '\…';
                // a lifetime is '<ident> with no closing quote.
                if bytes.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: blank to the closing quote.
                    out.push(b' ');
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        out.push(b' ');
                        i += 1;
                    }
                    if i < bytes.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    // One-char literal like 'a' (including quote chars).
                    out.push(b' ');
                    out.push(b' ');
                    out.push(b' ');
                    i += 3;
                } else {
                    // Lifetime: keep and move on.
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    // The mask only ever substitutes ASCII for ASCII, so the result is
    // valid UTF-8 whenever the input was.
    String::from_utf8_lossy(&out).into_owned()
}

/// `r"`, `r#`, `br"`, `br#` at `i`?
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Is the previous output byte part of an identifier (so `for r in …` or
/// `attr.to_string()` never parses as a raw-string start)?
fn prev_is_ident_char(_bytes: &[u8], i: usize, out: &[u8]) -> bool {
    if i == 0 {
        return false;
    }
    let p = out[out.len() - 1];
    p.is_ascii_alphanumeric() || p == b'_'
}

/// Finds `#[cfg(test)]` items and returns their byte extents. The extent
/// runs from the attribute through the end of the annotated item: the
/// matching `}` of its first block, or the terminating `;` for block-less
/// items (`use`, `mod tests;`).
fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
    const ATTR: &str = "#[cfg(test)]";
    let bytes = masked.as_bytes();
    let mut regions = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = masked[search..].find(ATTR) {
        let start = search + rel;
        let mut i = start + ATTR.len();
        // Skip whitespace and any further attributes between the cfg and
        // the item itself.
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if bytes.get(i) == Some(&b'#') && bytes.get(i + 1) == Some(&b'[') {
                while i < bytes.len() && bytes[i] != b']' {
                    i += 1;
                }
                i += 1;
            } else {
                break;
            }
        }
        // Scan to the item's first `{` or a `;`, whichever comes first.
        let mut end = masked.len();
        let mut j = i;
        while j < bytes.len() {
            match bytes[j] {
                b';' => {
                    end = j + 1;
                    break;
                }
                b'{' => {
                    end = matching_brace(bytes, j)
                        .map(|e| e + 1)
                        .unwrap_or(bytes.len());
                    break;
                }
                _ => j += 1,
            }
        }
        regions.push((start, end));
        search = end.max(start + ATTR.len());
    }
    regions
}

/// The offset of the `}` matching the `{` at `open`.
fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Finds every `fn name(…) … { … }` in the masked text.
fn find_functions(masked: &str) -> Vec<FnSpan> {
    let bytes = masked.as_bytes();
    let mut fns = Vec::new();
    let mut i = 0usize;
    while let Some(rel) = masked[i..].find("fn ") {
        let at = i + rel;
        // Word boundary: `fn` must not be the tail of an identifier.
        if at > 0 && (bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_') {
            i = at + 3;
            continue;
        }
        let mut j = at + 3;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j == name_start {
            i = at + 3;
            continue;
        }
        let name = masked[name_start..j].to_string();
        // Find the body `{` at angle/paren depth 0, or give up at `;`
        // (trait method declarations have no body).
        let mut depth = 0i32;
        let mut body = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    body = Some(j);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if let Some(open) = body {
            if let Some(close) = matching_brace(bytes, open) {
                fns.push(FnSpan {
                    name,
                    header_start: at,
                    body_start: open + 1,
                    body_end: close,
                });
                i = open + 1;
                continue;
            }
        }
        i = j.max(at + 3);
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unwrap() inside\"; // .unwrap() comment\nx.unwrap();\n";
        let lexed = Lexed::new(src);
        assert_eq!(lexed.masked.len(), src.len());
        // Only the real call survives the mask.
        assert_eq!(lexed.masked.matches(".unwrap()").count(), 1);
        // Quotes are kept, contents are not.
        assert!(lexed.masked.contains('"'));
        assert!(!lexed.masked.contains("inside"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked_lifetimes_kept() {
        let src = "let s = r#\"panic!(\"x\")\"#; let c = '\\n'; fn f<'a>(x: &'a str) {}";
        let lexed = Lexed::new(src);
        assert!(!lexed.masked.contains("panic!"));
        assert!(lexed.masked.contains("<'a>"));
        assert_eq!(lexed.masked.len(), src.len());
    }

    #[test]
    fn ident_ending_in_r_before_string_is_not_raw() {
        let src = "let attr = var.expect(\"x\"); another(\"y\");";
        let lexed = Lexed::new(src);
        assert!(lexed.masked.contains(".expect(\""));
        assert!(lexed.masked.contains("another(\""));
    }

    #[test]
    fn cfg_test_regions_cover_the_module() {
        let src = "fn lib_code() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let lexed = Lexed::new(src);
        assert_eq!(lexed.test_regions.len(), 1);
        let lib_at = src.find("x.unwrap").unwrap();
        let test_at = src.find("y.unwrap").unwrap();
        assert!(!lexed.in_test_region(lib_at));
        assert!(lexed.in_test_region(test_at));
    }

    #[test]
    fn functions_are_spanned_and_lines_resolve() {
        let src = "fn one() {\n    body();\n}\n\nfn two(a: u8) -> u8 {\n    a\n}\n";
        let lexed = Lexed::new(src);
        let names: Vec<&str> = lexed.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["one", "two"]);
        let body_at = src.find("body()").unwrap();
        assert_eq!(lexed.enclosing_fn(body_at).unwrap().name, "one");
        assert_eq!(lexed.line_of(body_at), 2);
    }

    #[test]
    fn nested_block_comments_unwind() {
        let src = "/* outer /* inner */ still comment */ fn real() { }";
        let lexed = Lexed::new(src);
        assert_eq!(lexed.functions.len(), 1);
        assert!(!lexed.masked.contains("outer"));
    }
}
