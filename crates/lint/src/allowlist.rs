//! The checked-in allowlist: `lint.allow` at the workspace root.
//!
//! Each non-comment line is `<rule> <path-prefix>`, exempting every file
//! whose workspace-relative path starts with the prefix from that rule.
//! This is for *structural* exemptions that would otherwise need a
//! waiver on every line — e.g. the bench harness's stop-flag atomics —
//! while inline waivers remain the tool for individual sites.

use std::path::Path;

/// One allowlist entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule this entry exempts.
    pub rule: String,
    /// Workspace-relative path prefix (forward slashes).
    pub prefix: String,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Loads `lint.allow` from `root`; a missing file is an empty list.
    pub fn load(root: &Path) -> Result<Allowlist, String> {
        let path = root.join("lint.allow");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Allowlist::default()),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        Allowlist::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses allowlist text; errors name the offending line.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(prefix), None) => entries.push(AllowEntry {
                    rule: rule.to_string(),
                    prefix: prefix.to_string(),
                }),
                _ => return Err(format!("line {}: expected `<rule> <path-prefix>`", idx + 1)),
            }
        }
        Ok(Allowlist { entries })
    }

    /// Is `rule` allowlisted for the workspace-relative `path`?
    pub fn covers(&self, rule: &str, path: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == rule && path.starts_with(e.prefix.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_and_comments() {
        let a = Allowlist::parse(
            "# bench stop flags are plain bools\natomic-ordering crates/bench/src\n",
        )
        .unwrap();
        assert!(a.covers("atomic-ordering", "crates/bench/src/lib.rs"));
        assert!(!a.covers("atomic-ordering", "crates/net/src/server.rs"));
        assert!(!a.covers("no-panic", "crates/bench/src/lib.rs"));
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        let err = Allowlist::parse("atomic-ordering\n").unwrap_err();
        assert!(err.contains("line 1"));
    }
}
