//! Workspace discovery: find every `.rs` file under `crates/` and `src/`,
//! classify it, and lex it once for all rules.

use std::path::{Path, PathBuf};

use crate::lexer::Lexed;
use crate::waiver::Waivers;

/// How a file participates in the build — rules scope themselves by class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Library code under a crate's `src/` (excluding `src/bin/`).
    Lib,
    /// Binary targets under `src/bin/`.
    Bin,
    /// Integration tests, benches, and examples.
    Test,
    /// The vendored compat crates (`crates/compat/**`) — API stand-ins
    /// for crates.io originals, exempt from engine-invariant rules.
    Compat,
}

/// One source file, lexed and ready for rules.
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes (stable rule keys).
    pub rel: String,
    /// Build-role classification.
    pub class: FileClass,
    /// Name of the owning crate directory (e.g. `storage`, `net`), or
    /// `hrdm` for the root facade's own `src/`.
    pub crate_name: String,
    /// Original text (waivers, context snippets).
    pub source: String,
    /// Masked view + structure.
    pub lexed: Lexed,
    /// Inline waivers parsed from the original text.
    pub waivers: Waivers,
}

/// Loads every Rust source file in the workspace rooted at `root`.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    let mut dirs = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = dirs.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(format!("{}: {e}", dir.display())),
        };
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            if path.is_dir() {
                // Never descend into build output.
                if path.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                dirs.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(load_file(root, &path)?);
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Loads and classifies a single file.
pub fn load_file(root: &Path, path: &Path) -> Result<SourceFile, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let rel_path = path.strip_prefix(root).unwrap_or(path);
    let rel = rel_path
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let class = classify(&rel);
    let crate_name = crate_of(&rel);
    let lexed = Lexed::new(&source);
    // Waivers are parsed from a strings-masked view: the marker must be
    // found in comments but never inside string literals (fixtures, the
    // parser's own constant).
    let waivers = Waivers::parse(&crate::lexer::mask_keeping_comments(&source));
    Ok(SourceFile {
        path: path.to_path_buf(),
        rel,
        class,
        crate_name,
        source,
        lexed,
        waivers,
    })
}

fn classify(rel: &str) -> FileClass {
    if rel.starts_with("crates/compat/") {
        return FileClass::Compat;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    // `crates/<name>/<role>/...` or root `src/...`.
    let role = if parts.first() == Some(&"crates") {
        parts.get(2).copied()
    } else {
        parts.first().copied()
    };
    match role {
        Some("tests") | Some("benches") | Some("examples") => FileClass::Test,
        Some("src") => {
            let in_bin = if parts.first() == Some(&"crates") {
                parts.get(3) == Some(&"bin")
            } else {
                parts.get(1) == Some(&"bin")
            };
            if in_bin {
                FileClass::Bin
            } else {
                FileClass::Lib
            }
        }
        _ => FileClass::Test,
    }
}

fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"crates") {
        if parts.get(1) == Some(&"compat") {
            format!("compat/{}", parts.get(2).copied().unwrap_or(""))
        } else {
            parts.get(1).copied().unwrap_or("").to_string()
        }
    } else {
        "hrdm".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        assert_eq!(classify("crates/storage/src/wal.rs"), FileClass::Lib);
        assert_eq!(classify("crates/net/src/bin/hrdmq.rs"), FileClass::Bin);
        assert_eq!(classify("crates/net/tests/protocol.rs"), FileClass::Test);
        assert_eq!(classify("crates/bench/benches/scan.rs"), FileClass::Test);
        assert_eq!(classify("crates/compat/rand/src/lib.rs"), FileClass::Compat);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
    }

    #[test]
    fn crate_names_resolve() {
        assert_eq!(crate_of("crates/storage/src/wal.rs"), "storage");
        assert_eq!(crate_of("crates/compat/rand/src/lib.rs"), "compat/rand");
        assert_eq!(crate_of("src/lib.rs"), "hrdm");
    }
}
