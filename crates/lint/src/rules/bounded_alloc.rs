//! `bounded-alloc`: in the decode modules (wire frames, on-disk pages,
//! WAL replay, catalog load), `Vec::with_capacity(n)` / `vec![_; n]`
//! where `n` derives from a wire- or disk-read length is a pre-allocation
//! DoS: a corrupt or malicious 8-byte length field buys a multi-gigabyte
//! allocation before any validation runs. Every such allocation must be
//! visibly capped.
//!
//! The rule fires on `with_capacity(` and `vec![` inside functions whose
//! names mark them as decode-side (`decode*`, `read_*`, `get_*`,
//! `load*`, `open*`, `replay*`, `from_*`, `parse*`, `scan*`) within the
//! configured decode files, unless the size argument is visibly safe:
//!
//! * it contains `.min(` (an explicit cap at the allocation site), or
//! * it is built only from integer literals and `SCREAMING_CASE`
//!   constants (compile-time bounded), or
//! * a nearby earlier line in the same function mentions the size
//!   identifier together with a cap check (`MAX`, `CAP`, or `.min(`).

use std::collections::BTreeMap;

use super::Rule;
use crate::workspace::SourceFile;
use crate::{LintConfig, Violation};

/// See module docs.
pub struct BoundedAlloc;

const DECODE_FN_PREFIXES: &[&str] = &[
    "decode", "read_", "get_", "load", "open", "replay", "from_", "parse", "scan",
];

impl Rule for BoundedAlloc {
    fn name(&self) -> &'static str {
        "bounded-alloc"
    }

    fn describe(&self) -> &'static str {
        "decode-side with_capacity/vec! must cap wire- or disk-derived sizes"
    }

    fn check(
        &self,
        config: &LintConfig,
        files: &[SourceFile],
        stats: &mut BTreeMap<&'static str, usize>,
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in files {
            if !config.decode_files.contains(&file.rel) {
                continue;
            }
            *stats.entry(self.name()).or_insert(0) += 1;
            let masked = &file.lexed.masked;
            for (pat, arg_from_open) in [("with_capacity(", true), ("vec![", false)] {
                let mut from = 0usize;
                while let Some(rel) = masked[from..].find(pat) {
                    let at = from + rel;
                    from = at + pat.len();
                    if file.lexed.in_test_region(at) {
                        continue;
                    }
                    let Some(func) = file.lexed.enclosing_fn(at) else {
                        continue;
                    };
                    if !is_decode_fn(&func.name) {
                        continue;
                    }
                    let Some(size_expr) =
                        extract_size_arg(masked, at + pat.len() - 1, arg_from_open)
                    else {
                        continue;
                    };
                    if size_is_safe(&size_expr)
                        || capped_earlier(masked, func.body_start, at, &size_expr)
                    {
                        continue;
                    }
                    out.push(Violation {
                        rule: self.name(),
                        file: file.rel.clone(),
                        line: file.lexed.line_of(at),
                        message: format!(
                            "uncapped allocation of `{}` in decode path `{}`: cap it \
                             (e.g. `.min(LIMIT)`) before trusting a wire/disk length",
                            size_expr.trim(),
                            func.name
                        ),
                        anchors: Vec::new(),
                    });
                }
            }
        }
        out
    }
}

fn is_decode_fn(name: &str) -> bool {
    DECODE_FN_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// The size expression: for `with_capacity(` the whole argument list; for
/// `vec![` the part after the `;` (element-count form only — `vec![a, b]`
/// literals yield no size and are skipped).
fn extract_size_arg(masked: &str, open: usize, paren: bool) -> Option<String> {
    let bytes = masked.as_bytes();
    let (open_ch, close_ch) = if paren { (b'(', b')') } else { (b'[', b']') };
    debug_assert_eq!(bytes[open], open_ch);
    let mut depth = 0i32;
    let mut i = open;
    let mut semi = None;
    while i < bytes.len() {
        let b = bytes[i];
        if b == open_ch || b == b'(' || b == b'[' {
            depth += 1;
        } else if b == close_ch || b == b')' || b == b']' {
            depth -= 1;
            if depth == 0 {
                let inner = &masked[open + 1..i];
                return if paren {
                    Some(inner.to_string())
                } else {
                    semi.map(|s: usize| masked[s + 1..i].to_string())
                };
            }
        } else if b == b';' && depth == 1 && !paren {
            semi = Some(i);
        }
        i += 1;
    }
    None
}

/// Safe on its face: contains a `.min(` cap, or consists only of integer
/// literals, `SCREAMING_CASE` constants, and arithmetic.
fn size_is_safe(expr: &str) -> bool {
    if expr.contains(".min(") {
        return true;
    }
    let mut rest = expr;
    while !rest.is_empty() {
        rest = rest.trim_start_matches(|c: char| c.is_whitespace() || "+-*/%()_".contains(c));
        if rest.is_empty() {
            break;
        }
        let token_len = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(rest.len());
        let token = &rest[..token_len];
        let numeric = token.chars().next().is_some_and(|c| c.is_ascii_digit());
        let screaming = token
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_' || c == ':')
            && token.chars().any(|c| c.is_ascii_uppercase());
        if !(numeric || screaming) {
            return false;
        }
        rest = &rest[token_len..];
    }
    true
}

/// Did an earlier line of the same function visibly bound the size
/// identifier (mentioning it alongside `MAX`, `CAP`, or `.min(`)?
fn capped_earlier(masked: &str, body_start: usize, at: usize, expr: &str) -> bool {
    // The identifier we track: the leading ident of the size expression.
    let ident: String = expr
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        return false;
    }
    let before = &masked[body_start..at];
    before.lines().any(|line| {
        line.contains(ident.as_str())
            && (line.contains("MAX") || line.contains("CAP") || line.contains(".min("))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_const_sizes_are_safe() {
        assert!(size_is_safe("16"));
        assert!(size_is_safe("PAGE_SIZE"));
        assert!(size_is_safe("payload_len.min(4096)"));
        assert!(size_is_safe("2 * MAX_FRAME_BYTES"));
        assert!(!size_is_safe("n_rows"));
        assert!(!size_is_safe("len as usize"));
    }
}
