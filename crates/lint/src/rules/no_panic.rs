//! `no-panic`: panicking constructs are banned in non-test library code
//! of the engine-path crates (`storage`, `net`, `query`, `core`). A
//! panic inside the storage or wire layer takes down a server thread —
//! possibly while holding the group-commit queue — so fallible paths
//! must return `DbError`/`FrameError`/`HrdmError` instead.
//!
//! Patterns: `.unwrap()`, `.expect("…")`, `.expect_err("…")`, `panic!(`,
//! `todo!(`, `unreachable!(`, `unimplemented!(`. Only the string-literal
//! `expect` forms are matched so the query parser's own
//! `self.expect(&Token::…)` method never false-positives.
//!
//! Built-in exemption: **lock poisoning**. `.expect(…)` directly chained
//! onto a zero-argument `lock()` / `read()` / `write()`, or onto a
//! condvar `wait(…)` / `wait_timeout(…)`, is the workspace's sanctioned
//! idiom for propagating poisoning — a poisoned lock means another
//! thread already panicked mid-update, and continuing would publish torn
//! state. (`try_lock()` is *not* exempt: `WouldBlock` is an ordinary
//! runtime condition, not evidence of a crash.)

use std::collections::BTreeMap;

use super::Rule;
use crate::workspace::{FileClass, SourceFile};
use crate::{LintConfig, Violation};

/// See module docs.
pub struct NoPanic;

const PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(\"",
    ".expect_err(\"",
    "panic!(",
    "todo!(",
    "unreachable!(",
    "unimplemented!(",
];

impl Rule for NoPanic {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/todo! in engine-path library code"
    }

    fn check(
        &self,
        config: &LintConfig,
        files: &[SourceFile],
        stats: &mut BTreeMap<&'static str, usize>,
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in files {
            if file.class != FileClass::Lib {
                continue;
            }
            if !config.panic_crates.contains(&file.crate_name) {
                continue;
            }
            *stats.entry(self.name()).or_insert(0) += 1;
            let masked = &file.lexed.masked;
            for pat in PATTERNS {
                let mut from = 0usize;
                while let Some(rel) = masked[from..].find(pat) {
                    let at = from + rel;
                    from = at + pat.len();
                    if file.lexed.in_test_region(at) {
                        continue;
                    }
                    // `panic!`-family macros: require a non-ident char
                    // before, so `core::panic!` still matches but a
                    // hypothetical `dont_panic!(` does not.
                    if !pat.starts_with('.') && at > 0 {
                        let prev = masked.as_bytes()[at - 1];
                        if prev.is_ascii_alphanumeric() || prev == b'_' {
                            continue;
                        }
                    }
                    if pat.starts_with(".expect") && is_poisoning_expect(masked, at) {
                        continue;
                    }
                    out.push(Violation {
                        rule: self.name(),
                        file: file.rel.clone(),
                        line: file.lexed.line_of(at),
                        message: format!(
                            "`{}` in {} library code: return the crate's error type \
                             instead, or waive with the invariant that makes this \
                             unreachable",
                            pat.trim_end_matches('"'),
                            file.crate_name
                        ),
                        anchors: Vec::new(),
                    });
                }
            }
        }
        out
    }
}

/// Is the `.expect(` at `at` chained directly onto a lock/condvar call
/// whose `Err` is `PoisonError`?
fn is_poisoning_expect(masked: &str, at: usize) -> bool {
    // Walk backwards over whitespace to the preceding token.
    let bytes = masked.as_bytes();
    let mut i = at;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let before = &masked[..i];
    if before.ends_with("lock()") || before.ends_with("read()") || before.ends_with("write()") {
        // Zero-arg call: a std lock acquisition, not e.g. `file.read(buf)`.
        return true;
    }
    // Condvar waits take arguments; match the method name at the head of
    // the closing call: `…wait(guard)` / `…wait_timeout(guard, dur)`.
    if before.ends_with(')') {
        if let Some(open) = matching_open_paren(bytes, i - 1) {
            let head = &masked[..open];
            for m in [
                ".wait",
                ".wait_timeout",
                ".wait_while",
                ".wait_timeout_while",
            ] {
                if head.ends_with(m) {
                    return true;
                }
            }
        }
    }
    false
}

/// The `(` matching the `)` at `close`, scanning backwards.
fn matching_open_paren(bytes: &[u8], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = close;
    loop {
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}
