//! `wire-exhaustiveness`: the wire protocol must stay fully wired. A new
//! `Frame` variant has to land in four places at once — the `kind()` tag
//! map, the `encode_frame` match (or its `encode_frame_traced` primary
//! since the trace-context revision), the `decode_frame` tag match
//! (likewise `decode_frame_traced`), and the
//! proptest strategy-coverage pin in the protocol test — or a 20th frame
//! kind ships half-wired: encodable but not decodable, or invisible to
//! the roundtrip fuzzer. The compiler catches some of these (exhaustive
//! matches) but not the cross-file ones (decode tags, the strategy pin's
//! `[false; N]` arity), so this rule checks the whole chain:
//!
//! 1. every `enum Frame` variant appears in `kind()`, `encode_frame`,
//!    and the test's `kind_index`;
//! 2. the tag set produced by `kind()` equals the tag set matched by
//!    `decode_frame`;
//! 3. the coverage pin `[false; N]` equals the variant count.
//!
//! The rule is silent when the configured frame file does not exist
//! under the scanned root (fixture trees exercise other rules); the
//! self-check test asserts via [`crate::Report::rule_stats`] that on the
//! real workspace it examined both files.

use std::collections::{BTreeMap, BTreeSet};

use super::Rule;
use crate::workspace::SourceFile;
use crate::{LintConfig, Violation};

/// See module docs.
pub struct WireExhaustive;

impl Rule for WireExhaustive {
    fn name(&self) -> &'static str {
        "wire-exhaustiveness"
    }

    fn describe(&self) -> &'static str {
        "every Frame kind wired through encode, decode, and the coverage pin"
    }

    fn check(
        &self,
        config: &LintConfig,
        files: &[SourceFile],
        stats: &mut BTreeMap<&'static str, usize>,
    ) -> Vec<Violation> {
        let Some(frame) = files.iter().find(|f| f.rel == config.frame_file) else {
            return Vec::new();
        };
        *stats.entry(self.name()).or_insert(0) += 1;
        let mut out = Vec::new();
        let masked = &frame.lexed.masked;

        let Some((variants, enum_line)) = parse_enum_variants(frame, "Frame") else {
            out.push(self.at(frame, 1, "could not locate `enum Frame`".into()));
            return out;
        };

        // kind(): variant -> tag.
        let kind_pairs = fn_body(frame, "kind")
            .map(variant_tag_pairs)
            .unwrap_or_default();
        let kind_variants: BTreeSet<&str> = kind_pairs.iter().map(|(v, _)| v.as_str()).collect();
        let kind_tags: BTreeSet<u8> = kind_pairs.iter().map(|&(_, t)| t).collect();

        // encode_frame / decode_frame coverage. Since the trace-context
        // protocol revision the match arms live in the `_traced`
        // variants and the untraced names are thin wrappers that forward
        // to them — scan both spellings and take the union.
        let mut encode_variants = BTreeSet::new();
        for name in ["encode_frame", "encode_frame_traced"] {
            if let Some(body) = fn_body(frame, name) {
                encode_variants.extend(frame_variant_mentions(body));
            }
        }
        let mut decode_tags = BTreeSet::new();
        for name in ["decode_frame", "decode_frame_traced"] {
            if let Some(body) = fn_body(frame, name) {
                decode_tags.extend(tag_match_arms(body));
            }
        }

        for v in &variants {
            if !kind_variants.contains(v.as_str()) {
                out.push(self.at(
                    frame,
                    enum_line,
                    format!("Frame::{v} has no tag in `kind()`"),
                ));
            }
            if !encode_variants.contains(v.as_str()) {
                out.push(self.at(
                    frame,
                    enum_line,
                    format!("Frame::{v} is not handled by `encode_frame`"),
                ));
            }
        }
        for &(ref v, tag) in &kind_pairs {
            if !decode_tags.contains(&tag) {
                out.push(self.at(
                    frame,
                    enum_line,
                    format!("tag {tag:#04x} (Frame::{v}) has no `decode_frame` arm"),
                ));
            }
        }
        for &tag in decode_tags.difference(&kind_tags) {
            out.push(self.at(
                frame,
                enum_line,
                format!("`decode_frame` matches tag {tag:#04x} that `kind()` never emits"),
            ));
        }
        let _ = masked;

        // The cross-file leg: the proptest coverage pin.
        if let Some(cov) = files.iter().find(|f| f.rel == config.coverage_file) {
            *stats.entry(self.name()).or_insert(0) += 1;
            let pin_variants = fn_body(cov, "kind_index")
                .map(frame_variant_mentions)
                .unwrap_or_default();
            for v in &variants {
                if !pin_variants.contains(v.as_str()) {
                    out.push(self.at(
                        cov,
                        1,
                        format!(
                            "Frame::{v} missing from the strategy-coverage `kind_index` \
                             in {}",
                            cov.rel
                        ),
                    ));
                }
            }
            if let Some((n, line)) = coverage_pin_arity(cov) {
                if n != variants.len() {
                    out.push(self.at(
                        cov,
                        line,
                        format!(
                            "coverage pin `[false; {n}]` disagrees with the {} Frame \
                             variants",
                            variants.len()
                        ),
                    ));
                }
            } else {
                out.push(self.at(
                    cov,
                    1,
                    "strategy-coverage pin `[false; N]` not found".into(),
                ));
            }
        } else {
            out.push(self.at(
                frame,
                enum_line,
                format!("coverage file {} is missing", config.coverage_file),
            ));
        }
        out
    }
}

impl WireExhaustive {
    fn at(&self, file: &SourceFile, line: usize, message: String) -> Violation {
        Violation {
            rule: self.name(),
            file: file.rel.clone(),
            line,
            message,
            anchors: Vec::new(),
        }
    }
}

/// The masked body of the first function named `name` in `file`.
fn fn_body<'a>(file: &'a SourceFile, name: &str) -> Option<&'a str> {
    let f = file.lexed.functions.iter().find(|f| f.name == name)?;
    Some(&file.lexed.masked[f.body_start..f.body_end])
}

/// Variant names of `enum <name>`: idents with an uppercase first letter
/// at brace depth 1 / paren depth 0 of the enum body (paren tracking
/// keeps tuple-variant *types* out). Returns the enum's 1-based line too.
fn parse_enum_variants(file: &SourceFile, name: &str) -> Option<(Vec<String>, usize)> {
    let masked = &file.lexed.masked;
    let needle = format!("enum {name}");
    let mut search = 0usize;
    let at = loop {
        let rel = masked[search..].find(&needle)?;
        let at = search + rel;
        let end = at + needle.len();
        let boundary = masked
            .as_bytes()
            .get(end)
            .is_none_or(|b| !(b.is_ascii_alphanumeric() || *b == b'_'));
        if boundary {
            break at;
        }
        search = end;
    };
    let open = at + masked[at..].find('{')?;
    let bytes = masked.as_bytes();
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut i = open;
    let mut variants = Vec::new();
    while i < bytes.len() {
        match bytes[i] {
            b'{' => brace += 1,
            b'}' => {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            b'(' | b'[' | b'<' => paren += 1,
            b')' | b']' | b'>' => paren -= 1,
            b if brace == 1 && paren == 0 && b.is_ascii_uppercase() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                variants.push(masked[start..i].to_string());
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    Some((variants, file.lexed.line_of(at)))
}

/// `Frame::<Variant> … => 0xNN` pairs inside a match body.
fn variant_tag_pairs(body: &str) -> Vec<(String, u8)> {
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(v) = frame_variant_on(line) else {
            continue;
        };
        let Some(arrow) = line.find("=>") else {
            continue;
        };
        if let Some(tag) = parse_hex_tag(&line[arrow..]) {
            out.push((v, tag));
        }
    }
    out
}

/// All `Frame::<Variant>` mentions in a body (or-patterns included).
fn frame_variant_mentions(body: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut from = 0usize;
    while let Some(rel) = body[from..].find("Frame::") {
        let at = from + rel + "Frame::".len();
        let ident: String = body[at..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        from = at + ident.len().max(1);
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            out.insert(ident);
        }
    }
    out
}

/// `0xNN =>` match arms in a decode body.
fn tag_match_arms(body: &str) -> BTreeSet<u8> {
    let mut out = BTreeSet::new();
    for line in body.lines() {
        let t = line.trim_start();
        if !t.starts_with("0x") {
            continue;
        }
        let hex: String = t[2..]
            .chars()
            .take_while(|c| c.is_ascii_hexdigit())
            .collect();
        if hex.is_empty() || hex.len() > 2 {
            continue;
        }
        if t[2 + hex.len()..].trim_start().starts_with("=>") {
            if let Ok(tag) = u8::from_str_radix(&hex, 16) {
                out.insert(tag);
            }
        }
    }
    out
}

/// The first `Frame::<Variant>` on a line.
fn frame_variant_on(line: &str) -> Option<String> {
    let at = line.find("Frame::")? + "Frame::".len();
    let ident: String = line[at..]
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

/// Parses `0xNN` at the first `0x` in `s`.
fn parse_hex_tag(s: &str) -> Option<u8> {
    let at = s.find("0x")?;
    let hex: String = s[at + 2..]
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect();
    if hex.is_empty() || hex.len() > 2 {
        return None;
    }
    u8::from_str_radix(&hex, 16).ok()
}

/// The `[false; N]` coverage-pin arity and its line.
fn coverage_pin_arity(file: &SourceFile) -> Option<(usize, usize)> {
    let masked = &file.lexed.masked;
    let at = masked.find("[false;")?;
    let n: String = masked[at + "[false;".len()..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    n.parse().ok().map(|n| (n, file.lexed.line_of(at)))
}
