//! `lock-order`: flags potential lock-acquisition inversion cycles.
//!
//! The group-commit core holds several locks (`inner`, `queue`,
//! `published`, per-ticket mutexes) and the net server adds its own
//! (`sessions`, the cancel set). A deadlock needs two threads acquiring
//! the same pair in opposite orders — invisible to any single function
//! review once acquisition chains cross function boundaries.
//!
//! The rule extracts, per function, the sequence of `.lock()` /
//! `.read()` / `.write()` acquisitions (zero-argument calls only, so
//! `stream.read(&mut buf)` io never counts) with a held-set tracked by
//! binding: `let`-bound guards and guards acquired in `match`/`if let`
//! headers live until their brace scope closes or an explicit
//! `drop(var)`; unbound temporaries live to the end of their statement.
//! Held-lock → newly-acquired-lock edges are recorded, calls to
//! functions defined in the *same file* are resolved and contribute the
//! callee's transitive acquisitions (file-local resolution keeps
//! name-collision noise out). Lock nodes are crate-qualified for the
//! same reason. A direct re-acquire of a held lock is reported as a
//! self-cycle; call-derived self-edges are dropped (the callee may be
//! invoked with the lock *not* held on other paths — too noisy).
//!
//! Cycles (SCCs of the global graph, plus direct self-edges) are
//! violations; each carries every acquisition site as an anchor, and a
//! waiver on *any* anchor waives the cycle.

use std::collections::{BTreeMap, BTreeSet};

use super::Rule;
use crate::lexer::FnSpan;
use crate::workspace::{FileClass, SourceFile};
use crate::{LintConfig, Violation};

/// See module docs.
pub struct LockOrder;

/// One lock acquisition site.
#[derive(Clone, Debug)]
struct Acq {
    /// Crate-qualified lock name, e.g. `storage/queue`.
    lock: String,
    /// Workspace-relative file.
    file: String,
    /// 1-based line.
    line: usize,
}

/// A call to a same-file function while locks were held.
struct Call {
    callee: String,
    held: Vec<Acq>,
    file: String,
    line: usize,
}

/// An ordering edge: `from` held while `to` is acquired.
struct Edge {
    from: String,
    to: String,
    anchors: Vec<(String, usize)>,
}

#[derive(Default)]
struct FnFacts {
    direct: Vec<Acq>,
    calls: Vec<Call>,
}

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn describe(&self) -> &'static str {
        "no lock-acquisition inversion cycles across the workspace"
    }

    fn check(
        &self,
        _config: &LintConfig,
        files: &[SourceFile],
        stats: &mut BTreeMap<&'static str, usize>,
    ) -> Vec<Violation> {
        // Pass 1: per-function facts, keyed (file, fn name).
        let mut facts: BTreeMap<(String, String), FnFacts> = BTreeMap::new();
        let mut edges: Vec<Edge> = Vec::new();
        for file in files {
            if !matches!(file.class, FileClass::Lib | FileClass::Bin) {
                continue;
            }
            *stats.entry(self.name()).or_insert(0) += 1;
            let local_fns: BTreeSet<&str> = file
                .lexed
                .functions
                .iter()
                .map(|f| f.name.as_str())
                .collect();
            for func in &file.lexed.functions {
                if file.lexed.in_test_region(func.header_start) {
                    continue;
                }
                let f = scan_function(file, func, &local_fns, &mut edges);
                let key = (file.rel.clone(), func.name.clone());
                let entry = facts.entry(key).or_default();
                entry.direct.extend(f.direct);
                entry.calls.extend(f.calls);
            }
        }

        // Pass 2: transitive acquisitions per function (file-local call
        // resolution), then call-derived edges.
        let mut memo: BTreeMap<(String, String), BTreeMap<String, Acq>> = BTreeMap::new();
        let keys: Vec<(String, String)> = facts.keys().cloned().collect();
        for key in &keys {
            closure(key, &facts, &mut memo, &mut BTreeSet::new());
        }
        for (key, f) in &facts {
            for call in &f.calls {
                let callee_key = (key.0.clone(), call.callee.clone());
                let Some(acquired) = memo.get(&callee_key) else {
                    continue;
                };
                for held in &call.held {
                    for (lock, site) in acquired {
                        if *lock == held.lock {
                            continue; // call-derived self-edges: dropped
                        }
                        edges.push(Edge {
                            from: held.lock.clone(),
                            to: lock.clone(),
                            anchors: vec![
                                (held.file.clone(), held.line),
                                (call.file.clone(), call.line),
                                (site.file.clone(), site.line),
                            ],
                        });
                    }
                }
            }
        }

        // Pass 3: cycles. Direct self-edges first, then multi-node SCCs.
        let mut out = Vec::new();
        for e in &edges {
            if e.from == e.to {
                let (file, line) = e.anchors[0].clone();
                out.push(Violation {
                    rule: self.name(),
                    file,
                    line,
                    message: format!(
                        "lock `{}` re-acquired while already held — self-deadlock",
                        e.from
                    ),
                    anchors: e.anchors.clone(),
                });
            }
        }
        for scc in sccs(&edges) {
            let members: BTreeSet<&String> = scc.iter().collect();
            let mut anchors: Vec<(String, usize)> = Vec::new();
            for e in &edges {
                if e.from != e.to && members.contains(&e.from) && members.contains(&e.to) {
                    anchors.extend(e.anchors.iter().cloned());
                }
            }
            anchors.sort();
            anchors.dedup();
            let (file, line) = anchors
                .first()
                .cloned()
                .unwrap_or_else(|| (String::from("<workspace>"), 0));
            out.push(Violation {
                rule: self.name(),
                file,
                line,
                message: format!(
                    "potential lock-order inversion among {{{}}}: threads can acquire \
                     these locks in opposite orders",
                    scc.join(", ")
                ),
                anchors,
            });
        }
        out
    }
}

/// Forward-scans one function body: records acquisitions, ordering
/// edges against the running held-set, and same-file calls.
fn scan_function(
    file: &SourceFile,
    func: &FnSpan,
    local_fns: &BTreeSet<&str>,
    edges: &mut Vec<Edge>,
) -> FnFacts {
    let masked = &file.lexed.masked;
    let bytes = masked.as_bytes();
    let mut facts = FnFacts::default();
    // Held guards: (acq, bind_depth, var name if let-bound, temp?).
    let mut held: Vec<(Acq, i32, Option<String>, bool)> = Vec::new();
    let mut depth = 0i32;
    let mut i = func.body_start;
    while i < func.body_end {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                held.retain(|(_, bind, _, _)| *bind <= depth);
            }
            b';' => held.retain(|(_, _, _, temp)| !temp),
            b'.' => {
                if let Some(method_len) = lock_method_at(masked, i) {
                    let lock = format!(
                        "{}/{}",
                        file.crate_name,
                        receiver_of(masked, func.body_start, i)
                    );
                    let acq = Acq {
                        lock,
                        file: file.rel.clone(),
                        line: file.lexed.line_of(i),
                    };
                    for (h, _, _, _) in &held {
                        edges.push(Edge {
                            from: h.lock.clone(),
                            to: acq.lock.clone(),
                            anchors: vec![(h.file.clone(), h.line), (acq.file.clone(), acq.line)],
                        });
                    }
                    facts.direct.push(acq.clone());
                    let (bound, var) = binding_of(masked, func.body_start, i);
                    held.push((acq, depth, var, !bound));
                    i += method_len;
                    continue;
                }
            }
            _ => {}
        }
        // `drop(var)` releases a named guard.
        if bytes[i] == b'd' && masked[i..].starts_with("drop(") {
            let var: String = masked[i + 5..func.body_end.min(i + 64)]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            held.retain(|(_, _, v, _)| v.as_deref() != Some(var.as_str()));
        }
        // Same-file call while locks are held: `foo(` or `self.foo(`.
        if !held.is_empty() && (bytes[i].is_ascii_alphabetic() || bytes[i] == b'_') {
            let start = i;
            let mut j = i;
            while j < func.body_end && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            let ident = &masked[start..j];
            let bare = start == 0 || {
                let p = bytes[start - 1];
                !(p.is_ascii_alphanumeric() || p == b'_' || p == b':')
            };
            let self_call = masked[..start].ends_with("self.");
            let receiver_ok = self_call || (bare && !masked[..start].ends_with('.'));
            if receiver_ok
                && bytes.get(j) == Some(&b'(')
                && local_fns.contains(ident)
                && ident != func.name
            {
                facts.calls.push(Call {
                    callee: ident.to_string(),
                    held: held.iter().map(|(a, _, _, _)| a.clone()).collect(),
                    file: file.rel.clone(),
                    line: file.lexed.line_of(start),
                });
            }
            i = j;
            continue;
        }
        i += 1;
    }
    facts
}

/// Is `masked[i..]` a zero-argument `.lock()`/`.read()`/`.write()`?
/// Returns the matched length.
fn lock_method_at(masked: &str, i: usize) -> Option<usize> {
    for m in [".lock()", ".read()", ".write()"] {
        if masked[i..].starts_with(m) {
            return Some(m.len());
        }
    }
    None
}

/// The lock's name: the last path segment before the method dot.
fn receiver_of(masked: &str, floor: usize, dot: usize) -> String {
    let bytes = masked.as_bytes();
    let end = dot;
    let mut start = end;
    while start > floor {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == end {
        return "<expr>".into();
    }
    // `self.published.read()` names the field, not `self`.
    masked[start..end].to_string()
}

/// Transitive set of locks acquired by a function and its same-file
/// callees, with one representative site per lock. Memoized; recursion
/// cycles bottom out to the already-accumulated set.
fn closure(
    key: &(String, String),
    facts: &BTreeMap<(String, String), FnFacts>,
    memo: &mut BTreeMap<(String, String), BTreeMap<String, Acq>>,
    visiting: &mut BTreeSet<(String, String)>,
) -> BTreeMap<String, Acq> {
    if let Some(m) = memo.get(key) {
        return m.clone();
    }
    if !visiting.insert(key.clone()) {
        return BTreeMap::new();
    }
    let mut acc: BTreeMap<String, Acq> = BTreeMap::new();
    if let Some(f) = facts.get(key) {
        for a in &f.direct {
            acc.entry(a.lock.clone()).or_insert_with(|| a.clone());
        }
        for c in &f.calls {
            let callee_key = (key.0.clone(), c.callee.clone());
            for (l, a) in closure(&callee_key, facts, memo, visiting) {
                acc.entry(l).or_insert(a);
            }
        }
    }
    visiting.remove(key);
    memo.insert(key.clone(), acc.clone());
    acc
}

/// Is the acquisition bound (guard outlives the statement)? True for
/// `let` statements and `match`/`if let`/`while let` headers; the bound
/// variable name is returned for `let` so `drop(var)` can release it.
fn binding_of(masked: &str, floor: usize, at: usize) -> (bool, Option<String>) {
    let bytes = masked.as_bytes();
    let mut s = at;
    while s > floor && !matches!(bytes[s - 1], b';' | b'{' | b'}') {
        s -= 1;
    }
    let stmt = &masked[s..at];
    let trimmed = stmt.trim_start();
    if let Some(rest) = trimmed.strip_prefix("let ") {
        let rest = rest.trim_start().trim_start_matches("mut ");
        let var: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        return (true, if var.is_empty() { None } else { Some(var) });
    }
    for kw in ["match ", "if let ", "while let "] {
        if trimmed.contains(kw) {
            return (true, None);
        }
    }
    (false, None)
}

/// Strongly connected components with ≥ 2 nodes (Kosaraju).
fn sccs(edges: &[Edge]) -> Vec<Vec<String>> {
    let mut nodes: BTreeSet<&String> = BTreeSet::new();
    for e in edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let nodes: Vec<&String> = nodes.into_iter().collect();
    let index: BTreeMap<&String, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = nodes.len();
    let mut fwd = vec![Vec::new(); n];
    let mut rev = vec![Vec::new(); n];
    for e in edges {
        if e.from == e.to {
            continue;
        }
        let (a, b) = (index[&e.from], index[&e.to]);
        fwd[a].push(b);
        rev[b].push(a);
    }
    // First pass: finish order.
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for s in 0..n {
        if visited[s] {
            continue;
        }
        // Iterative DFS with an explicit post-visit marker.
        let mut stack = vec![(s, false)];
        while let Some((v, post)) = stack.pop() {
            if post {
                order.push(v);
                continue;
            }
            if visited[v] {
                continue;
            }
            visited[v] = true;
            stack.push((v, true));
            for &w in &fwd[v] {
                if !visited[w] {
                    stack.push((w, false));
                }
            }
        }
    }
    // Second pass: components on the reversed graph.
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = count;
        while let Some(v) = stack.pop() {
            for &w in &rev[v] {
                if comp[w] == usize::MAX {
                    comp[w] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    let mut groups: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (i, &c) in comp.iter().enumerate() {
        groups.entry(c).or_default().push(nodes[i].clone());
    }
    groups.into_values().filter(|g| g.len() >= 2).collect()
}
