//! The rule catalog.
//!
//! | rule | what it enforces |
//! |---|---|
//! | `atomic-ordering` | `Ordering::Relaxed` only in the metrics crate |
//! | `lock-order` | no lock-acquisition inversion cycles |
//! | `no-panic` | no `unwrap`/`expect`/`panic!` in engine library code |
//! | `wire-exhaustiveness` | every frame kind fully wired end to end |
//! | `bounded-alloc` | decode-side allocations capped before trust |
//!
//! Each rule scans the pre-lexed workspace and returns raw violations;
//! the engine in [`crate::run`] applies waivers and the allowlist.

pub mod atomic_ordering;
pub mod bounded_alloc;
pub mod lock_order;
pub mod no_panic;
pub mod wire_exhaustive;

use std::collections::BTreeMap;

use crate::workspace::SourceFile;
use crate::{LintConfig, Violation};

/// A single lint rule.
pub trait Rule {
    /// The rule's name as used in waivers and `--rule`.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Scans `files` and returns raw (pre-waiver) violations. Rules
    /// record how many files they actually examined in `stats` so the
    /// self-check can assert they did not silently no-op.
    fn check(
        &self,
        config: &LintConfig,
        files: &[SourceFile],
        stats: &mut BTreeMap<&'static str, usize>,
    ) -> Vec<Violation>;
}

/// Every rule, in catalog order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(atomic_ordering::AtomicOrdering),
        Box::new(lock_order::LockOrder),
        Box::new(no_panic::NoPanic),
        Box::new(wire_exhaustive::WireExhaustive),
        Box::new(bounded_alloc::BoundedAlloc),
    ]
}
