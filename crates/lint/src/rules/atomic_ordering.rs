//! `atomic-ordering`: `Ordering::Relaxed` is only legal in the metrics
//! crate (`crates/obs`), where counters are documented as unsynchronized
//! by design. Anywhere else, a Relaxed load or store on a value readers
//! act on is a real bug — publication in this engine goes through the
//! snapshot `RwLock`, not through atomics — so every engine-side use must
//! either be upgraded or carry a waiver explaining why the value never
//! gates data visibility.

use std::collections::BTreeMap;

use super::Rule;
use crate::workspace::{FileClass, SourceFile};
use crate::{LintConfig, Violation};

/// See module docs.
pub struct AtomicOrdering;

impl Rule for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }

    fn describe(&self) -> &'static str {
        "Ordering::Relaxed only in crates/obs (metrics) or under a waiver"
    }

    fn check(
        &self,
        config: &LintConfig,
        files: &[SourceFile],
        stats: &mut BTreeMap<&'static str, usize>,
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in files {
            // Integration tests and benches spin their own harness
            // atomics (stop flags, per-thread counters); like
            // `#[cfg(test)]` regions, they cannot gate engine data
            // visibility and are out of scope.
            if !matches!(file.class, FileClass::Lib | FileClass::Bin) {
                continue;
            }
            if config.obs_crates.contains(&file.crate_name) {
                continue;
            }
            *stats.entry(self.name()).or_insert(0) += 1;
            let masked = &file.lexed.masked;
            let mut from = 0usize;
            while let Some(rel) = masked[from..].find("Ordering::Relaxed") {
                let at = from + rel;
                from = at + "Ordering::Relaxed".len();
                if file.lexed.in_test_region(at) {
                    continue;
                }
                out.push(Violation {
                    rule: self.name(),
                    file: file.rel.clone(),
                    line: file.lexed.line_of(at),
                    message: "Ordering::Relaxed outside crates/obs: if this value gates \
                              data visibility it needs Acquire/Release; if it is a pure \
                              statistic, waive with the reason"
                        .into(),
                    anchors: Vec::new(),
                });
            }
        }
        out
    }
}
