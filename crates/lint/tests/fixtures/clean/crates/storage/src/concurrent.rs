//! Fixture: a lock-order inversion that is waived on one of its
//! acquisition sites — waiving any anchor waives the whole cycle.

use std::sync::Mutex;

pub struct Core {
    queue: Mutex<u32>,
    inner: Mutex<u32>,
}

impl Core {
    pub fn drain(&self) {
        let _q = self.queue.lock();
        let _i = self.inner.lock();
    }

    pub fn publish(&self) {
        let _i = self.inner.lock();
        // lint: lock-order-ok(publish only runs single-threaded during startup, before drain exists)
        let _q = self.queue.lock();
    }
}
