//! Fixture: only sanctioned panic forms — the lock-poisoning idiom and
//! test-module unwraps.

use std::sync::Mutex;

pub fn guard(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned lock")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        let _ = v.unwrap();
    }
}
