//! Fixture: a Relaxed atomic carrying a proper inline waiver.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    hits: AtomicU64,
}

impl Stats {
    pub fn bump(&self) {
        // lint: atomic-ordering-ok(pure statistic, read only by the metrics endpoint)
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
