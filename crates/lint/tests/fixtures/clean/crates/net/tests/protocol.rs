//! Fixture: the strategy-coverage pin agrees with the enum.

fn kind_index(f: &Frame) -> usize {
    match f {
        Frame::Hello { .. } => 0,
        Frame::Query { .. } => 1,
    }
}

fn coverage() {
    let mut seen = [false; 2];
    seen[0] = true;
    let _ = seen;
}
