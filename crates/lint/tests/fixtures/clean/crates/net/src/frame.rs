//! Fixture: a fully wired two-kind frame enum with a capped decode
//! allocation.

pub enum Frame {
    Hello { version: u32 },
    Query { text: String },
}

impl Frame {
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Query { .. } => 0x02,
        }
    }
}

pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::Hello { version } => vec![*version as u8],
        Frame::Query { text } => text.clone().into_bytes(),
    }
}

pub fn decode_frame(body: &[u8]) -> Frame {
    match body[0] {
        0x01 => Frame::Hello { version: 0 },
        0x02 => Frame::Query {
            text: String::new(),
        },
        _ => Frame::Hello { version: 0 },
    }
}

pub fn decode_rows(raw: u64) -> Vec<u8> {
    let count = raw as usize;
    let out = Vec::with_capacity(count.min(4096));
    out
}
