//! Fixture: a stale strategy-coverage pin — `Frame::Drop` is missing
//! from `kind_index` and the `[false; N]` arity is one short.

fn kind_index(f: &Frame) -> usize {
    match f {
        Frame::Hello { .. } => 0,
        Frame::Query { .. } => 1,
    }
}

fn coverage() {
    let mut seen = [false; 2];
    seen[0] = true;
    let _ = seen;
}
