//! Fixture: panicking constructs in library code. The lock-poisoning
//! expect and the test-module unwrap must NOT be flagged.

use std::sync::Mutex;

pub fn risky(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn fail() {
    panic!("boom");
}

pub fn guard(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned lock")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        let _ = v.unwrap();
    }
}
