//! Fixture: an unwaived Relaxed atomic in engine library code.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    hits: AtomicU64,
}

impl Stats {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
