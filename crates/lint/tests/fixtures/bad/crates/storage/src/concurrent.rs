//! Fixture: two functions acquiring the same pair of locks in opposite
//! orders — a classic inversion deadlock.

use std::sync::Mutex;

pub struct Core {
    queue: Mutex<u32>,
    inner: Mutex<u32>,
}

impl Core {
    pub fn drain(&self) {
        let _q = self.queue.lock();
        let _i = self.inner.lock();
    }

    pub fn publish(&self) {
        let _i = self.inner.lock();
        let _q = self.queue.lock();
    }
}
