//! Fixture-driven proof that every rule fires on known violations and
//! stays quiet on waived/clean code.

use std::collections::BTreeSet;
use std::path::PathBuf;

use hrdm_lint::{run, LintConfig, Report};

const ALL_RULES: [&str; 5] = [
    "atomic-ordering",
    "lock-order",
    "no-panic",
    "wire-exhaustiveness",
    "bounded-alloc",
];

fn lint_fixture(which: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which);
    run(&LintConfig::for_root(&root), None).expect("fixture lints")
}

fn sites<'a>(report: &'a Report, rule: &str) -> Vec<(&'a str, usize)> {
    report
        .violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| (v.file.as_str(), v.line))
        .collect()
}

#[test]
fn every_rule_fires_on_the_bad_fixture() {
    let report = lint_fixture("bad");
    let fired: BTreeSet<&str> = report.violations.iter().map(|v| v.rule).collect();
    for rule in ALL_RULES {
        assert!(
            fired.contains(rule),
            "rule `{rule}` did not fire on the bad fixture; fired: {fired:?}"
        );
    }
}

#[test]
fn atomic_ordering_flags_the_relaxed_site() {
    let report = lint_fixture("bad");
    assert_eq!(
        sites(&report, "atomic-ordering"),
        vec![("crates/storage/src/stats.rs", 11)]
    );
}

#[test]
fn lock_order_reports_the_inversion_cycle() {
    let report = lint_fixture("bad");
    let cycles: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "lock-order")
        .collect();
    assert_eq!(cycles.len(), 1, "exactly one cycle: {cycles:?}");
    let v = cycles[0];
    assert!(v.message.contains("storage/inner") && v.message.contains("storage/queue"));
    // Every acquisition site of the cycle is carried as evidence.
    assert!(v.anchors.len() >= 4, "anchors: {:?}", v.anchors);
    assert!(v
        .anchors
        .iter()
        .all(|(f, _)| f == "crates/storage/src/concurrent.rs"));
}

#[test]
fn no_panic_flags_lib_code_but_not_poisoning_or_tests() {
    let report = lint_fixture("bad");
    let flagged = sites(&report, "no-panic");
    // `risky`'s unwrap (line 7) and `fail`'s panic! (line 11) — NOT the
    // lock-poisoning expect (line 15) and NOT the test-module unwrap.
    assert_eq!(
        flagged,
        vec![
            ("crates/storage/src/panics.rs", 7),
            ("crates/storage/src/panics.rs", 11),
        ]
    );
}

#[test]
fn wire_exhaustiveness_reports_every_missing_leg() {
    let report = lint_fixture("bad");
    let messages: Vec<&str> = report
        .violations
        .iter()
        .filter(|v| v.rule == "wire-exhaustiveness")
        .map(|v| v.message.as_str())
        .collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("Drop") && m.contains("encode_frame")),
        "missing encode arm not reported: {messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("0x03") && m.contains("decode_frame")),
        "missing decode arm not reported: {messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("Drop") && m.contains("kind_index")),
        "stale kind_index not reported: {messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("[false; 2]")),
        "stale coverage pin not reported: {messages:?}"
    );
}

#[test]
fn bounded_alloc_flags_the_uncapped_decode_allocation() {
    let report = lint_fixture("bad");
    let flagged = sites(&report, "bounded-alloc");
    assert_eq!(flagged, vec![("crates/net/src/frame.rs", 39)]);
}

#[test]
fn clean_fixture_passes_with_waivers_accounted() {
    let report = lint_fixture("clean");
    assert!(
        report.clean(),
        "clean fixture has violations: {:#?}",
        report.violations
    );
    // The waived Relaxed counter and the waived lock cycle are recorded,
    // not silently dropped.
    let waived: BTreeSet<&str> = report.waived.iter().map(|v| v.rule).collect();
    assert!(waived.contains("atomic-ordering"), "waived: {waived:?}");
    assert!(waived.contains("lock-order"), "waived: {waived:?}");
}

#[test]
fn rule_filter_restricts_the_run() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad");
    let report = run(&LintConfig::for_root(&root), Some("no-panic")).expect("fixture lints");
    assert!(report.violations.iter().all(|v| v.rule == "no-panic"));
    assert!(!report.violations.is_empty());
}
