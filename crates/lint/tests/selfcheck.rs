//! The self-run: the HRDM workspace itself must be lint-clean, and every
//! rule must demonstrably have examined the files it claims to govern
//! (a rule that silently no-ops would pass a bare "no violations" test).

use std::path::PathBuf;

use hrdm_lint::{run, LintConfig};

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&LintConfig::for_root(&root), None).expect("workspace lints");
    let rendered: Vec<String> = report
        .violations
        .iter()
        .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        report.clean(),
        "the workspace has unwaived lint violations:\n{}",
        rendered.join("\n")
    );

    // Prove the rules actually ran over the real tree: the wire rule saw
    // both the frame file and the coverage pin, bounded-alloc saw every
    // configured decode file, and the broad rules saw a plausible share
    // of the workspace's library files.
    assert_eq!(report.rule_stats["wire-exhaustiveness"], 2);
    assert_eq!(report.rule_stats["bounded-alloc"], 12);
    assert!(
        report.rule_stats["no-panic"] >= 20,
        "{:?}",
        report.rule_stats
    );
    assert!(
        report.rule_stats["lock-order"] >= 40,
        "{:?}",
        report.rule_stats
    );
    assert!(
        report.rule_stats["atomic-ordering"] >= 40,
        "{:?}",
        report.rule_stats
    );

    // Waivers exist and every one of them is load-bearing evidence the
    // waiver machinery is exercised by the real workspace.
    assert!(
        !report.waived.is_empty(),
        "expected the workspace's documented waivers to register"
    );
}
