//! Closed intervals of the time domain.

use crate::Chronon;
use std::fmt;

/// A closed interval `[lo, hi] = { t ∈ T | lo <= t <= hi }`.
///
/// The paper (§3) notes that with `T` isomorphic to the naturals "the issue of
/// whether to represent time as intervals or as points is simply a matter of
/// convenience" and restricts attention to closed intervals. An `Interval` is
/// never empty: `lo <= hi` is an invariant enforced at construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    lo: Chronon,
    hi: Chronon,
}

impl Interval {
    /// Creates `[lo, hi]`. Returns `None` when `lo > hi` (no such interval).
    #[inline]
    pub fn new(lo: Chronon, hi: Chronon) -> Option<Interval> {
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Creates `[lo, hi]` from raw ticks; panics if `lo > hi`.
    ///
    /// Convenience for literals in tests and examples, where the bounds are
    /// static. Library code paths use [`Interval::new`].
    #[inline]
    pub fn of(lo: i64, hi: i64) -> Interval {
        Interval::new(Chronon::new(lo), Chronon::new(hi)).expect("Interval::of requires lo <= hi")
    }

    /// The degenerate interval `[t, t]`.
    #[inline]
    pub fn point(t: Chronon) -> Interval {
        Interval { lo: t, hi: t }
    }

    /// Lower (earliest) endpoint.
    #[inline]
    pub fn lo(&self) -> Chronon {
        self.lo
    }

    /// Upper (latest) endpoint.
    #[inline]
    pub fn hi(&self) -> Chronon {
        self.hi
    }

    /// Number of chronons in the interval (`hi - lo + 1`), saturating.
    #[inline]
    pub fn len(&self) -> u64 {
        let n = self.hi.tick() as i128 - self.lo.tick() as i128 + 1;
        if n > u64::MAX as i128 {
            u64::MAX
        } else {
            n as u64
        }
    }

    /// Closed intervals are never empty; provided for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does the interval contain chronon `t`?
    #[inline]
    pub fn contains(&self, t: Chronon) -> bool {
        self.lo <= t && t <= self.hi
    }

    /// Does `self` fully contain `other`?
    #[inline]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Do the two intervals share at least one chronon?
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Are the intervals adjacent (abut with no gap, e.g. `[1,3]` and `[4,6]`)?
    ///
    /// Over a discrete `T`, adjacent intervals denote a contiguous set and are
    /// merged by [`crate::Lifespan`]'s canonical form.
    #[inline]
    pub fn adjacent(&self, other: &Interval) -> bool {
        (self.hi.succ() == Some(other.lo)) || (other.hi.succ() == Some(self.lo))
    }

    /// True when the union of the two intervals is itself an interval.
    #[inline]
    pub fn mergeable(&self, other: &Interval) -> bool {
        self.overlaps(other) || self.adjacent(other)
    }

    /// Intersection `self ∩ other`, if non-empty.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max_of(other.lo);
        let hi = self.hi.min_of(other.hi);
        Interval::new(lo, hi)
    }

    /// Union of two [`Interval::mergeable`] intervals; `None` when the union
    /// would be disconnected (use a [`crate::Lifespan`] for that).
    #[inline]
    pub fn merge(&self, other: &Interval) -> Option<Interval> {
        if self.mergeable(other) {
            Some(Interval {
                lo: self.lo.min_of(other.lo),
                hi: self.hi.max_of(other.hi),
            })
        } else {
            None
        }
    }

    /// Smallest interval containing both operands (their convex hull).
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min_of(other.lo),
            hi: self.hi.max_of(other.hi),
        }
    }

    /// Difference `self − other` as up to two intervals (left and right
    /// remnants).
    pub fn difference(&self, other: &Interval) -> (Option<Interval>, Option<Interval>) {
        match self.intersect(other) {
            None => (Some(*self), None),
            Some(cut) => {
                let left = cut.lo.pred().and_then(|end| Interval::new(self.lo, end));
                let right = cut
                    .hi
                    .succ()
                    .and_then(|start| Interval::new(start, self.hi));
                (left, right)
            }
        }
    }

    /// Iterates every chronon in the interval in ascending order.
    pub fn chronons(&self) -> impl Iterator<Item = Chronon> + '_ {
        (self.lo.tick()..=self.hi.tick()).map(Chronon::new)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.lo.tick(), self.hi.tick())
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "[{}]", self.lo)
        } else {
            write!(f, "[{},{}]", self.lo, self.hi)
        }
    }
}

impl From<Chronon> for Interval {
    fn from(t: Chronon) -> Self {
        Interval::point(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_inverted_bounds() {
        assert!(Interval::new(Chronon::new(5), Chronon::new(4)).is_none());
        assert!(Interval::new(Chronon::new(4), Chronon::new(4)).is_some());
    }

    #[test]
    fn point_interval() {
        let p = Interval::point(Chronon::new(3));
        assert_eq!(p.len(), 1);
        assert!(p.contains(Chronon::new(3)));
        assert!(!p.contains(Chronon::new(4)));
        assert_eq!(p.to_string(), "[3]");
    }

    #[test]
    fn len_counts_chronons() {
        assert_eq!(Interval::of(2, 5).len(), 4);
        assert_eq!(Interval::of(-2, 2).len(), 5);
    }

    #[test]
    fn len_saturates_over_full_domain() {
        let all = Interval::new(Chronon::MIN, Chronon::MAX).unwrap();
        assert_eq!(all.len(), u64::MAX); // 2^64 chronons saturate to u64::MAX
    }

    #[test]
    fn overlaps_and_adjacency() {
        let a = Interval::of(1, 3);
        let b = Interval::of(3, 6);
        let c = Interval::of(4, 6);
        let d = Interval::of(5, 9);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.adjacent(&c));
        assert!(!a.adjacent(&d));
        assert!(a.mergeable(&b));
        assert!(a.mergeable(&c));
        assert!(!a.mergeable(&d));
    }

    #[test]
    fn intersect_basics() {
        let a = Interval::of(1, 5);
        let b = Interval::of(3, 8);
        assert_eq!(a.intersect(&b), Some(Interval::of(3, 5)));
        assert_eq!(a.intersect(&Interval::of(6, 9)), None);
        assert_eq!(a.intersect(&a), Some(a));
    }

    #[test]
    fn merge_and_hull() {
        let a = Interval::of(1, 3);
        let b = Interval::of(4, 6);
        assert_eq!(a.merge(&b), Some(Interval::of(1, 6)));
        assert_eq!(a.merge(&Interval::of(10, 12)), None);
        assert_eq!(a.hull(&Interval::of(10, 12)), Interval::of(1, 12));
    }

    #[test]
    fn difference_cases() {
        let a = Interval::of(1, 10);
        // cut from the middle -> two remnants
        let (l, r) = a.difference(&Interval::of(4, 6));
        assert_eq!(l, Some(Interval::of(1, 3)));
        assert_eq!(r, Some(Interval::of(7, 10)));
        // cut a prefix
        let (l, r) = a.difference(&Interval::of(0, 3));
        assert_eq!(l, None);
        assert_eq!(r, Some(Interval::of(4, 10)));
        // cut a suffix
        let (l, r) = a.difference(&Interval::of(8, 12));
        assert_eq!(l, Some(Interval::of(1, 7)));
        assert_eq!(r, None);
        // disjoint -> untouched
        let (l, r) = a.difference(&Interval::of(20, 30));
        assert_eq!(l, Some(a));
        assert_eq!(r, None);
        // covering cut -> nothing left
        let (l, r) = a.difference(&Interval::of(0, 11));
        assert_eq!(l, None);
        assert_eq!(r, None);
    }

    #[test]
    fn containment() {
        let a = Interval::of(1, 10);
        assert!(a.contains_interval(&Interval::of(2, 9)));
        assert!(a.contains_interval(&a));
        assert!(!a.contains_interval(&Interval::of(0, 5)));
    }

    #[test]
    fn chronon_iteration() {
        let ts: Vec<i64> = Interval::of(3, 6).chronons().map(|c| c.tick()).collect();
        assert_eq!(ts, vec![3, 4, 5, 6]);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Interval::of(1, 4).to_string(), "[1,4]");
        assert_eq!(format!("{:?}", Interval::of(1, 4)), "[1,4]");
    }
}
