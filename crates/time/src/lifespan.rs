//! Lifespans: arbitrary finite-description subsets of the time domain `T`.

use crate::{Chronon, Interval};
use std::fmt;
use std::ops::{BitAnd, BitOr, Sub};

/// A lifespan `L ⊆ T`: "the periods of time during which the database models
/// the properties of an object" (paper, abstract & §2).
///
/// A lifespan is *any* subset of `T` — crucially it need not be contiguous,
/// which is what lets HRDM model **reincarnation** (employees re-hired,
/// attributes dropped from and later re-added to a schema, paper Fig. 6).
/// Since the paper restricts attention to closed intervals over a discrete
/// `T`, every lifespan arising in practice is a finite union of closed
/// intervals, and that is the representation used here.
///
/// # Canonical form
///
/// The intervals are kept sorted, pairwise disjoint, and *maximal* (no two
/// stored intervals overlap or abut). Consequences:
///
/// * structural equality coincides with set equality,
/// * the set operations `∪`, `∩`, `−` (paper §2 lists exactly these) are
///   linear two-pointer merges,
/// * [`Lifespan::intervals`] doubles as the succinct "representation level"
///   encoding of the span.
///
/// The operators `|`, `&`, and `-` are overloaded as `∪`, `∩`, `−`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Lifespan {
    /// Sorted, disjoint, maximal intervals.
    runs: Vec<Interval>,
}

impl Lifespan {
    /// The empty lifespan `∅` (an object the database never models).
    #[inline]
    pub fn empty() -> Lifespan {
        Lifespan { runs: Vec::new() }
    }

    /// A single-interval lifespan `[lo, hi]` from raw ticks.
    ///
    /// Panics if `lo > hi`; use [`Lifespan::try_interval`] for fallible
    /// construction.
    pub fn interval(lo: i64, hi: i64) -> Lifespan {
        Lifespan {
            runs: vec![Interval::of(lo, hi)],
        }
    }

    /// A single-interval lifespan, `None` when `lo > hi`.
    pub fn try_interval(lo: Chronon, hi: Chronon) -> Option<Lifespan> {
        Interval::new(lo, hi).map(|iv| Lifespan { runs: vec![iv] })
    }

    /// The singleton lifespan `{t}`.
    pub fn point(t: impl Into<Chronon>) -> Lifespan {
        Lifespan {
            runs: vec![Interval::point(t.into())],
        }
    }

    /// The lifespan `[start, now]` — the paper's `[t3, NOW]` pattern
    /// (Fig. 6): a period open-ended in spirit but, in a database that only
    /// records up to the current time, closed at `now`. `None` when
    /// `start > now` (nothing recorded yet).
    pub fn until_now(start: impl Into<Chronon>, now: impl Into<Chronon>) -> Option<Lifespan> {
        Lifespan::try_interval(start.into(), now.into())
    }

    /// Builds a lifespan from arbitrary intervals, normalizing to canonical
    /// form.
    pub fn from_intervals<I>(intervals: I) -> Lifespan
    where
        I: IntoIterator<Item = Interval>,
    {
        let mut runs: Vec<Interval> = intervals.into_iter().collect();
        normalize(&mut runs);
        Lifespan { runs }
    }

    /// Builds a lifespan from `(lo, hi)` tick pairs. Panics on `lo > hi`.
    pub fn of(pairs: &[(i64, i64)]) -> Lifespan {
        Lifespan::from_intervals(pairs.iter().map(|&(lo, hi)| Interval::of(lo, hi)))
    }

    /// Builds a lifespan from individual chronons.
    pub fn from_chronons<I>(chronons: I) -> Lifespan
    where
        I: IntoIterator<Item = Chronon>,
    {
        Lifespan::from_intervals(chronons.into_iter().map(Interval::point))
    }

    /// The canonical run-list (sorted, disjoint, maximal intervals).
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.runs
    }

    /// Number of maximal intervals (fragmentation of the lifespan).
    #[inline]
    pub fn interval_count(&self) -> usize {
        self.runs.len()
    }

    /// Is this the empty lifespan?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Is the lifespan a single connected interval (or empty)?
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.runs.len() <= 1
    }

    /// Number of chronons in the lifespan, saturating at `u64::MAX`.
    pub fn cardinality(&self) -> u64 {
        self.runs
            .iter()
            .fold(0u64, |acc, iv| acc.saturating_add(iv.len()))
    }

    /// Earliest chronon, if any (the object's "birth", paper §1).
    #[inline]
    pub fn first(&self) -> Option<Chronon> {
        self.runs.first().map(|iv| iv.lo())
    }

    /// Latest chronon, if any (the object's most recent "death").
    #[inline]
    pub fn last(&self) -> Option<Chronon> {
        self.runs.last().map(|iv| iv.hi())
    }

    /// Smallest interval covering the whole lifespan.
    pub fn hull(&self) -> Option<Interval> {
        match (self.first(), self.last()) {
            (Some(lo), Some(hi)) => Interval::new(lo, hi),
            _ => None,
        }
    }

    /// Membership test `t ∈ L` (binary search over runs).
    pub fn contains(&self, t: Chronon) -> bool {
        self.runs
            .binary_search_by(|iv| {
                if iv.hi() < t {
                    std::cmp::Ordering::Less
                } else if iv.lo() > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Subset test `other ⊆ self`.
    pub fn contains_lifespan(&self, other: &Lifespan) -> bool {
        other.intersect(self) == *other
    }

    /// Do the two lifespans share at least one chronon?
    pub fn intersects(&self, other: &Lifespan) -> bool {
        // Two-pointer scan; cheaper than materializing the intersection.
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            let a = &self.runs[i];
            let b = &other.runs[j];
            if a.overlaps(b) {
                return true;
            }
            if a.hi() < b.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Does the lifespan share at least one chronon with the closed
    /// interval `iv`? Binary search over the runs — the allocation-free
    /// sibling of [`Lifespan::intersects`] for single-interval probes
    /// (partition summaries are probed once per partition per query).
    pub fn intersects_interval(&self, iv: &Interval) -> bool {
        // The first run ending at or after iv.lo is the only candidate
        // that can start early enough and still reach iv.
        let i = self.runs.partition_point(|r| r.hi() < iv.lo());
        match self.runs.get(i) {
            Some(r) => r.lo() <= iv.hi(),
            None => false,
        }
    }

    /// Subset test for a closed interval: `iv ⊆ self` without allocating.
    /// Because the runs are maximal, `iv` is contained iff one single run
    /// contains it whole.
    pub fn contains_interval(&self, iv: &Interval) -> bool {
        let i = self.runs.partition_point(|r| r.hi() < iv.hi());
        match self.runs.get(i) {
            Some(r) => r.lo() <= iv.lo() && iv.hi() <= r.hi(),
            None => false,
        }
    }

    /// Set union `L1 ∪ L2` (paper §2, operation 1).
    pub fn union(&self, other: &Lifespan) -> Lifespan {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut merged: Vec<Interval> = Vec::with_capacity(self.runs.len() + other.runs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            if self.runs[i].lo() <= other.runs[j].lo() {
                merged.push(self.runs[i]);
                i += 1;
            } else {
                merged.push(other.runs[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.runs[i..]);
        merged.extend_from_slice(&other.runs[j..]);
        // Runs are sorted by lo; coalesce in place.
        let mut out: Vec<Interval> = Vec::with_capacity(merged.len());
        for iv in merged {
            match out.last_mut() {
                Some(last) if last.mergeable(&iv) => {
                    *last = last.merge(&iv).expect("mergeable intervals merge");
                }
                _ => out.push(iv),
            }
        }
        Lifespan { runs: out }
    }

    /// Set intersection `L1 ∩ L2` (paper §2, operation 2).
    pub fn intersect(&self, other: &Lifespan) -> Lifespan {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            if let Some(iv) = self.runs[i].intersect(&other.runs[j]) {
                out.push(iv);
            }
            if self.runs[i].hi() < other.runs[j].hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        Lifespan { runs: out }
    }

    /// Set difference `L1 − L2` (paper §2, operation 3).
    pub fn difference(&self, other: &Lifespan) -> Lifespan {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        let mut out = Vec::new();
        let mut j = 0;
        for &run in &self.runs {
            let mut current = Some(run);
            // Advance past subtrahend runs that end before this run starts.
            while j < other.runs.len() && other.runs[j].hi() < run.lo() {
                j += 1;
            }
            let mut k = j;
            while let (Some(cur), true) = (current, k < other.runs.len()) {
                let sub = other.runs[k];
                if sub.lo() > cur.hi() {
                    break;
                }
                let (left, right) = cur.difference(&sub);
                if let Some(l) = left {
                    out.push(l);
                }
                current = right;
                k += 1;
            }
            if let Some(rest) = current {
                out.push(rest);
            }
        }
        Lifespan { runs: out }
    }

    /// Symmetric difference `(L1 − L2) ∪ (L2 − L1)`.
    pub fn symmetric_difference(&self, other: &Lifespan) -> Lifespan {
        self.difference(other).union(&other.difference(self))
    }

    /// Complement within a bounded `universe` interval: `universe − self`.
    ///
    /// `T` itself is unbounded, so complement is only meaningful relative to a
    /// declared universe (e.g. the lifespan of a relation).
    pub fn complement_within(&self, universe: Interval) -> Lifespan {
        Lifespan {
            runs: vec![universe],
        }
        .difference(self)
    }

    /// Restricts the lifespan to `[lo, hi]` — a static TIME-SLICE at the
    /// lifespan level.
    pub fn clamp(&self, window: Interval) -> Lifespan {
        self.intersect(&Lifespan { runs: vec![window] })
    }

    /// Translates the whole lifespan by `delta` ticks.
    pub fn shift(&self, delta: i64) -> Lifespan {
        Lifespan {
            runs: self
                .runs
                .iter()
                .map(|iv| {
                    Interval::new(iv.lo() + delta, iv.hi() + delta)
                        .expect("shift preserves ordering")
                })
                .collect(),
        }
    }

    /// Iterates every chronon in ascending order.
    ///
    /// Intended for small lifespans (tests, figures, model-level semantics);
    /// algebra code works on runs instead.
    pub fn iter(&self) -> LifespanIter<'_> {
        LifespanIter {
            runs: &self.runs,
            run_idx: 0,
            next: self.runs.first().map(|iv| iv.lo()),
        }
    }
}

/// Iterator over the chronons of a [`Lifespan`] in ascending order.
pub struct LifespanIter<'a> {
    runs: &'a [Interval],
    run_idx: usize,
    next: Option<Chronon>,
}

impl Iterator for LifespanIter<'_> {
    type Item = Chronon;

    fn next(&mut self) -> Option<Chronon> {
        let current = self.next?;
        let run = self.runs[self.run_idx];
        self.next = if current < run.hi() {
            current.succ()
        } else {
            self.run_idx += 1;
            self.runs.get(self.run_idx).map(|iv| iv.lo())
        };
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let mut remaining: u128 = 0;
        if let Some(next) = self.next {
            let run = self.runs[self.run_idx];
            remaining += (run.hi().tick() as i128 - next.tick() as i128 + 1) as u128;
            for iv in &self.runs[self.run_idx + 1..] {
                remaining += iv.len() as u128;
            }
        }
        let lower = usize::try_from(remaining).unwrap_or(usize::MAX);
        (lower, usize::try_from(remaining).ok())
    }
}

impl<'a> IntoIterator for &'a Lifespan {
    type Item = Chronon;
    type IntoIter = LifespanIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Chronon> for Lifespan {
    fn from_iter<I: IntoIterator<Item = Chronon>>(iter: I) -> Self {
        Lifespan::from_chronons(iter)
    }
}

impl FromIterator<Interval> for Lifespan {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        Lifespan::from_intervals(iter)
    }
}

impl From<Interval> for Lifespan {
    fn from(iv: Interval) -> Self {
        Lifespan { runs: vec![iv] }
    }
}

impl BitOr for &Lifespan {
    type Output = Lifespan;
    fn bitor(self, rhs: &Lifespan) -> Lifespan {
        self.union(rhs)
    }
}

impl BitAnd for &Lifespan {
    type Output = Lifespan;
    fn bitand(self, rhs: &Lifespan) -> Lifespan {
        self.intersect(rhs)
    }
}

impl Sub for &Lifespan {
    type Output = Lifespan;
    fn sub(self, rhs: &Lifespan) -> Lifespan {
        self.difference(rhs)
    }
}

impl fmt::Debug for Lifespan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Lifespan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            return f.write_str("{}");
        }
        f.write_str("{")?;
        for (i, iv) in self.runs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{iv}")?;
        }
        f.write_str("}")
    }
}

/// Sorts and coalesces an arbitrary interval list into canonical form.
fn normalize(runs: &mut Vec<Interval>) {
    if runs.len() <= 1 {
        return;
    }
    runs.sort_by_key(|iv| (iv.lo(), iv.hi()));
    let mut out: Vec<Interval> = Vec::with_capacity(runs.len());
    for iv in runs.drain(..) {
        match out.last_mut() {
            Some(last) if last.mergeable(&iv) => {
                *last = last.merge(&iv).expect("mergeable intervals merge");
            }
            _ => out.push(iv),
        }
    }
    *runs = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_merges_overlaps_and_adjacency() {
        let ls = Lifespan::of(&[(5, 8), (1, 3), (4, 4), (10, 12)]);
        // [1,3]+[4,4]+[5,8] coalesce into [1,8].
        assert_eq!(ls.intervals(), &[Interval::of(1, 8), Interval::of(10, 12)]);
        assert_eq!(ls.interval_count(), 2);
        assert!(!ls.is_contiguous());
    }

    #[test]
    fn empty_lifespan() {
        let e = Lifespan::empty();
        assert!(e.is_empty());
        assert_eq!(e.cardinality(), 0);
        assert_eq!(e.first(), None);
        assert_eq!(e.hull(), None);
        assert_eq!(e.to_string(), "{}");
        assert!(e.is_contiguous());
    }

    #[test]
    fn until_now_models_the_fig6_pattern() {
        let ls = Lifespan::until_now(5, 40).unwrap();
        assert_eq!(ls, Lifespan::interval(5, 40));
        // As NOW advances, the span extends.
        let later = Lifespan::until_now(5, 60).unwrap();
        assert!(later.contains_lifespan(&ls));
        // Nothing recorded yet.
        assert!(Lifespan::until_now(10, 5).is_none());
    }

    #[test]
    fn membership() {
        let ls = Lifespan::of(&[(1, 3), (7, 9)]);
        for t in [1, 2, 3, 7, 8, 9] {
            assert!(ls.contains(Chronon::new(t)), "missing {t}");
        }
        for t in [0, 4, 5, 6, 10] {
            assert!(!ls.contains(Chronon::new(t)), "spurious {t}");
        }
    }

    #[test]
    fn union_reincarnation_scenario() {
        // Paper Fig. 6: attribute recorded on [t1,t2], dropped, re-added at t3.
        let recorded = Lifespan::interval(1, 20);
        let re_added = Lifespan::interval(50, 100);
        let als = recorded.union(&re_added);
        assert_eq!(als.interval_count(), 2);
        assert!(als.contains(Chronon::new(10)));
        assert!(!als.contains(Chronon::new(30)));
        assert!(als.contains(Chronon::new(75)));
    }

    #[test]
    fn union_is_commutative_and_idempotent() {
        let a = Lifespan::of(&[(1, 5), (10, 12)]);
        let b = Lifespan::of(&[(4, 11)]);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&a), a);
        assert_eq!(a.union(&Lifespan::empty()), a);
    }

    #[test]
    fn intersection_basics() {
        let a = Lifespan::of(&[(1, 5), (10, 15)]);
        let b = Lifespan::of(&[(3, 12)]);
        assert_eq!(a.intersect(&b), Lifespan::of(&[(3, 5), (10, 12)]));
        assert_eq!(a.intersect(&Lifespan::empty()), Lifespan::empty());
        assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn difference_basics() {
        let a = Lifespan::of(&[(1, 10)]);
        let b = Lifespan::of(&[(3, 4), (7, 8)]);
        assert_eq!(a.difference(&b), Lifespan::of(&[(1, 2), (5, 6), (9, 10)]));
        assert_eq!(a.difference(&a), Lifespan::empty());
        assert_eq!(a.difference(&Lifespan::empty()), a);
        assert_eq!(Lifespan::empty().difference(&a), Lifespan::empty());
    }

    #[test]
    fn difference_with_leading_and_trailing_subtrahends() {
        let a = Lifespan::of(&[(10, 20)]);
        let b = Lifespan::of(&[(1, 2), (12, 14), (30, 40)]);
        assert_eq!(a.difference(&b), Lifespan::of(&[(10, 11), (15, 20)]));
    }

    #[test]
    fn symmetric_difference() {
        let a = Lifespan::of(&[(1, 5)]);
        let b = Lifespan::of(&[(4, 8)]);
        assert_eq!(a.symmetric_difference(&b), Lifespan::of(&[(1, 3), (6, 8)]));
    }

    #[test]
    fn complement_within_universe() {
        let ls = Lifespan::of(&[(2, 3), (6, 7)]);
        let c = ls.complement_within(Interval::of(0, 9));
        assert_eq!(c, Lifespan::of(&[(0, 1), (4, 5), (8, 9)]));
        // complement is involutive within the universe
        assert_eq!(c.complement_within(Interval::of(0, 9)), ls);
    }

    #[test]
    fn clamp_is_static_timeslice() {
        let ls = Lifespan::of(&[(1, 5), (8, 12)]);
        assert_eq!(
            ls.clamp(Interval::of(4, 9)),
            Lifespan::of(&[(4, 5), (8, 9)])
        );
    }

    #[test]
    fn shift_translates() {
        let ls = Lifespan::of(&[(1, 3), (6, 8)]);
        assert_eq!(ls.shift(10), Lifespan::of(&[(11, 13), (16, 18)]));
        assert_eq!(ls.shift(-1), Lifespan::of(&[(0, 2), (5, 7)]));
    }

    #[test]
    fn subset_and_intersects() {
        let big = Lifespan::of(&[(1, 10), (20, 30)]);
        let small = Lifespan::of(&[(2, 4), (25, 25)]);
        assert!(big.contains_lifespan(&small));
        assert!(!small.contains_lifespan(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&Lifespan::interval(11, 19)));
        assert!(big.contains_lifespan(&Lifespan::empty()));
    }

    #[test]
    fn cardinality_sums_runs() {
        assert_eq!(Lifespan::of(&[(1, 3), (10, 10)]).cardinality(), 4);
    }

    #[test]
    fn iteration_order() {
        let ls = Lifespan::of(&[(1, 2), (5, 6)]);
        let got: Vec<i64> = ls.iter().map(|c| c.tick()).collect();
        assert_eq!(got, vec![1, 2, 5, 6]);
        assert_eq!(ls.iter().size_hint(), (4, Some(4)));
    }

    #[test]
    fn from_chronons_collects() {
        let ls: Lifespan = [3, 1, 2, 7].into_iter().map(Chronon::new).collect();
        assert_eq!(ls, Lifespan::of(&[(1, 3), (7, 7)]));
    }

    #[test]
    fn operator_sugar() {
        let a = Lifespan::interval(1, 5);
        let b = Lifespan::interval(4, 8);
        assert_eq!(&a | &b, Lifespan::interval(1, 8));
        assert_eq!(&a & &b, Lifespan::interval(4, 5));
        assert_eq!(&a - &b, Lifespan::interval(1, 3));
    }

    #[test]
    fn display_format() {
        let ls = Lifespan::of(&[(1, 3), (5, 5)]);
        assert_eq!(ls.to_string(), "{[1,3], [5]}");
    }

    /// The allocation-free interval probes agree with the lifespan-level
    /// operations across every small window.
    #[test]
    fn interval_probes_match_lifespan_operations() {
        let ls = Lifespan::of(&[(0, 4), (10, 15), (20, 20)]);
        for lo in -2..24 {
            for hi in lo..25 {
                let iv = Interval::of(lo, hi);
                let as_ls = Lifespan::interval(lo, hi);
                assert_eq!(
                    ls.intersects_interval(&iv),
                    ls.intersects(&as_ls),
                    "intersects [{lo},{hi}]"
                );
                assert_eq!(
                    ls.contains_interval(&iv),
                    ls.contains_lifespan(&as_ls),
                    "contains [{lo},{hi}]"
                );
            }
        }
        let empty = Lifespan::empty();
        assert!(!empty.intersects_interval(&Interval::of(0, 10)));
        assert!(!empty.contains_interval(&Interval::of(0, 0)));
    }
}
