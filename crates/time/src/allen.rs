//! Allen's thirteen qualitative relations between closed intervals.
//!
//! The paper manipulates lifespans purely set-theoretically, but reasoning
//! about *how* two intervals relate (does one tuple's lifespan precede,
//! overlap, or contain another's?) recurs throughout examples, constraint
//! checking, and tests. Allen's interval algebra is the standard vocabulary
//! for that, and on a discrete `T` it specializes cleanly to closed intervals.

use crate::Interval;
use std::fmt;

/// One of Allen's thirteen interval relations, specialized to closed
/// intervals over a discrete time domain.
///
/// For intervals `a = [a0,a1]` and `b = [b0,b1]`, exactly one variant holds.
/// Note that over discrete time `Meets` means `a1 + 1 == b0` (the intervals
/// abut with no gap) — with closed intervals sharing an endpoint would mean
/// overlapping, not meeting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AllenRelation {
    /// `a` ends before `b` starts, with a gap: `a1 + 1 < b0`.
    Before,
    /// `a` abuts `b`: `a1 + 1 == b0`.
    Meets,
    /// `a` starts first, they overlap, `b` ends last.
    Overlaps,
    /// Same start, `a` ends first.
    Starts,
    /// `a` strictly inside `b`.
    During,
    /// Same end, `a` starts last.
    Finishes,
    /// Identical intervals.
    Equal,
    /// Inverse of `Finishes`: same end, `a` starts first.
    FinishedBy,
    /// Inverse of `During`: `b` strictly inside `a`.
    Contains,
    /// Inverse of `Starts`: same start, `a` ends last.
    StartedBy,
    /// Inverse of `Overlaps`.
    OverlappedBy,
    /// Inverse of `Meets`.
    MetBy,
    /// Inverse of `Before`.
    After,
}

impl AllenRelation {
    /// Classifies the relation of `a` to `b`.
    pub fn classify(a: &Interval, b: &Interval) -> AllenRelation {
        use std::cmp::Ordering::*;
        let (a0, a1) = (a.lo(), a.hi());
        let (b0, b1) = (b.lo(), b.hi());

        match (a0.cmp(&b0), a1.cmp(&b1)) {
            (Equal, Equal) => AllenRelation::Equal,
            (Equal, Less) => AllenRelation::Starts,
            (Equal, Greater) => AllenRelation::StartedBy,
            (Less, Equal) => AllenRelation::FinishedBy,
            (Greater, Equal) => AllenRelation::Finishes,
            (Less, Greater) => AllenRelation::Contains,
            (Greater, Less) => AllenRelation::During,
            (Less, Less) => {
                if a1 >= b0 {
                    AllenRelation::Overlaps
                } else if a1.succ() == Some(b0) {
                    AllenRelation::Meets
                } else {
                    AllenRelation::Before
                }
            }
            (Greater, Greater) => {
                if b1 >= a0 {
                    AllenRelation::OverlappedBy
                } else if b1.succ() == Some(a0) {
                    AllenRelation::MetBy
                } else {
                    AllenRelation::After
                }
            }
        }
    }

    /// The converse relation: `classify(a, b).inverse() == classify(b, a)`.
    pub fn inverse(self) -> AllenRelation {
        use AllenRelation::*;
        match self {
            Before => After,
            Meets => MetBy,
            Overlaps => OverlappedBy,
            Starts => StartedBy,
            During => Contains,
            Finishes => FinishedBy,
            Equal => Equal,
            FinishedBy => Finishes,
            Contains => During,
            StartedBy => Starts,
            OverlappedBy => Overlaps,
            MetBy => Meets,
            After => Before,
        }
    }

    /// Do the intervals share at least one chronon under this relation?
    pub fn intersects(self) -> bool {
        !matches!(
            self,
            AllenRelation::Before
                | AllenRelation::After
                | AllenRelation::Meets
                | AllenRelation::MetBy
        )
    }
}

impl fmt::Display for AllenRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AllenRelation::Before => "before",
            AllenRelation::Meets => "meets",
            AllenRelation::Overlaps => "overlaps",
            AllenRelation::Starts => "starts",
            AllenRelation::During => "during",
            AllenRelation::Finishes => "finishes",
            AllenRelation::Equal => "equal",
            AllenRelation::FinishedBy => "finished-by",
            AllenRelation::Contains => "contains",
            AllenRelation::StartedBy => "started-by",
            AllenRelation::OverlappedBy => "overlapped-by",
            AllenRelation::MetBy => "met-by",
            AllenRelation::After => "after",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(a: (i64, i64), b: (i64, i64)) -> AllenRelation {
        AllenRelation::classify(&Interval::of(a.0, a.1), &Interval::of(b.0, b.1))
    }

    #[test]
    fn all_thirteen_relations() {
        assert_eq!(rel((1, 2), (5, 8)), AllenRelation::Before);
        assert_eq!(rel((1, 4), (5, 8)), AllenRelation::Meets);
        assert_eq!(rel((1, 6), (5, 8)), AllenRelation::Overlaps);
        assert_eq!(rel((5, 6), (5, 8)), AllenRelation::Starts);
        assert_eq!(rel((6, 7), (5, 8)), AllenRelation::During);
        assert_eq!(rel((7, 8), (5, 8)), AllenRelation::Finishes);
        assert_eq!(rel((5, 8), (5, 8)), AllenRelation::Equal);
        assert_eq!(rel((4, 8), (5, 8)), AllenRelation::FinishedBy);
        assert_eq!(rel((4, 9), (5, 8)), AllenRelation::Contains);
        assert_eq!(rel((5, 9), (5, 8)), AllenRelation::StartedBy);
        assert_eq!(rel((6, 9), (5, 8)), AllenRelation::OverlappedBy);
        assert_eq!(rel((9, 12), (5, 8)), AllenRelation::MetBy);
        assert_eq!(rel((10, 12), (5, 8)), AllenRelation::After);
    }

    #[test]
    fn inverse_is_involutive_and_converse() {
        let cases = [
            ((1, 2), (5, 8)),
            ((1, 4), (5, 8)),
            ((1, 6), (5, 8)),
            ((5, 6), (5, 8)),
            ((6, 7), (5, 8)),
            ((7, 8), (5, 8)),
            ((5, 8), (5, 8)),
        ];
        for (a, b) in cases {
            let ab = rel(a, b);
            let ba = rel(b, a);
            assert_eq!(ab.inverse(), ba, "converse failed for {a:?} vs {b:?}");
            assert_eq!(ab.inverse().inverse(), ab);
        }
    }

    #[test]
    fn intersects_agrees_with_interval_overlaps() {
        for a0 in 0..6i64 {
            for a1 in a0..6 {
                for b0 in 0..6i64 {
                    for b1 in b0..6 {
                        let a = Interval::of(a0, a1);
                        let b = Interval::of(b0, b1);
                        assert_eq!(
                            AllenRelation::classify(&a, &b).intersects(),
                            a.overlaps(&b),
                            "{a:?} vs {b:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exactly_one_relation_holds() {
        // classify is a function; sanity-check its determinism over a grid.
        for a0 in 0..5i64 {
            for a1 in a0..5 {
                for b0 in 0..5i64 {
                    for b1 in b0..5 {
                        let a = Interval::of(a0, a1);
                        let b = Interval::of(b0, b1);
                        let r1 = AllenRelation::classify(&a, &b);
                        let r2 = AllenRelation::classify(&a, &b);
                        assert_eq!(r1, r2);
                    }
                }
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(AllenRelation::Before.to_string(), "before");
        assert_eq!(AllenRelation::OverlappedBy.to_string(), "overlapped-by");
    }
}
