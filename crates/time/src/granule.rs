//! Fixed-width granularities over the tick domain.
//!
//! The paper defers "more elaborate structures for the time domain" to a
//! subsequent paper (§3). The simplest such structure — and the one every
//! follow-on temporal model (TSQL2 in particular) adopted — is a hierarchy of
//! *granularities*: partitions of `T` into equal-width granules (days grouped
//! into weeks, trading ticks into sessions, …). We provide exactly that much:
//! a [`Granularity`] is a width + anchor, a [`Granule`] is one cell of the
//! partition, and lifespans can be expanded to or contracted from granule
//! resolution.

use crate::{Chronon, Interval, Lifespan};
use std::fmt;

/// A partition of the tick domain into consecutive granules of equal width.
///
/// Granule `n` covers ticks `[anchor + n*width, anchor + (n+1)*width - 1]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Granularity {
    width: u32,
    anchor: i64,
}

/// One cell of a [`Granularity`] partition, identified by its index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Granule {
    /// Index of the granule within its granularity.
    pub index: i64,
}

impl Granularity {
    /// A granularity of `width` ticks anchored at tick `anchor`.
    ///
    /// Returns `None` for a zero width (not a partition).
    pub fn new(width: u32, anchor: i64) -> Option<Granularity> {
        if width == 0 {
            None
        } else {
            Some(Granularity { width, anchor })
        }
    }

    /// Tick-level granularity: each granule is a single chronon.
    pub fn ticks() -> Granularity {
        Granularity {
            width: 1,
            anchor: 0,
        }
    }

    /// Granule width in ticks.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The granule containing chronon `t`.
    pub fn granule_of(&self, t: Chronon) -> Granule {
        Granule {
            index: (t.tick() - self.anchor).div_euclid(self.width as i64),
        }
    }

    /// The tick interval covered by `g`.
    pub fn extent(&self, g: Granule) -> Interval {
        let lo = self.anchor + g.index * self.width as i64;
        Interval::new(Chronon::new(lo), Chronon::new(lo + self.width as i64 - 1))
            .expect("granule extent is well-formed")
    }

    /// Expands a lifespan so every partially-covered granule becomes fully
    /// covered (outer/covering approximation — safe for "could the predicate
    /// hold this month?" questions).
    pub fn expand(&self, ls: &Lifespan) -> Lifespan {
        Lifespan::from_intervals(ls.intervals().iter().map(|iv| {
            let lo = self.extent(self.granule_of(iv.lo())).lo();
            let hi = self.extent(self.granule_of(iv.hi())).hi();
            Interval::new(lo, hi).expect("expanded interval is well-formed")
        }))
    }

    /// Contracts a lifespan to the union of granules it *fully* covers
    /// (inner approximation — safe for "did it hold throughout the month?").
    pub fn contract(&self, ls: &Lifespan) -> Lifespan {
        let mut out = Vec::new();
        for iv in ls.intervals() {
            // First granule fully inside: round lo up to a granule start.
            let first = {
                let g = self.granule_of(iv.lo());
                if self.extent(g).lo() == iv.lo() {
                    g
                } else {
                    Granule { index: g.index + 1 }
                }
            };
            let last = {
                let g = self.granule_of(iv.hi());
                if self.extent(g).hi() == iv.hi() {
                    g
                } else {
                    Granule { index: g.index - 1 }
                }
            };
            if first.index <= last.index {
                let lo = self.extent(first).lo();
                let hi = self.extent(last).hi();
                out.push(Interval::new(lo, hi).expect("contracted interval well-formed"));
            }
        }
        Lifespan::from_intervals(out)
    }

    /// The granules a lifespan touches, in ascending order.
    pub fn granules_touched(&self, ls: &Lifespan) -> Vec<Granule> {
        let mut out = Vec::new();
        for iv in ls.intervals() {
            let first = self.granule_of(iv.lo()).index;
            let last = self.granule_of(iv.hi()).index;
            for index in first..=last {
                if out.last() != Some(&Granule { index }) {
                    out.push(Granule { index });
                }
            }
        }
        out.dedup();
        out
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "granularity(width={}, anchor={})",
            self.width, self.anchor
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_width() {
        assert!(Granularity::new(0, 0).is_none());
    }

    #[test]
    fn granule_of_handles_negative_ticks() {
        let g = Granularity::new(10, 0).unwrap();
        assert_eq!(g.granule_of(Chronon::new(0)).index, 0);
        assert_eq!(g.granule_of(Chronon::new(9)).index, 0);
        assert_eq!(g.granule_of(Chronon::new(10)).index, 1);
        assert_eq!(g.granule_of(Chronon::new(-1)).index, -1);
        assert_eq!(g.granule_of(Chronon::new(-10)).index, -1);
        assert_eq!(g.granule_of(Chronon::new(-11)).index, -2);
    }

    #[test]
    fn extent_roundtrips() {
        let g = Granularity::new(7, 3).unwrap();
        for t in -30..30i64 {
            let gran = g.granule_of(Chronon::new(t));
            assert!(g.extent(gran).contains(Chronon::new(t)), "t={t}");
        }
    }

    #[test]
    fn expand_covers_and_contract_is_inside() {
        let g = Granularity::new(10, 0).unwrap();
        let ls = Lifespan::of(&[(3, 27)]);
        let outer = g.expand(&ls);
        let inner = g.contract(&ls);
        assert_eq!(outer, Lifespan::of(&[(0, 29)]));
        assert_eq!(inner, Lifespan::of(&[(10, 19)]));
        assert!(outer.contains_lifespan(&ls));
        assert!(ls.contains_lifespan(&inner));
    }

    #[test]
    fn contract_empty_when_nothing_fully_covered() {
        let g = Granularity::new(10, 0).unwrap();
        assert!(g.contract(&Lifespan::of(&[(3, 8)])).is_empty());
        // Exactly one full granule.
        assert_eq!(
            g.contract(&Lifespan::of(&[(10, 19)])),
            Lifespan::of(&[(10, 19)])
        );
    }

    #[test]
    fn granules_touched_dedups_across_runs() {
        let g = Granularity::new(10, 0).unwrap();
        let ls = Lifespan::of(&[(1, 2), (5, 12)]);
        let touched: Vec<i64> = g
            .granules_touched(&ls)
            .into_iter()
            .map(|x| x.index)
            .collect();
        assert_eq!(touched, vec![0, 1]);
    }

    #[test]
    fn tick_granularity_is_identity() {
        let g = Granularity::ticks();
        let ls = Lifespan::of(&[(1, 5), (9, 9)]);
        assert_eq!(g.expand(&ls), ls);
        assert_eq!(g.contract(&ls), ls);
    }
}
