//! # hrdm-time — the time substrate of the Historical Relational Data Model
//!
//! Clifford & Croker (ICDE 1987, §3) ground HRDM in a set `T = {…, t0, t1, …}`
//! of *times*, at most countably infinite, with a linear order `<_T`, and they
//! invite the reader to "assume that T is isomorphic to the natural numbers".
//! A **lifespan** is *any* subset of `T` — in particular it need not be a
//! single interval, which is exactly what lets HRDM model "reincarnation"
//! (an employee hired, fired, and re-hired; a schema attribute dropped and
//! later re-added, paper Fig. 6).
//!
//! This crate provides that substrate:
//!
//! * [`Chronon`] — a point of `T` (an `i64` tick; the paper's `t_i`).
//! * [`Interval`] — a closed interval `[t1, t2] = { t | t1 <= t <= t2 }`,
//!   the paper's notational convenience for contiguous subsets of `T`.
//! * [`AllenRelation`] — the thirteen qualitative relations between closed
//!   intervals; useful for reasoning about lifespan layout and heavily used
//!   by tests.
//! * [`Lifespan`] — a finite union of closed intervals in canonical form with
//!   the full set algebra the paper requires (`∪`, `∩`, `−`, plus bounded
//!   complement), iteration over chronons, and convenience constructors.
//! * [`Granule`] — optional coarse granularities (the paper defers "more
//!   elaborate structures for the time domain" to future work; we provide the
//!   simplest useful one: fixed-width granules such as days/months over
//!   ticks).
//!
//! Everything is deterministic and allocation-conscious: lifespans are sorted
//! `Vec<Interval>` in canonical (disjoint, maximal, ordered) form, so equality
//! is structural and the binary set operations are linear merges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allen;
mod chronon;
mod granule;
mod interval;
mod lifespan;

pub use allen::AllenRelation;
pub use chronon::{Chronon, NOW_SYMBOL};
pub use granule::{Granularity, Granule};
pub use interval::Interval;
pub use lifespan::{Lifespan, LifespanIter};
