//! The points of the time domain `T`.

use std::fmt;
use std::ops::{Add, Sub};
use std::str::FromStr;

/// Symbol used when rendering the distinguished "current time" in figures,
/// mirroring the paper's `NOW` marker (e.g. Fig. 6's `[t3, NOW]`).
pub const NOW_SYMBOL: &str = "NOW";

/// A single point of the time domain `T`.
///
/// The paper assumes `T` is isomorphic to the natural numbers with the usual
/// order (`t_i <_T t_j  iff  i < j`, §3). We use an `i64` tick so arithmetic
/// such as "the chronon immediately after `t`" is cheap and total in practice;
/// the library never manufactures chronons outside the range its callers use.
///
/// A `Chronon` is deliberately unit-free: examples map ticks to days, months
/// or trading sessions as they see fit, and [`crate::Granularity`] provides
/// fixed-width groupings when a coarser view is wanted.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Chronon(i64);

impl Chronon {
    /// Smallest representable chronon (used as a universe edge in tests).
    pub const MIN: Chronon = Chronon(i64::MIN);
    /// Largest representable chronon.
    pub const MAX: Chronon = Chronon(i64::MAX);

    /// Creates a chronon from a raw tick.
    #[inline]
    pub const fn new(tick: i64) -> Self {
        Chronon(tick)
    }

    /// The raw tick value.
    #[inline]
    pub const fn tick(self) -> i64 {
        self.0
    }

    /// The chronon immediately after this one, if representable.
    #[inline]
    pub fn succ(self) -> Option<Chronon> {
        self.0.checked_add(1).map(Chronon)
    }

    /// The chronon immediately before this one, if representable.
    #[inline]
    pub fn pred(self) -> Option<Chronon> {
        self.0.checked_sub(1).map(Chronon)
    }

    /// Saturating successor; stays at [`Chronon::MAX`] at the top of `T`.
    #[inline]
    pub fn saturating_succ(self) -> Chronon {
        Chronon(self.0.saturating_add(1))
    }

    /// Saturating predecessor; stays at [`Chronon::MIN`] at the bottom of `T`.
    #[inline]
    pub fn saturating_pred(self) -> Chronon {
        Chronon(self.0.saturating_sub(1))
    }

    /// Distance in ticks from `other` to `self` (may be negative).
    #[inline]
    pub fn delta(self, other: Chronon) -> i64 {
        self.0 - other.0
    }

    /// The earlier of two chronons.
    #[inline]
    pub fn min_of(self, other: Chronon) -> Chronon {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two chronons.
    #[inline]
    pub fn max_of(self, other: Chronon) -> Chronon {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl From<i64> for Chronon {
    #[inline]
    fn from(tick: i64) -> Self {
        Chronon(tick)
    }
}

impl From<Chronon> for i64 {
    #[inline]
    fn from(c: Chronon) -> Self {
        c.0
    }
}

impl Add<i64> for Chronon {
    type Output = Chronon;
    #[inline]
    fn add(self, rhs: i64) -> Chronon {
        Chronon(self.0 + rhs)
    }
}

impl Sub<i64> for Chronon {
    type Output = Chronon;
    #[inline]
    fn sub(self, rhs: i64) -> Chronon {
        Chronon(self.0 - rhs)
    }
}

impl fmt::Debug for Chronon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Chronon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl FromStr for Chronon {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.trim().parse::<i64>().map(Chronon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_tick_order() {
        // Paper §3: t_i <_T t_j iff i < j.
        assert!(Chronon::new(1) < Chronon::new(2));
        assert!(Chronon::new(-5) < Chronon::new(0));
        assert_eq!(Chronon::new(7), Chronon::new(7));
    }

    #[test]
    fn succ_pred_roundtrip() {
        let t = Chronon::new(41);
        assert_eq!(t.succ(), Some(Chronon::new(42)));
        assert_eq!(t.succ().unwrap().pred(), Some(t));
    }

    #[test]
    fn succ_pred_at_bounds() {
        assert_eq!(Chronon::MAX.succ(), None);
        assert_eq!(Chronon::MIN.pred(), None);
        assert_eq!(Chronon::MAX.saturating_succ(), Chronon::MAX);
        assert_eq!(Chronon::MIN.saturating_pred(), Chronon::MIN);
    }

    #[test]
    fn arithmetic_and_delta() {
        let t = Chronon::new(10);
        assert_eq!(t + 5, Chronon::new(15));
        assert_eq!(t - 3, Chronon::new(7));
        assert_eq!((t + 5).delta(t), 5);
        assert_eq!(t.delta(t + 5), -5);
    }

    #[test]
    fn min_max_of() {
        let a = Chronon::new(1);
        let b = Chronon::new(2);
        assert_eq!(a.min_of(b), a);
        assert_eq!(a.max_of(b), b);
        assert_eq!(a.min_of(a), a);
    }

    #[test]
    fn parse_and_display() {
        let t: Chronon = " 42 ".parse().unwrap();
        assert_eq!(t, Chronon::new(42));
        assert_eq!(t.to_string(), "42");
        assert_eq!(format!("{t:?}"), "t42");
        assert!("abc".parse::<Chronon>().is_err());
    }

    #[test]
    fn conversions() {
        let t = Chronon::from(9i64);
        let raw: i64 = t.into();
        assert_eq!(raw, 9);
        assert_eq!(t.tick(), 9);
    }
}
