//! Property tests for granularities: expand/contract form a Galois-style
//! pair of outer/inner approximations around the identity.

use hrdm_time::{Granularity, Interval, Lifespan};
use proptest::prelude::*;

fn lifespan_strategy() -> impl Strategy<Value = Lifespan> {
    prop::collection::vec((-60i64..60, 0i64..15), 0..5).prop_map(|pairs| {
        Lifespan::from_intervals(
            pairs
                .into_iter()
                .map(|(lo, len)| Interval::of(lo, lo + len)),
        )
    })
}

fn granularity_strategy() -> impl Strategy<Value = Granularity> {
    (1u32..12, -10i64..10).prop_map(|(w, a)| Granularity::new(w, a).expect("w >= 1"))
}

proptest! {
    #[test]
    fn contract_inside_expand_outside(ls in lifespan_strategy(), g in granularity_strategy()) {
        let inner = g.contract(&ls);
        let outer = g.expand(&ls);
        prop_assert!(ls.contains_lifespan(&inner), "contract escaped: {inner} ⊄ {ls}");
        prop_assert!(outer.contains_lifespan(&ls), "expand lost ground: {ls} ⊄ {outer}");
    }

    #[test]
    fn expand_and_contract_are_idempotent(ls in lifespan_strategy(), g in granularity_strategy()) {
        let outer = g.expand(&ls);
        prop_assert_eq!(g.expand(&outer), outer.clone());
        let inner = g.contract(&ls);
        prop_assert_eq!(g.contract(&inner), inner);
    }

    #[test]
    fn granule_aligned_lifespans_are_fixed_points(
        idx in -8i64..8,
        len in 0i64..4,
        g in granularity_strategy(),
    ) {
        // A lifespan made of whole granules is unchanged by both maps.
        let lo = g.extent(g.granule_of(hrdm_time::Chronon::new(idx * g.width() as i64))).lo();
        let hi_granule_start = lo.tick() + len * g.width() as i64;
        let hi = hi_granule_start + g.width() as i64 - 1;
        let ls = Lifespan::interval(lo.tick(), hi);
        prop_assert_eq!(g.expand(&ls), ls.clone());
        prop_assert_eq!(g.contract(&ls), ls);
    }

    #[test]
    fn granules_touched_covers_the_lifespan(ls in lifespan_strategy(), g in granularity_strategy()) {
        let touched = g.granules_touched(&ls);
        // Every chronon of the lifespan falls into a touched granule…
        for c in ls.iter() {
            prop_assert!(touched.contains(&g.granule_of(c)));
        }
        // …and every touched granule intersects the lifespan.
        for gran in &touched {
            let extent = g.extent(*gran);
            prop_assert!(ls.intersects(&Lifespan::from(extent)));
        }
    }

    #[test]
    fn granule_of_respects_extent(t in -200i64..200, g in granularity_strategy()) {
        let c = hrdm_time::Chronon::new(t);
        let gran = g.granule_of(c);
        prop_assert!(g.extent(gran).contains(c));
        prop_assert_eq!(g.extent(gran).len(), g.width() as u64);
    }
}
