//! Property-based tests for `Lifespan`: every set operation is cross-checked
//! against a naive `BTreeSet<i64>` model on a bounded universe, and the
//! algebraic laws the paper relies on (it calls the semantics of the lifespan
//! operators "apparent" since "lifespans are just sets", §2) are machine-checked.

use hrdm_time::{Chronon, Interval, Lifespan};
use proptest::prelude::*;
use std::collections::BTreeSet;

const UNIVERSE: std::ops::RangeInclusive<i64> = -50..=50;

fn to_set(ls: &Lifespan) -> BTreeSet<i64> {
    ls.iter().map(|c| c.tick()).collect()
}

fn from_set(s: &BTreeSet<i64>) -> Lifespan {
    s.iter().map(|&t| Chronon::new(t)).collect()
}

/// Strategy: an arbitrary lifespan within the bounded universe, built from up
/// to 8 (possibly overlapping, unsorted) intervals.
fn lifespan_strategy() -> impl Strategy<Value = Lifespan> {
    prop::collection::vec((UNIVERSE, 0i64..=12), 0..8).prop_map(|pairs| {
        Lifespan::from_intervals(
            pairs
                .into_iter()
                .map(|(lo, len)| Interval::of(lo, (lo + len).min(*UNIVERSE.end()))),
        )
    })
}

proptest! {
    #[test]
    fn union_matches_set_model(a in lifespan_strategy(), b in lifespan_strategy()) {
        let got = to_set(&a.union(&b));
        let want: BTreeSet<i64> = to_set(&a).union(&to_set(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn intersection_matches_set_model(a in lifespan_strategy(), b in lifespan_strategy()) {
        let got = to_set(&a.intersect(&b));
        let want: BTreeSet<i64> = to_set(&a).intersection(&to_set(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn difference_matches_set_model(a in lifespan_strategy(), b in lifespan_strategy()) {
        let got = to_set(&a.difference(&b));
        let want: BTreeSet<i64> = to_set(&a).difference(&to_set(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn symmetric_difference_matches_set_model(a in lifespan_strategy(), b in lifespan_strategy()) {
        let got = to_set(&a.symmetric_difference(&b));
        let want: BTreeSet<i64> =
            to_set(&a).symmetric_difference(&to_set(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn roundtrip_through_chronons_is_identity(a in lifespan_strategy()) {
        prop_assert_eq!(from_set(&to_set(&a)), a);
    }

    #[test]
    fn canonical_form_invariants(a in lifespan_strategy(), b in lifespan_strategy()) {
        // Every op result must be in canonical form: sorted, disjoint, maximal.
        for ls in [a.union(&b), a.intersect(&b), a.difference(&b)] {
            let runs = ls.intervals();
            for w in runs.windows(2) {
                prop_assert!(w[0].hi() < w[1].lo(), "unsorted/overlapping: {:?}", runs);
                prop_assert!(
                    w[0].hi().succ() != Some(w[1].lo()),
                    "non-maximal (adjacent runs): {:?}",
                    runs
                );
            }
        }
    }

    #[test]
    fn cardinality_matches_model(a in lifespan_strategy()) {
        prop_assert_eq!(a.cardinality(), to_set(&a).len() as u64);
    }

    #[test]
    fn contains_matches_model(a in lifespan_strategy(), t in UNIVERSE) {
        prop_assert_eq!(a.contains(Chronon::new(t)), to_set(&a).contains(&t));
    }

    #[test]
    fn intersects_iff_nonempty_intersection(a in lifespan_strategy(), b in lifespan_strategy()) {
        prop_assert_eq!(a.intersects(&b), !a.intersect(&b).is_empty());
    }

    #[test]
    fn subset_test_matches_model(a in lifespan_strategy(), b in lifespan_strategy()) {
        prop_assert_eq!(
            a.contains_lifespan(&b),
            to_set(&b).is_subset(&to_set(&a))
        );
    }

    // ---- Boolean-algebra laws the algebra layer leans on ----

    #[test]
    fn union_associative(a in lifespan_strategy(), b in lifespan_strategy(), c in lifespan_strategy()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn intersection_distributes_over_union(
        a in lifespan_strategy(), b in lifespan_strategy(), c in lifespan_strategy()
    ) {
        prop_assert_eq!(
            a.intersect(&b.union(&c)),
            a.intersect(&b).union(&a.intersect(&c))
        );
    }

    #[test]
    fn de_morgan_within_universe(a in lifespan_strategy(), b in lifespan_strategy()) {
        let u = Interval::of(*UNIVERSE.start(), *UNIVERSE.end());
        prop_assert_eq!(
            a.union(&b).complement_within(u),
            a.complement_within(u).intersect(&b.complement_within(u))
        );
    }

    #[test]
    fn difference_via_complement(a in lifespan_strategy(), b in lifespan_strategy()) {
        let u = Interval::of(*UNIVERSE.start(), *UNIVERSE.end());
        prop_assert_eq!(a.difference(&b), a.intersect(&b.complement_within(u)));
    }

    #[test]
    fn clamp_equals_intersection_with_window(a in lifespan_strategy(), lo in UNIVERSE, len in 0i64..20) {
        let window = Interval::of(lo, (lo + len).min(*UNIVERSE.end()));
        prop_assert_eq!(a.clamp(window), a.intersect(&Lifespan::from(window)));
    }

    #[test]
    fn shift_preserves_cardinality_and_gaps(a in lifespan_strategy(), d in -100i64..100) {
        let shifted = a.shift(d);
        prop_assert_eq!(shifted.cardinality(), a.cardinality());
        prop_assert_eq!(shifted.interval_count(), a.interval_count());
        prop_assert_eq!(shifted.shift(-d), a);
    }
}
