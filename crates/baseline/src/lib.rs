//! # hrdm-baseline — the models HRDM positions itself against
//!
//! The paper's §1 surveys the lineage of historical data models and argues
//! for attribute-level timestamping. To reproduce its qualitative
//! comparisons ("who wins, by what shape") this crate implements the
//! comparator models from first principles:
//!
//! * [`snapshot`] — the classical (static) relational model and algebra.
//!   Also the target of the §5 *consistent extension* claim: every HRDM
//!   operator must degenerate to its classical counterpart when `T = {now}`.
//! * [`tuple_ts`] — tuple-level timestamping in first normal form, the
//!   [Ben-Zvi 82] / TQuel [Snodgrass 84] / homogeneous [Gadia 85] line: each
//!   tuple version carries one interval; querying requires *coalescing*.
//! * [`cube`] — the three-dimensional "cube" view of the earliest proposals
//!   ([Klopprogge 81], [Clifford 83]): a full snapshot per time point with an
//!   implicit `EXISTS?` flag.
//! * [`convert`] — faithful conversions from HRDM relations into each
//!   baseline (information-preserving, so the models answer the same
//!   queries and only their *costs* differ).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod cube;
pub mod snapshot;
pub mod tuple_ts;

pub use convert::{hrdm_to_cube, hrdm_to_ts, snapshot_of_hrdm, ts_to_hrdm};
pub use cube::CubeRelation;
pub use snapshot::{Row, SnapshotRelation, SnapshotScheme};
pub use tuple_ts::{TsRelation, TsScheme, TsTuple};
