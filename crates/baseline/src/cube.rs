//! The three-dimensional "cube" model of the earliest historical databases.
//!
//! Paper §1: "The database was seen as a three-dimensional cube, wherein at
//! any time t a tuple with EXISTS? = True was considered to be meaningful,
//! otherwise it was to be ignored" ([Klopprogge 81], [Clifford 83]). We
//! materialize the cube as one classical snapshot per chronon of a bounded
//! universe — the brute-force end of the timestamping-granularity spectrum:
//! instant snapshots, but storage proportional to `|T| × |instance|`.

use hrdm_core::{Attribute, HrdmError, Result, Value, ValueKind};
use hrdm_time::{Chronon, Interval};
use std::collections::BTreeMap;
use std::fmt;

/// A row of the cube: one `Option<Value>` per attribute (`None` encodes an
/// attribute bearing no value at that time even though the tuple EXISTS —
/// the cube ancestors padded these with nulls).
pub type CubeRow = Vec<Option<Value>>;

/// A cube relation: a full snapshot per chronon of its universe.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CubeRelation {
    attrs: Vec<(Attribute, ValueKind)>,
    key: Vec<Attribute>,
    universe: Interval,
    /// `snapshots[t]` = rows existing at `t`. Chronons of the universe with
    /// no entry have an empty snapshot.
    snapshots: BTreeMap<Chronon, Vec<CubeRow>>,
}

impl CubeRelation {
    /// An empty cube over `universe`.
    pub fn new(
        attrs: Vec<(Attribute, ValueKind)>,
        key: Vec<Attribute>,
        universe: Interval,
    ) -> Result<CubeRelation> {
        if attrs.is_empty() {
            return Err(HrdmError::EmptyScheme);
        }
        for k in &key {
            if !attrs.iter().any(|(a, _)| a == k) {
                return Err(HrdmError::KeyNotInScheme(k.clone()));
            }
        }
        Ok(CubeRelation {
            attrs,
            key,
            universe,
            snapshots: BTreeMap::new(),
        })
    }

    /// The attributes.
    pub fn attrs(&self) -> &[(Attribute, ValueKind)] {
        &self.attrs
    }

    /// The bounded time universe of the cube.
    pub fn universe(&self) -> Interval {
        self.universe
    }

    /// Index of an attribute.
    pub fn index_of(&self, name: &Attribute) -> Result<usize> {
        self.attrs
            .iter()
            .position(|(a, _)| a == name)
            .ok_or_else(|| HrdmError::UnknownAttribute(name.clone()))
    }

    /// Records that `row` EXISTS at time `t`.
    pub fn assert_row(&mut self, t: Chronon, row: CubeRow) -> Result<()> {
        if !self.universe.contains(t) {
            return Err(HrdmError::ValueOutsideLifespan {
                attribute: Attribute::new("<time>"),
            });
        }
        if row.len() != self.attrs.len() {
            return Err(HrdmError::EmptyScheme);
        }
        for ((attr, kind), v) in self.attrs.iter().zip(&row) {
            if let Some(v) = v {
                if v.kind() != *kind {
                    return Err(HrdmError::DomainMismatch {
                        attribute: attr.clone(),
                        expected: *kind,
                        found: v.kind(),
                    });
                }
            }
        }
        self.snapshots.entry(t).or_default().push(row);
        Ok(())
    }

    /// The snapshot at `t` (rows with EXISTS? = true).
    pub fn timeslice(&self, t: Chronon) -> &[CubeRow] {
        self.snapshots.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does a row with the given key values exist at `t`?
    pub fn exists(&self, key: &[Value], t: Chronon) -> Result<bool> {
        let idxs: Vec<usize> = self
            .key
            .iter()
            .map(|k| self.index_of(k))
            .collect::<Result<_>>()?;
        Ok(self.timeslice(t).iter().any(|row| {
            idxs.iter()
                .zip(key)
                .all(|(&i, kv)| row[i].as_ref() == Some(kv))
        }))
    }

    /// The object-history query: scans **every** snapshot for the key — the
    /// cube's weak spot.
    pub fn object_history(&self, key: &[Value]) -> Result<Vec<(Chronon, &CubeRow)>> {
        let idxs: Vec<usize> = self
            .key
            .iter()
            .map(|k| self.index_of(k))
            .collect::<Result<_>>()?;
        let mut out = Vec::new();
        for (t, rows) in &self.snapshots {
            for row in rows {
                if idxs
                    .iter()
                    .zip(key)
                    .all(|(&i, kv)| row[i].as_ref() == Some(kv))
                {
                    out.push((*t, row));
                }
            }
        }
        Ok(out)
    }

    /// Total stored cells — `Σ_t rows(t) × arity`, the E1/E8 storage metric.
    /// Grows with `|T|` even when nothing changes.
    pub fn cells(&self) -> usize {
        self.snapshots
            .values()
            .map(|rows| rows.len() * self.attrs.len())
            .sum()
    }

    /// Number of chronons with at least one existing row.
    pub fn populated_instants(&self) -> usize {
        self.snapshots.values().filter(|r| !r.is_empty()).count()
    }
}

impl fmt::Display for CubeRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.attrs.iter().map(|(a, _)| a.name()).collect();
        writeln!(f, "cube over {} ({})", self.universe, names.join(", "))?;
        for (t, rows) in &self.snapshots {
            for row in rows {
                let vals: Vec<String> = row
                    .iter()
                    .map(|v| match v {
                        Some(v) => v.to_string(),
                        None => "⊥".to_string(),
                    })
                    .collect();
                writeln!(f, "  t={t}: ({})", vals.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> CubeRelation {
        let mut c = CubeRelation::new(
            vec![
                (Attribute::new("NAME"), ValueKind::Str),
                (Attribute::new("SALARY"), ValueKind::Int),
            ],
            vec![Attribute::new("NAME")],
            Interval::of(0, 9),
        )
        .unwrap();
        for t in 0..=4 {
            c.assert_row(
                Chronon::new(t),
                vec![Some(Value::str("John")), Some(Value::Int(25))],
            )
            .unwrap();
        }
        for t in 5..=9 {
            c.assert_row(
                Chronon::new(t),
                vec![Some(Value::str("John")), Some(Value::Int(30))],
            )
            .unwrap();
        }
        c
    }

    #[test]
    fn timeslice_is_direct_lookup() {
        let c = cube();
        assert_eq!(c.timeslice(Chronon::new(3)).len(), 1);
        assert_eq!(c.timeslice(Chronon::new(7))[0][1], Some(Value::Int(30)));
        assert!(c.timeslice(Chronon::new(99)).is_empty());
    }

    #[test]
    fn exists_flag_semantics() {
        let c = cube();
        assert!(c.exists(&[Value::str("John")], Chronon::new(0)).unwrap());
        assert!(!c.exists(&[Value::str("Mary")], Chronon::new(0)).unwrap());
    }

    #[test]
    fn object_history_scans_all_snapshots() {
        let c = cube();
        let hist = c.object_history(&[Value::str("John")]).unwrap();
        assert_eq!(hist.len(), 10); // one entry per chronon — the cube's cost
    }

    #[test]
    fn cells_grow_with_time_even_without_change() {
        let c = cube();
        // 10 instants × 1 row × 2 attrs, although the value changed only once.
        assert_eq!(c.cells(), 20);
        assert_eq!(c.populated_instants(), 10);
    }

    #[test]
    fn universe_and_kind_validation() {
        let mut c = cube();
        assert!(c
            .assert_row(Chronon::new(50), vec![Some(Value::str("X")), None])
            .is_err());
        assert!(c
            .assert_row(
                Chronon::new(1),
                vec![Some(Value::Int(1)), Some(Value::Int(1))]
            )
            .is_err());
        // Nulls are fine — the EXISTS? models padded with them.
        assert!(c
            .assert_row(Chronon::new(1), vec![Some(Value::str("M")), None])
            .is_ok());
    }
}
