//! Tuple-level timestamping in first normal form.
//!
//! The lineage the paper positions itself against (§1): [Ben-Zvi 82], TQuel
//! [Snodgrass 84], and the homogeneous model of [Gadia 85] attach the
//! temporal dimension to whole **tuples**: an object whose attributes change
//! `k` times is stored as `k + 1` versions, each a flat row stamped with one
//! interval. The price is paid at query time: value-equivalent adjacent
//! versions must be **coalesced**, and an object's history is scattered
//! across versions.

use hrdm_core::algebra::Comparator;
use hrdm_core::{Attribute, HrdmError, Result, Value, ValueKind};
use hrdm_time::{Chronon, Interval};
use std::collections::BTreeMap;
use std::fmt;

/// Scheme of a tuple-timestamped relation: flat attributes plus the implicit
/// timestamp interval.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TsScheme {
    attrs: Vec<(Attribute, ValueKind)>,
    key: Vec<Attribute>,
}

impl TsScheme {
    /// Creates a scheme.
    pub fn new(attrs: Vec<(Attribute, ValueKind)>, key: Vec<Attribute>) -> Result<TsScheme> {
        if attrs.is_empty() {
            return Err(HrdmError::EmptyScheme);
        }
        for k in &key {
            if !attrs.iter().any(|(a, _)| a == k) {
                return Err(HrdmError::KeyNotInScheme(k.clone()));
            }
        }
        Ok(TsScheme { attrs, key })
    }

    /// Attributes in declaration order.
    pub fn attrs(&self) -> &[(Attribute, ValueKind)] {
        &self.attrs
    }

    /// Key attributes.
    pub fn key(&self) -> &[Attribute] {
        &self.key
    }

    /// Number of attributes (excluding the timestamp).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of an attribute.
    pub fn index_of(&self, name: &Attribute) -> Result<usize> {
        self.attrs
            .iter()
            .position(|(a, _)| a == name)
            .ok_or_else(|| HrdmError::UnknownAttribute(name.clone()))
    }
}

/// One tuple *version*: a flat row valid over one closed interval.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TsTuple {
    /// The row values, positional per the scheme.
    pub values: Vec<Value>,
    /// The version's validity interval.
    pub span: Interval,
}

/// A tuple-timestamped relation: a bag of versions.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TsRelation {
    scheme: Option<TsScheme>,
    tuples: Vec<TsTuple>,
}

impl TsRelation {
    /// An empty relation on `scheme`.
    pub fn new(scheme: TsScheme) -> TsRelation {
        TsRelation {
            scheme: Some(scheme),
            tuples: Vec::new(),
        }
    }

    /// Builds a relation from versions.
    pub fn with_tuples(scheme: TsScheme, tuples: Vec<TsTuple>) -> Result<TsRelation> {
        let mut r = TsRelation::new(scheme);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The scheme.
    pub fn scheme(&self) -> &TsScheme {
        self.scheme.as_ref().expect("constructed with a scheme")
    }

    /// The stored versions.
    pub fn tuples(&self) -> &[TsTuple] {
        &self.tuples
    }

    /// Number of stored versions — the storage-cost driver of this model.
    pub fn version_count(&self) -> usize {
        self.tuples.len()
    }

    /// Total stored cells (versions × arity), the E8 storage metric.
    pub fn cells(&self) -> usize {
        self.tuples.len() * self.scheme().arity()
    }

    /// Inserts a version, validating arity and kinds.
    pub fn insert(&mut self, t: TsTuple) -> Result<()> {
        let scheme = self.scheme();
        if t.values.len() != scheme.arity() {
            return Err(HrdmError::EmptyScheme);
        }
        for ((attr, kind), v) in scheme.attrs.iter().zip(&t.values) {
            if v.kind() != *kind {
                return Err(HrdmError::DomainMismatch {
                    attribute: attr.clone(),
                    expected: *kind,
                    found: v.kind(),
                });
            }
        }
        self.tuples.push(t);
        Ok(())
    }

    /// The classical snapshot at `s`: all versions whose span covers `s`.
    pub fn timeslice(&self, s: Chronon) -> Vec<&TsTuple> {
        self.tuples.iter().filter(|t| t.span.contains(s)).collect()
    }

    /// Selection `A θ const`, version-wise.
    pub fn select_value(
        &self,
        attr: &Attribute,
        op: Comparator,
        value: &Value,
    ) -> Result<TsRelation> {
        let idx = self.scheme().index_of(attr)?;
        let mut out = TsRelation::new(self.scheme().clone());
        for t in &self.tuples {
            if op.test(t.values[idx].try_cmp(value)?) {
                out.tuples.push(t.clone());
            }
        }
        Ok(out)
    }

    /// Projection onto `x`, followed by [`TsRelation::coalesce`] — in
    /// tuple-timestamped models projection *requires* coalescing: dropping
    /// the attribute that distinguished two adjacent versions leaves
    /// value-equivalent versions with abutting spans.
    pub fn project(&self, x: &[Attribute]) -> Result<TsRelation> {
        let idxs: Vec<usize> = x
            .iter()
            .map(|a| self.scheme().index_of(a))
            .collect::<Result<_>>()?;
        let attrs = idxs
            .iter()
            .map(|&i| self.scheme().attrs[i].clone())
            .collect();
        let key = self
            .scheme()
            .key
            .iter()
            .filter(|k| x.contains(k))
            .cloned()
            .collect();
        let scheme = TsScheme::new(attrs, key)?;
        let mut out = TsRelation::new(scheme);
        for t in &self.tuples {
            out.tuples.push(TsTuple {
                values: idxs.iter().map(|&i| t.values[i].clone()).collect(),
                span: t.span,
            });
        }
        Ok(out.coalesce())
    }

    /// Coalescing: merges value-equivalent versions whose spans overlap or
    /// abut — the hallmark (and hidden cost) of tuple timestamping. The
    /// result is canonical: per distinct row, disjoint maximal spans.
    pub fn coalesce(&self) -> TsRelation {
        let mut by_row: BTreeMap<Vec<Value>, Vec<Interval>> = BTreeMap::new();
        for t in &self.tuples {
            by_row.entry(t.values.clone()).or_default().push(t.span);
        }
        let mut out = TsRelation::new(self.scheme().clone());
        for (values, mut spans) in by_row {
            spans.sort_by_key(|iv| (iv.lo(), iv.hi()));
            let mut merged: Vec<Interval> = Vec::with_capacity(spans.len());
            for iv in spans {
                match merged.last_mut() {
                    Some(last) if last.mergeable(&iv) => {
                        *last = last.merge(&iv).expect("mergeable merge");
                    }
                    _ => merged.push(iv),
                }
            }
            for span in merged {
                out.tuples.push(TsTuple {
                    values: values.clone(),
                    span,
                });
            }
        }
        out
    }

    /// All versions of the object with the given key value — the
    /// "object history" query, which this model must reassemble from
    /// scattered versions.
    pub fn object_history(&self, key: &[Value]) -> Result<Vec<&TsTuple>> {
        let idxs: Vec<usize> = self
            .scheme()
            .key
            .iter()
            .map(|k| self.scheme().index_of(k))
            .collect::<Result<_>>()?;
        Ok(self
            .tuples
            .iter()
            .filter(|t| idxs.iter().zip(key).all(|(&i, kv)| &t.values[i] == kv))
            .collect())
    }

    /// Temporal equijoin: versions join when the join values match **and**
    /// their spans intersect; the result span is the intersection (the
    /// standard interval-join of tuple-timestamped models).
    pub fn equijoin(&self, other: &TsRelation, a: &Attribute, b: &Attribute) -> Result<TsRelation> {
        let ai = self.scheme().index_of(a)?;
        let bi = other.scheme().index_of(b)?;
        let mut attrs = self.scheme().attrs.clone();
        for (name, kind) in &other.scheme().attrs {
            if self.scheme().index_of(name).is_ok() {
                return Err(HrdmError::AttributesNotDisjoint(name.clone()));
            }
            attrs.push((name.clone(), *kind));
        }
        let mut key = self.scheme().key.clone();
        key.extend(other.scheme().key.iter().cloned());
        let scheme = TsScheme::new(attrs, key)?;
        let mut out = TsRelation::new(scheme);
        for t1 in &self.tuples {
            for t2 in &other.tuples {
                if t1.values[ai] == t2.values[bi] {
                    if let Some(span) = t1.span.intersect(&t2.span) {
                        let mut values = t1.values.clone();
                        values.extend(t2.values.iter().cloned());
                        out.tuples.push(TsTuple { values, span });
                    }
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for TsRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.scheme().attrs.iter().map(|(a, _)| a.name()).collect();
        writeln!(f, "({}) | span", names.join(", "))?;
        for t in &self.tuples {
            let vals: Vec<String> = t.values.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  ({}) | {}", vals.join(", "), t.span)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> TsScheme {
        TsScheme::new(
            vec![
                (Attribute::new("NAME"), ValueKind::Str),
                (Attribute::new("SALARY"), ValueKind::Int),
                (Attribute::new("DEPT"), ValueKind::Str),
            ],
            vec![Attribute::new("NAME")],
        )
        .unwrap()
    }

    fn version(name: &str, salary: i64, dept: &str, lo: i64, hi: i64) -> TsTuple {
        TsTuple {
            values: vec![Value::str(name), Value::Int(salary), Value::str(dept)],
            span: Interval::of(lo, hi),
        }
    }

    fn john_history() -> TsRelation {
        // John's salary changes at 10, dept at 20: three versions.
        TsRelation::with_tuples(
            scheme(),
            vec![
                version("John", 25, "Toys", 0, 9),
                version("John", 30, "Toys", 10, 19),
                version("John", 30, "Shoes", 20, 29),
            ],
        )
        .unwrap()
    }

    #[test]
    fn timeslice_filters_by_span() {
        let r = john_history();
        assert_eq!(r.timeslice(Chronon::new(5)).len(), 1);
        assert_eq!(r.timeslice(Chronon::new(15))[0].values[1], Value::Int(30));
        assert!(r.timeslice(Chronon::new(99)).is_empty());
    }

    #[test]
    fn projection_requires_coalescing() {
        let r = john_history();
        // Project away DEPT: the two salary-30 versions become adjacent and
        // value-equivalent — coalescing must merge them.
        let p = r.project(&["NAME".into(), "SALARY".into()]).unwrap();
        assert_eq!(p.version_count(), 2);
        let spans: Vec<Interval> = p.tuples().iter().map(|t| t.span).collect();
        assert!(spans.contains(&Interval::of(10, 29)));
    }

    #[test]
    fn coalesce_merges_overlapping_equal_rows() {
        let r = TsRelation::with_tuples(
            scheme(),
            vec![
                version("A", 1, "X", 0, 5),
                version("A", 1, "X", 3, 9),
                version("A", 1, "X", 11, 12), // gap at 10: stays separate
            ],
        )
        .unwrap();
        let c = r.coalesce();
        assert_eq!(c.version_count(), 2);
    }

    #[test]
    fn object_history_gathers_versions() {
        let mut r = john_history();
        r.insert(version("Mary", 40, "Toys", 0, 29)).unwrap();
        let hist = r.object_history(&[Value::str("John")]).unwrap();
        assert_eq!(hist.len(), 3);
    }

    #[test]
    fn select_is_versionwise() {
        let r = john_history();
        let s = r
            .select_value(&"SALARY".into(), Comparator::Eq, &Value::Int(30))
            .unwrap();
        assert_eq!(s.version_count(), 2);
    }

    #[test]
    fn equijoin_intersects_spans() {
        let dept_scheme = TsScheme::new(
            vec![
                (Attribute::new("DNAME"), ValueKind::Str),
                (Attribute::new("BUDGET"), ValueKind::Int),
            ],
            vec![Attribute::new("DNAME")],
        )
        .unwrap();
        let depts = TsRelation::with_tuples(
            dept_scheme,
            vec![TsTuple {
                values: vec![Value::str("Toys"), Value::Int(100)],
                span: Interval::of(5, 14),
            }],
        )
        .unwrap();
        let j = john_history()
            .equijoin(&depts, &"DEPT".into(), &"DNAME".into())
            .unwrap();
        // John-in-Toys versions: [0,9] ∩ [5,14] = [5,9]; [10,19] ∩ [5,14] = [10,14].
        assert_eq!(j.version_count(), 2);
        let spans: Vec<Interval> = j.tuples().iter().map(|t| t.span).collect();
        assert!(spans.contains(&Interval::of(5, 9)));
        assert!(spans.contains(&Interval::of(10, 14)));
    }

    #[test]
    fn cells_metric() {
        assert_eq!(john_history().cells(), 9); // 3 versions × 3 attrs
    }

    #[test]
    fn insert_validates() {
        let mut r = TsRelation::new(scheme());
        assert!(r
            .insert(TsTuple {
                values: vec![Value::Int(1), Value::Int(2), Value::Int(3)],
                span: Interval::of(0, 1),
            })
            .is_err());
    }
}
