//! Information-preserving conversions between HRDM and the baselines.
//!
//! The paper's §1 comparison is about *where the temporal dimension is
//! attached*, not about what can be represented: the same history can be
//! stored attribute-timestamped (HRDM), tuple-timestamped (1NF versions), or
//! as a cube of snapshots. These conversions realize that equivalence so the
//! benchmark experiments (DESIGN.md E8) measure the same information under
//! the three layouts.

use crate::cube::CubeRelation;
use crate::snapshot::{SnapshotRelation, SnapshotScheme};
use crate::tuple_ts::{TsRelation, TsScheme, TsTuple};
use hrdm_core::{Attribute, Relation, Result, Scheme, TemporalValue, Tuple, Value};
use hrdm_time::{Chronon, Interval, Lifespan};
use std::collections::BTreeMap;

/// The classical snapshot of an HRDM relation at `t`, as a baseline
/// [`SnapshotRelation`]. Tuples alive at `t` with some attribute undefined
/// there have no classical (null-free) counterpart and are skipped.
pub fn snapshot_of_hrdm(r: &Relation, t: Chronon) -> Result<SnapshotRelation> {
    let attrs: Vec<(Attribute, hrdm_core::ValueKind)> = r
        .scheme()
        .attrs()
        .iter()
        .map(|d| (d.name().clone(), d.domain().kind()))
        .collect();
    let scheme = SnapshotScheme::new(attrs, r.scheme().key().to_vec())?;
    let mut out = SnapshotRelation::new(scheme);
    'tuples: for tuple in r.iter() {
        if !tuple.lifespan().contains(t) {
            continue;
        }
        let mut row = Vec::with_capacity(r.scheme().arity());
        for def in r.scheme().attrs() {
            match tuple.at(def.name(), t) {
                Some(v) => row.push(v.clone()),
                None => continue 'tuples,
            }
        }
        out.insert(row)?;
    }
    Ok(out)
}

/// Expands an HRDM relation into tuple-timestamped 1NF versions: one flat
/// version per maximal interval on which **all** attributes of a tuple are
/// simultaneously constant and defined.
///
/// This is precisely the blow-up the paper attributes to tuple-level
/// timestamping: an object whose attributes change `k` times independently
/// becomes `O(k)` versions. Times at which some attribute is undefined have
/// no 1NF row and are not covered.
pub fn hrdm_to_ts(r: &Relation) -> Result<TsRelation> {
    let attrs: Vec<(Attribute, hrdm_core::ValueKind)> = r
        .scheme()
        .attrs()
        .iter()
        .map(|d| (d.name().clone(), d.domain().kind()))
        .collect();
    let names: Vec<Attribute> = attrs.iter().map(|(a, _)| a.clone()).collect();
    let scheme = TsScheme::new(attrs, r.scheme().key().to_vec())?;
    let mut out = TsRelation::new(scheme);

    for tuple in r.iter() {
        // The fully-defined region: intersection of all attribute domains.
        let mut defined = tuple.lifespan().clone();
        for name in &names {
            let dom = tuple
                .value(name)
                .map(|tv| tv.domain())
                .unwrap_or_else(Lifespan::empty);
            defined = defined.intersect(&dom);
        }
        for run in defined.intervals() {
            // Change points: the run start plus every segment start within.
            let mut points = vec![run.lo()];
            for name in &names {
                if let Some(tv) = tuple.value(name) {
                    for (iv, _) in tv.segments() {
                        if iv.lo() > run.lo() && iv.lo() <= run.hi() {
                            points.push(iv.lo());
                        }
                    }
                }
            }
            points.sort_unstable();
            points.dedup();
            for (i, &lo) in points.iter().enumerate() {
                let hi = match points.get(i + 1) {
                    Some(next) => next.saturating_pred(),
                    None => run.hi(),
                };
                let span = Interval::new(lo, hi).expect("change points are ordered");
                let values: Vec<Value> = names
                    .iter()
                    .map(|name| {
                        tuple
                            .at(name, lo)
                            .cloned()
                            .expect("defined region by construction")
                    })
                    .collect();
                out.insert(TsTuple { values, span })?;
            }
        }
    }
    Ok(out)
}

/// Reassembles an HRDM relation from tuple-timestamped versions, grouping by
/// key and fusing the flat versions back into temporal functions. The
/// round trip `ts_to_hrdm(hrdm_to_ts(r))` restores `r` whenever `r`'s tuples
/// are total over their lifespans (the information both models share).
pub fn ts_to_hrdm(ts: &TsRelation, scheme: &Scheme) -> Result<Relation> {
    let names: Vec<Attribute> = scheme.attr_names().cloned().collect();
    let key_idxs: Vec<usize> = ts
        .scheme()
        .key()
        .iter()
        .map(|k| ts.scheme().index_of(k))
        .collect::<Result<_>>()?;

    let mut groups: BTreeMap<Vec<Value>, Vec<&TsTuple>> = BTreeMap::new();
    for t in ts.tuples() {
        let key: Vec<Value> = key_idxs.iter().map(|&i| t.values[i].clone()).collect();
        groups.entry(key).or_default().push(t);
    }

    let mut tuples = Vec::with_capacity(groups.len());
    for (_, versions) in groups {
        let lifespan = Lifespan::from_intervals(versions.iter().map(|v| v.span));
        let mut builder = Tuple::builder(lifespan);
        for (i, name) in names.iter().enumerate() {
            let idx = ts.scheme().index_of(name)?;
            let tv = TemporalValue::from_segments(
                versions.iter().map(|v| (v.span, v.values[idx].clone())),
            )?;
            let _ = i;
            builder = builder.value(name.clone(), tv);
        }
        tuples.push(builder.finish(scheme)?);
    }
    Relation::with_tuples(scheme.clone(), tuples)
}

/// Materializes an HRDM relation as a cube: one snapshot per chronon of the
/// relation's lifespan hull (or `universe` when given). Storage is
/// `O(|T| × instance)` — the paper's motivation for leaving this model
/// behind.
pub fn hrdm_to_cube(r: &Relation, universe: Option<Interval>) -> Result<CubeRelation> {
    let attrs: Vec<(Attribute, hrdm_core::ValueKind)> = r
        .scheme()
        .attrs()
        .iter()
        .map(|d| (d.name().clone(), d.domain().kind()))
        .collect();
    let universe = match universe.or_else(|| r.lifespan().hull()) {
        Some(u) => u,
        None => Interval::of(0, 0), // empty relation: degenerate universe
    };
    let mut cube = CubeRelation::new(attrs, r.scheme().key().to_vec(), universe)?;
    let names: Vec<Attribute> = r.scheme().attr_names().cloned().collect();
    for tuple in r.iter() {
        for t in tuple.lifespan().iter() {
            if !universe.contains(t) {
                continue;
            }
            let row = names.iter().map(|n| tuple.at(n, t).cloned()).collect();
            cube.assert_row(t, row)?;
        }
    }
    Ok(cube)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::{HistoricalDomain, ValueKind};

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .attr(
                "DEPT",
                HistoricalDomain::string(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn john() -> Tuple {
        // Salary changes at 10, dept at 20; gap (fired) on [30,39]; rehired 40.
        let life = Lifespan::of(&[(0, 29), (40, 49)]);
        Tuple::builder(life)
            .constant("NAME", "John")
            .value(
                "SALARY",
                TemporalValue::of(&[
                    (0, 9, Value::Int(25)),
                    (10, 29, Value::Int(30)),
                    (40, 49, Value::Int(35)),
                ]),
            )
            .value(
                "DEPT",
                TemporalValue::of(&[
                    (0, 19, Value::str("Toys")),
                    (20, 29, Value::str("Shoes")),
                    (40, 49, Value::str("Shoes")),
                ]),
            )
            .finish(&scheme())
            .unwrap()
    }

    fn rel() -> Relation {
        Relation::with_tuples(scheme(), vec![john()]).unwrap()
    }

    #[test]
    fn hrdm_to_ts_expands_at_every_change() {
        let ts = hrdm_to_ts(&rel()).unwrap();
        // Versions: [0,9](25,Toys) [10,19](30,Toys) [20,29](30,Shoes) [40,49](35,Shoes).
        assert_eq!(ts.version_count(), 4);
        // One HRDM tuple holds the same history in 1+3+3 = 7 segments but a
        // single object; the TS layout needs 4 versions × 3 attrs = 12 cells.
        assert_eq!(ts.cells(), 12);
    }

    #[test]
    fn ts_round_trip_restores_hrdm() {
        let r = rel();
        let ts = hrdm_to_ts(&r).unwrap();
        let back = ts_to_hrdm(&ts, r.scheme()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn snapshot_of_hrdm_matches_model_snapshot() {
        let r = rel();
        let snap = snapshot_of_hrdm(&r, Chronon::new(15)).unwrap();
        assert_eq!(snap.len(), 1);
        let row = snap.rows().iter().next().unwrap();
        assert_eq!(row[0], Value::str("John"));
        assert_eq!(row[1], Value::Int(30));
        assert_eq!(row[2], Value::str("Toys"));
        // During the firing gap: empty snapshot.
        assert!(snapshot_of_hrdm(&r, Chronon::new(35)).unwrap().is_empty());
    }

    #[test]
    fn cube_holds_one_snapshot_per_chronon() {
        let r = rel();
        let cube = hrdm_to_cube(&r, None).unwrap();
        assert_eq!(cube.universe(), Interval::of(0, 49));
        // 40 living chronons × 3 attrs.
        assert_eq!(cube.cells(), 120);
        assert!(cube.exists(&[Value::str("John")], Chronon::new(5)).unwrap());
        assert!(!cube
            .exists(&[Value::str("John")], Chronon::new(35))
            .unwrap());
    }

    #[test]
    fn storage_shape_matches_paper_argument() {
        // The §1/§2 shape: cube ≫ tuple-timestamped > attribute-timestamped
        // for slowly-changing histories.
        let r = rel();
        let hrdm_cells = r.segment_cells();
        let ts_cells = hrdm_to_ts(&r).unwrap().cells();
        let cube_cells = hrdm_to_cube(&r, None).unwrap().cells();
        assert!(hrdm_cells < ts_cells, "{hrdm_cells} vs {ts_cells}");
        assert!(ts_cells < cube_cells, "{ts_cells} vs {cube_cells}");
    }

    #[test]
    fn all_three_models_answer_the_same_snapshot_query() {
        let r = rel();
        let t = Chronon::new(22);
        let snap = snapshot_of_hrdm(&r, t).unwrap();
        let ts = hrdm_to_ts(&r).unwrap();
        let cube = hrdm_to_cube(&r, None).unwrap();

        let ts_rows: Vec<Vec<Value>> = ts
            .timeslice(t)
            .into_iter()
            .map(|v| v.values.clone())
            .collect();
        let cube_rows: Vec<Vec<Value>> = cube
            .timeslice(t)
            .iter()
            .map(|row| row.iter().map(|v| v.clone().unwrap()).collect())
            .collect();
        let snap_rows: Vec<Vec<Value>> = snap.rows().iter().cloned().collect();
        assert_eq!(snap_rows, ts_rows);
        assert_eq!(snap_rows, cube_rows);
    }
}
