//! The classical (static) relational model and algebra.
//!
//! This is the model HRDM must be a *consistent extension* of (paper §5):
//! with `T = {now}`, every HRDM operator must compute exactly what these
//! operators compute. The workspace integration tests machine-check that
//! equivalence, which is why this implementation is independent — it shares
//! no algebra code with `hrdm-core`.

use hrdm_core::algebra::Comparator;
use hrdm_core::{Attribute, HrdmError, Result, Value, ValueKind};
use std::collections::BTreeSet;
use std::fmt;

/// A classical relation scheme: named, kinded attributes and a key.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotScheme {
    attrs: Vec<(Attribute, ValueKind)>,
    key: Vec<Attribute>,
}

/// A classical tuple: one atomic value per attribute, positionally.
pub type Row = Vec<Value>;

impl SnapshotScheme {
    /// Creates a scheme; key attributes must be among the attributes.
    pub fn new(attrs: Vec<(Attribute, ValueKind)>, key: Vec<Attribute>) -> Result<SnapshotScheme> {
        if attrs.is_empty() {
            return Err(HrdmError::EmptyScheme);
        }
        let mut seen = BTreeSet::new();
        for (a, _) in &attrs {
            if !seen.insert(a.clone()) {
                return Err(HrdmError::DuplicateAttribute(a.clone()));
            }
        }
        for k in &key {
            if !attrs.iter().any(|(a, _)| a == k) {
                return Err(HrdmError::KeyNotInScheme(k.clone()));
            }
        }
        Ok(SnapshotScheme { attrs, key })
    }

    /// The attributes in declaration order.
    pub fn attrs(&self) -> &[(Attribute, ValueKind)] {
        &self.attrs
    }

    /// The key attributes.
    pub fn key(&self) -> &[Attribute] {
        &self.key
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of an attribute.
    pub fn index_of(&self, name: &Attribute) -> Result<usize> {
        self.attrs
            .iter()
            .position(|(a, _)| a == name)
            .ok_or_else(|| HrdmError::UnknownAttribute(name.clone()))
    }
}

/// A classical relation: a set of rows on a scheme.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotRelation {
    scheme: SnapshotScheme,
    rows: BTreeSet<Row>,
}

impl SnapshotRelation {
    /// An empty relation.
    pub fn new(scheme: SnapshotScheme) -> SnapshotRelation {
        SnapshotRelation {
            scheme,
            rows: BTreeSet::new(),
        }
    }

    /// Builds a relation from rows, validating arity and kinds.
    pub fn with_rows(scheme: SnapshotScheme, rows: Vec<Row>) -> Result<SnapshotRelation> {
        let mut r = SnapshotRelation::new(scheme);
        for row in rows {
            r.insert(row)?;
        }
        Ok(r)
    }

    /// Inserts a row (set semantics: duplicates are no-ops).
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.scheme.arity() {
            return Err(HrdmError::EmptyScheme);
        }
        for ((attr, kind), v) in self.scheme.attrs.iter().zip(&row) {
            if v.kind() != *kind {
                return Err(HrdmError::DomainMismatch {
                    attribute: attr.clone(),
                    expected: *kind,
                    found: v.kind(),
                });
            }
        }
        self.rows.insert(row);
        Ok(())
    }

    /// The scheme.
    pub fn scheme(&self) -> &SnapshotScheme {
        &self.scheme
    }

    /// The rows.
    pub fn rows(&self) -> &BTreeSet<Row> {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Classical σ with an `A θ const` criterion.
    pub fn select_value(
        &self,
        attr: &Attribute,
        op: Comparator,
        value: &Value,
    ) -> Result<SnapshotRelation> {
        let idx = self.scheme.index_of(attr)?;
        let mut out = BTreeSet::new();
        for row in &self.rows {
            if op.test(row[idx].try_cmp(value)?) {
                out.insert(row.clone());
            }
        }
        Ok(SnapshotRelation {
            scheme: self.scheme.clone(),
            rows: out,
        })
    }

    /// Classical σ with an `A θ B` criterion.
    pub fn select_attrs(
        &self,
        left: &Attribute,
        op: Comparator,
        right: &Attribute,
    ) -> Result<SnapshotRelation> {
        let li = self.scheme.index_of(left)?;
        let ri = self.scheme.index_of(right)?;
        let mut out = BTreeSet::new();
        for row in &self.rows {
            if op.test(row[li].try_cmp(&row[ri])?) {
                out.insert(row.clone());
            }
        }
        Ok(SnapshotRelation {
            scheme: self.scheme.clone(),
            rows: out,
        })
    }

    /// Classical π.
    pub fn project(&self, x: &[Attribute]) -> Result<SnapshotRelation> {
        let idxs: Vec<usize> = x
            .iter()
            .map(|a| self.scheme.index_of(a))
            .collect::<Result<_>>()?;
        let attrs = idxs.iter().map(|&i| self.scheme.attrs[i].clone()).collect();
        let key = if self.scheme.key.iter().all(|k| x.contains(k)) {
            self.scheme.key.clone()
        } else {
            Vec::new()
        };
        let scheme = SnapshotScheme::new(attrs, key)?;
        let rows = self
            .rows
            .iter()
            .map(|row| idxs.iter().map(|&i| row[i].clone()).collect())
            .collect();
        Ok(SnapshotRelation { scheme, rows })
    }

    fn require_union_compatible(&self, other: &SnapshotRelation) -> Result<()> {
        if self.scheme.attrs == other.scheme.attrs {
            Ok(())
        } else {
            Err(HrdmError::NotUnionCompatible)
        }
    }

    /// Classical ∪.
    pub fn union(&self, other: &SnapshotRelation) -> Result<SnapshotRelation> {
        self.require_union_compatible(other)?;
        Ok(SnapshotRelation {
            scheme: self.scheme.clone(),
            rows: self.rows.union(&other.rows).cloned().collect(),
        })
    }

    /// Classical ∩.
    pub fn intersection(&self, other: &SnapshotRelation) -> Result<SnapshotRelation> {
        self.require_union_compatible(other)?;
        Ok(SnapshotRelation {
            scheme: self.scheme.clone(),
            rows: self.rows.intersection(&other.rows).cloned().collect(),
        })
    }

    /// Classical −.
    pub fn difference(&self, other: &SnapshotRelation) -> Result<SnapshotRelation> {
        self.require_union_compatible(other)?;
        Ok(SnapshotRelation {
            scheme: self.scheme.clone(),
            rows: self.rows.difference(&other.rows).cloned().collect(),
        })
    }

    /// Classical ×; attribute sets must be disjoint.
    pub fn product(&self, other: &SnapshotRelation) -> Result<SnapshotRelation> {
        for (a, _) in &other.scheme.attrs {
            if self.scheme.index_of(a).is_ok() {
                return Err(HrdmError::AttributesNotDisjoint(a.clone()));
            }
        }
        let mut attrs = self.scheme.attrs.clone();
        attrs.extend(other.scheme.attrs.iter().cloned());
        let mut key = self.scheme.key.clone();
        key.extend(other.scheme.key.iter().cloned());
        let scheme = SnapshotScheme::new(attrs, key)?;
        let mut rows = BTreeSet::new();
        for a in &self.rows {
            for b in &other.rows {
                let mut row = a.clone();
                row.extend(b.iter().cloned());
                rows.insert(row);
            }
        }
        Ok(SnapshotRelation { scheme, rows })
    }

    /// Classical θ-join = σ over ×.
    pub fn theta_join(
        &self,
        other: &SnapshotRelation,
        a: &Attribute,
        op: Comparator,
        b: &Attribute,
    ) -> Result<SnapshotRelation> {
        self.product(other)?.select_attrs(a, op, b)
    }

    /// Classical natural join on all common attributes.
    pub fn natural_join(&self, other: &SnapshotRelation) -> Result<SnapshotRelation> {
        let common: Vec<Attribute> = self
            .scheme
            .attrs
            .iter()
            .filter(|(a, _)| other.scheme.index_of(a).is_ok())
            .map(|(a, _)| a.clone())
            .collect();
        let my_idx: Vec<usize> = common
            .iter()
            .map(|a| self.scheme.index_of(a))
            .collect::<Result<_>>()?;
        let their_idx: Vec<usize> = common
            .iter()
            .map(|a| other.scheme.index_of(a))
            .collect::<Result<_>>()?;
        // Result scheme: my attrs, then their non-common attrs.
        let mut attrs = self.scheme.attrs.clone();
        let their_extra: Vec<usize> = (0..other.scheme.arity())
            .filter(|i| !their_idx.contains(i))
            .collect();
        for &i in &their_extra {
            attrs.push(other.scheme.attrs[i].clone());
        }
        let mut key = self.scheme.key.clone();
        for k in &other.scheme.key {
            if !key.contains(k) {
                key.push(k.clone());
            }
        }
        key.retain(|k| attrs.iter().any(|(a, _)| a == k));
        let scheme = SnapshotScheme::new(attrs, key)?;
        let mut rows = BTreeSet::new();
        for mine in &self.rows {
            for theirs in &other.rows {
                if my_idx
                    .iter()
                    .zip(&their_idx)
                    .all(|(&mi, &ti)| mine[mi] == theirs[ti])
                {
                    let mut row = mine.clone();
                    for &i in &their_extra {
                        row.push(theirs[i].clone());
                    }
                    rows.insert(row);
                }
            }
        }
        Ok(SnapshotRelation { scheme, rows })
    }
}

impl fmt::Display for SnapshotRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.scheme.attrs.iter().map(|(a, _)| a.name()).collect();
        writeln!(f, "({})", names.join(", "))?;
        for row in &self.rows {
            let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  ({})", vals.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> SnapshotRelation {
        let scheme = SnapshotScheme::new(
            vec![
                (Attribute::new("NAME"), ValueKind::Str),
                (Attribute::new("SALARY"), ValueKind::Int),
            ],
            vec![Attribute::new("NAME")],
        )
        .unwrap();
        SnapshotRelation::with_rows(
            scheme,
            vec![
                vec![Value::str("John"), Value::Int(25)],
                vec![Value::str("Mary"), Value::Int(30)],
                vec![Value::str("Igor"), Value::Int(25)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_project_basics() {
        let r = emp();
        let cheap = r
            .select_value(&"SALARY".into(), Comparator::Eq, &Value::Int(25))
            .unwrap();
        assert_eq!(cheap.len(), 2);
        let names = cheap.project(&["NAME".into()]).unwrap();
        assert_eq!(names.len(), 2);
        assert!(names.rows().contains(&vec![Value::str("John")]));
    }

    #[test]
    fn insert_validates_kinds_and_dedupes() {
        let mut r = emp();
        assert!(r.insert(vec![Value::Int(1), Value::Int(2)]).is_err());
        let before = r.len();
        r.insert(vec![Value::str("John"), Value::Int(25)]).unwrap();
        assert_eq!(r.len(), before); // set semantics
    }

    #[test]
    fn set_ops() {
        let r = emp();
        let cheap = r
            .select_value(&"SALARY".into(), Comparator::Eq, &Value::Int(25))
            .unwrap();
        let rich = r.difference(&cheap).unwrap();
        assert_eq!(rich.len(), 1);
        assert_eq!(r.union(&cheap).unwrap().len(), 3);
        assert_eq!(r.intersection(&cheap).unwrap(), cheap);
    }

    #[test]
    fn product_and_joins() {
        let dept_scheme = SnapshotScheme::new(
            vec![
                (Attribute::new("DNAME"), ValueKind::Str),
                (Attribute::new("BUDGET"), ValueKind::Int),
            ],
            vec![Attribute::new("DNAME")],
        )
        .unwrap();
        let depts = SnapshotRelation::with_rows(
            dept_scheme,
            vec![
                vec![Value::str("Toys"), Value::Int(26)],
                vec![Value::str("Shoes"), Value::Int(40)],
            ],
        )
        .unwrap();
        let r = emp();
        let p = r.product(&depts).unwrap();
        assert_eq!(p.len(), 6);
        let j = r
            .theta_join(&depts, &"SALARY".into(), Comparator::Lt, &"BUDGET".into())
            .unwrap();
        assert_eq!(j.len(), 5); // everyone < 40; only the 25s < 26
    }

    #[test]
    fn natural_join_on_common_attr() {
        // emp(NAME, SALARY) ⋈ grade(SALARY, GRADE)
        let grade_scheme = SnapshotScheme::new(
            vec![
                (Attribute::new("SALARY"), ValueKind::Int),
                (Attribute::new("GRADE"), ValueKind::Str),
            ],
            vec![],
        )
        .unwrap();
        let grades = SnapshotRelation::with_rows(
            grade_scheme,
            vec![
                vec![Value::Int(25), Value::str("junior")],
                vec![Value::Int(30), Value::str("senior")],
            ],
        )
        .unwrap();
        let j = emp().natural_join(&grades).unwrap();
        assert_eq!(j.len(), 3);
        assert_eq!(j.scheme().arity(), 3);
        assert!(j.rows().contains(&vec![
            Value::str("Mary"),
            Value::Int(30),
            Value::str("senior")
        ]));
    }

    #[test]
    fn incompatible_unions_rejected() {
        let other =
            SnapshotScheme::new(vec![(Attribute::new("X"), ValueKind::Int)], vec![]).unwrap();
        let o = SnapshotRelation::new(other);
        assert!(emp().union(&o).is_err());
    }
}
