//! Property tests: the three timestamping layouts carry the same
//! information — every model answers every snapshot query identically on
//! randomly generated (total) histories.

use hrdm_baseline::{hrdm_to_cube, hrdm_to_ts, snapshot_of_hrdm, ts_to_hrdm};
use hrdm_core::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

const ERA: i64 = 30;

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, ERA);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

/// Total tuples: V defined on the whole (possibly fragmented) lifespan.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    prop::collection::vec(
        (
            prop::collection::vec((0i64..=ERA, 0i64..8), 1..3),
            prop::collection::vec(0i64..5, 1..5),
        ),
        0..5,
    )
    .prop_map(|tuples| {
        let s = scheme();
        let built: Vec<Tuple> = tuples
            .into_iter()
            .enumerate()
            .map(|(k, (spans, values))| {
                let life = Lifespan::from_intervals(
                    spans
                        .into_iter()
                        .map(|(lo, len)| Interval::of(lo, (lo + len).min(ERA))),
                );
                // Piecewise values across the lifespan runs, cycling the pool.
                let mut segs = Vec::new();
                for (i, run) in life.intervals().iter().enumerate() {
                    segs.push((*run, Value::Int(values[i % values.len()])));
                }
                Tuple::builder(life)
                    .constant("K", k as i64)
                    .value(
                        "V",
                        TemporalValue::from_segments(segs).expect("runs are disjoint"),
                    )
                    .finish(&s)
                    .unwrap()
            })
            .collect();
        Relation::with_tuples(s, built).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshots_agree_across_models(r in relation_strategy(), t in 0i64..=ERA) {
        let t = Chronon::new(t);
        let snap = snapshot_of_hrdm(&r, t).unwrap();
        let ts = hrdm_to_ts(&r).unwrap();
        let cube = hrdm_to_cube(&r, Some(Interval::of(0, ERA))).unwrap();

        let want: BTreeSet<Vec<Value>> = snap.rows().iter().cloned().collect();
        let ts_rows: BTreeSet<Vec<Value>> = ts
            .timeslice(t)
            .into_iter()
            .map(|v| v.values.clone())
            .collect();
        let cube_rows: BTreeSet<Vec<Value>> = cube
            .timeslice(t)
            .iter()
            .map(|row| row.iter().map(|v| v.clone().expect("total")).collect())
            .collect();
        prop_assert_eq!(&ts_rows, &want);
        prop_assert_eq!(&cube_rows, &want);
    }

    #[test]
    fn ts_round_trip_is_identity_on_total_relations(r in relation_strategy()) {
        let ts = hrdm_to_ts(&r).unwrap();
        let back = ts_to_hrdm(&ts, r.scheme()).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn coalesce_preserves_snapshots(r in relation_strategy(), t in 0i64..=ERA) {
        let ts = hrdm_to_ts(&r).unwrap();
        let coalesced = ts.coalesce();
        let t = Chronon::new(t);
        let a: BTreeSet<Vec<Value>> =
            ts.timeslice(t).into_iter().map(|v| v.values.clone()).collect();
        let b: BTreeSet<Vec<Value>> = coalesced
            .timeslice(t)
            .into_iter()
            .map(|v| v.values.clone())
            .collect();
        prop_assert_eq!(a, b);
        // Coalescing never increases the version count.
        prop_assert!(coalesced.version_count() <= ts.version_count());
    }

    #[test]
    fn storage_ordering_holds_for_slowly_changing_histories(r in relation_strategy()) {
        // HRDM cells ≤ TS cells always (each TS version stores every
        // attribute; HRDM stores one segment per change per attribute).
        let ts = hrdm_to_ts(&r).unwrap();
        let cube = hrdm_to_cube(&r, Some(Interval::of(0, ERA))).unwrap();
        let hrdm_cells = r.segment_cells();
        prop_assert!(hrdm_cells <= ts.cells(), "{hrdm_cells} vs {}", ts.cells());
        // The cube pays per living chronon: it can only tie when every value
        // changes every instant.
        let living: u64 = r.iter().map(|t| t.lifespan().cardinality()).sum();
        prop_assert_eq!(cube.cells() as u64, living * r.scheme().arity() as u64);
    }

    #[test]
    fn object_history_agrees_between_hrdm_and_ts(r in relation_strategy()) {
        let ts = hrdm_to_ts(&r).unwrap();
        for t in r.iter() {
            let key = t.key_values(r.scheme()).unwrap();
            let versions = ts.object_history(&key).unwrap();
            // The versions tile exactly the tuple's lifespan.
            let tiled: Lifespan =
                Lifespan::from_intervals(versions.iter().map(|v| v.span));
            prop_assert_eq!(&tiled, t.lifespan());
        }
    }
}
