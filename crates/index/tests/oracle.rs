//! Oracle property tests: every index answer must equal the linear-scan
//! answer over randomly generated relations (reusing `hrdm-bench::gen`).

use hrdm_bench::{gen_relation, WorkloadSpec};
use hrdm_core::prelude::*;
use hrdm_index::RelationIndexes;
use proptest::prelude::*;

/// Strategy: a workload spec small enough to test densely but varied in
/// era, change rate, and lifespan fragmentation.
fn spec_strategy() -> impl Strategy<Value = WorkloadSpec> {
    (0usize..40, 20i64..400, 1usize..6, 1usize..4, any::<u64>()).prop_map(
        |(tuples, era, changes, fragments, seed)| WorkloadSpec {
            tuples,
            era,
            changes,
            fragments,
            seed,
        },
    )
}

/// Linear-scan oracle for stabbing: positions of tuples alive at `t`.
fn scan_stab(r: &Relation, t: Chronon) -> Vec<usize> {
    r.iter()
        .enumerate()
        .filter(|(_, tup)| tup.lifespan().contains(t))
        .map(|(i, _)| i)
        .collect()
}

/// Linear-scan oracle for overlap: positions of tuples intersecting `w`.
fn scan_overlap(r: &Relation, w: &Lifespan) -> Vec<usize> {
    r.iter()
        .enumerate()
        .filter(|(_, tup)| tup.lifespan().intersects(w))
        .map(|(i, _)| i)
        .collect()
}

/// Linear-scan oracle for key lookup: positions of tuples with key `key`.
fn scan_key(r: &Relation, key: &[Value]) -> Vec<usize> {
    r.iter()
        .enumerate()
        .filter(|(_, tup)| matches!(tup.key_values(r.scheme()), Ok(k) if k == key))
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stab_equals_linear_scan(spec in spec_strategy(), t in -50i64..450) {
        let r = gen_relation(&spec);
        let idx = RelationIndexes::build(&r);
        let t = Chronon::new(t);
        prop_assert_eq!(idx.lifespan().stab(t), scan_stab(&r, t));
    }

    #[test]
    fn interval_overlap_equals_linear_scan(
        spec in spec_strategy(),
        lo in -50i64..450,
        len in 0i64..200,
    ) {
        let r = gen_relation(&spec);
        let idx = RelationIndexes::build(&r);
        let w = Lifespan::interval(lo, lo + len);
        prop_assert_eq!(idx.lifespan().overlapping(&w), scan_overlap(&r, &w));
    }

    #[test]
    fn fragmented_overlap_equals_linear_scan(
        spec in spec_strategy(),
        pieces in prop::collection::vec((-50i64..450, 0i64..60), 1..4),
    ) {
        let r = gen_relation(&spec);
        let idx = RelationIndexes::build(&r);
        let w = Lifespan::from_intervals(
            pieces.into_iter().map(|(lo, len)| Interval::of(lo, lo + len)),
        );
        prop_assert_eq!(idx.lifespan().overlapping(&w), scan_overlap(&r, &w));
    }

    #[test]
    fn key_lookup_equals_filtered_scan(spec in spec_strategy(), probe in 0i64..50) {
        let r = gen_relation(&spec);
        let idx = RelationIndexes::build(&r);
        // The bench scheme is keyed on K, so the key index must exist.
        let key_idx = idx.key().expect("keyed workload builds a key index");
        let key = vec![Value::Int(probe)];
        prop_assert_eq!(key_idx.lookup(&key).to_vec(), scan_key(&r, &key));
    }

    #[test]
    fn every_tuple_is_reachable_through_both_indexes(spec in spec_strategy()) {
        let r = gen_relation(&spec);
        let idx = RelationIndexes::build(&r);
        // Overlapping the whole era reports every tuple exactly once.
        let all = idx.lifespan().overlapping(&Lifespan::interval(-100, 1_000));
        prop_assert_eq!(all, (0..r.len()).collect::<Vec<_>>());
        // Probing each tuple's own key finds its position.
        for (pos, t) in r.iter().enumerate() {
            let key = t.key_values(r.scheme()).expect("bench tuples are keyed");
            prop_assert!(idx.key().expect("key index").lookup(&key).contains(&pos));
        }
    }
}
