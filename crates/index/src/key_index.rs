//! A hash index over constant-valued key attributes.

use hrdm_core::{Attribute, Relation, Tuple, Value};
use std::collections::HashMap;

/// A hash index over a relation's (constant-valued) key attributes.
///
/// HRDM keys draw from constant domains ("key attributes are
/// constant-valued, so objects keep their identity across change", paper
/// §3), so a key value is one atomic [`Value`] per key attribute and never
/// varies over time — exactly what a classical hash index can serve.
///
/// The map goes from key vectors to **tuple positions**. A well-formed
/// relation has at most one position per key, but relations produced by the
/// paper's *uncorrected* set operators may violate the key constraint, so
/// each key maps to a (usually singleton) position list.
#[derive(Clone, Debug)]
pub struct KeyIndex {
    attrs: Vec<Attribute>,
    map: HashMap<Vec<Value>, Vec<usize>>,
}

impl KeyIndex {
    /// Builds a key index for `r`, or `None` when the scheme is keyless or
    /// some tuple lacks a constant key value (then no equality probe can be
    /// answered from an index safely).
    pub fn build(r: &Relation) -> Option<KeyIndex> {
        let attrs: Vec<Attribute> = r.scheme().key().to_vec();
        if attrs.is_empty() {
            return None;
        }
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(r.len());
        for (pos, t) in r.iter().enumerate() {
            let key = t.key_values(r.scheme()).ok()?;
            map.entry(key).or_default().push(pos);
        }
        Some(KeyIndex { attrs, map })
    }

    /// Registers the tuple at `pos` under its constant key value.
    ///
    /// Returns `false` when the tuple has no constant value for some key
    /// attribute — then no equality probe can be answered from this index
    /// safely any more and the caller must drop it (mirroring
    /// [`KeyIndex::build`] returning `None` for such relations).
    #[must_use]
    pub fn insert(&mut self, pos: usize, tuple: &Tuple) -> bool {
        match self.probe_key_of(tuple) {
            Some(key) => {
                self.map.entry(key).or_default().push(pos);
                true
            }
            None => false,
        }
    }

    /// The indexed key attributes, in key order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Positions of tuples whose key equals `key` (one value per key
    /// attribute, in key order). Empty when no tuple matches.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Extracts `tuple`'s constant values for the indexed attributes, when
    /// all of them are constant — the probe key a join build side supplies.
    pub fn probe_key_of(&self, tuple: &Tuple) -> Option<Vec<Value>> {
        self.attrs
            .iter()
            .map(|a| tuple.value(a).and_then(|tv| tv.constant_value()).cloned())
            .collect()
    }

    /// Number of distinct key values.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::prelude::*;

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("K", ValueKind::Int, Lifespan::interval(0, 100))
            .attr("V", HistoricalDomain::int(), Lifespan::interval(0, 100))
            .build()
            .unwrap()
    }

    fn tup(k: i64, lo: i64, hi: i64) -> Tuple {
        let life = Lifespan::interval(lo, hi);
        Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(k)))
            .finish(&scheme())
            .unwrap()
    }

    #[test]
    fn lookup_finds_positions() {
        let r = Relation::with_tuples(scheme(), vec![tup(10, 0, 5), tup(20, 3, 8), tup(30, 0, 9)])
            .unwrap();
        let idx = KeyIndex::build(&r).unwrap();
        assert_eq!(idx.attrs().len(), 1);
        assert_eq!(idx.lookup(&[Value::Int(20)]), &[1]);
        assert_eq!(idx.lookup(&[Value::Int(99)]), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn duplicate_keys_from_unchecked_relations_all_reported() {
        // The uncorrected union of Fig. 11 can produce same-key tuples.
        let r = Relation::from_parts_unchecked(scheme(), vec![tup(7, 0, 5), tup(7, 10, 20)]);
        let idx = KeyIndex::build(&r).unwrap();
        assert_eq!(idx.lookup(&[Value::Int(7)]), &[0, 1]);
    }

    #[test]
    fn keyless_scheme_builds_nothing() {
        let keyless = scheme().project(&[Attribute::new("V")]).unwrap();
        assert!(KeyIndex::build(&Relation::new(keyless)).is_none());
    }

    #[test]
    fn probe_key_extraction() {
        let r = Relation::with_tuples(scheme(), vec![tup(4, 0, 5)]).unwrap();
        let idx = KeyIndex::build(&r).unwrap();
        let key = idx.probe_key_of(&r.tuples()[0]).unwrap();
        assert_eq!(key, vec![Value::Int(4)]);
        assert_eq!(idx.lookup(&key), &[0]);
    }
}
