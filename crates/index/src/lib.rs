//! # hrdm-index — access methods for HRDM relations
//!
//! The paper's three-level architecture (Fig. 9) puts "file structures and
//! access methods" at the physical level; this crate provides the first two
//! real access methods for historical relations:
//!
//! * [`LifespanIndex`] — a static interval index over tuple lifespans.
//!   Every maximal interval of every tuple lifespan becomes one entry; the
//!   index answers *chronon-stabbing* ("which tuples are alive at `t`?") and
//!   *interval/lifespan-overlap* ("which tuples are alive somewhere in
//!   `L`?") queries in `O(log n + k)`, returning **tuple positions** into
//!   the relation's tuple vector.
//! * [`KeyIndex`] — a hash index over the relation's (constant-valued) key
//!   attributes, answering equality lookups and join probes in `O(1)`.
//!
//! Both indexes return *candidate positions*, never answers: operators
//! re-apply their exact semantics to the candidates, so an index can prune
//! work but can never change a result. This is what makes index use safe
//! for every operator of the historical algebra — a tuple whose lifespan is
//! disjoint from a TIME-SLICE window restricts to an information-free tuple
//! and is dropped either way; the index merely skips it up front.
//!
//! [`RelationIndexes`] bundles both indexes for one relation and is what
//! `hrdm-storage::Database` maintains and `hrdm-query`'s access-path
//! planner consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval_index;
mod key_index;

pub use interval_index::LifespanIndex;
pub use key_index::KeyIndex;

use hrdm_core::{Relation, Tuple};

/// All access methods built for one relation.
///
/// Positions refer to [`Relation::tuples`] order. The indexes track the
/// relation **incrementally**: appending a tuple to the relation and
/// calling [`RelationIndexes::insert`] with the same position keeps every
/// access method current, so `hrdm-storage::Database` never has to drop
/// them across inserts (wholesale replacement of a relation still rebuilds
/// via [`RelationIndexes::build`]).
#[derive(Clone, Debug)]
pub struct RelationIndexes {
    lifespan: LifespanIndex,
    key: Option<KeyIndex>,
    tuple_count: usize,
}

impl RelationIndexes {
    /// Builds the lifespan index and (for keyed schemes) the key index.
    pub fn build(r: &Relation) -> RelationIndexes {
        RelationIndexes {
            lifespan: LifespanIndex::build(r.iter().map(|t| t.lifespan())),
            key: KeyIndex::build(r),
            tuple_count: r.len(),
        }
    }

    /// Registers the tuple just appended to the relation at position `pos`
    /// (which must equal [`RelationIndexes::tuple_count`] — positions are
    /// append-only).
    ///
    /// The lifespan index absorbs the tuple through its pending run; the
    /// key index is updated in place, or dropped if the tuple carries no
    /// constant key value (then key probes are no longer answerable).
    pub fn insert(&mut self, pos: usize, tuple: &Tuple) {
        assert_eq!(
            pos, self.tuple_count,
            "RelationIndexes::insert positions are append-only"
        );
        self.lifespan.insert(pos, tuple.lifespan());
        if let Some(key) = &mut self.key {
            if !key.insert(pos, tuple) {
                self.key = None;
            }
        }
        self.tuple_count += 1;
    }

    /// The lifespan interval index.
    pub fn lifespan(&self) -> &LifespanIndex {
        &self.lifespan
    }

    /// The key index, if the scheme has a key and every tuple carries a
    /// constant key value.
    pub fn key(&self) -> Option<&KeyIndex> {
        self.key.as_ref()
    }

    /// Number of tuples the indexes were built over.
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrdm_core::prelude::*;

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("K", ValueKind::Int, Lifespan::interval(0, 100))
            .attr("V", HistoricalDomain::int(), Lifespan::interval(0, 100))
            .build()
            .unwrap()
    }

    fn tup(k: i64, spans: &[(i64, i64)]) -> Tuple {
        let life = Lifespan::of(spans);
        Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(k * 10)))
            .finish(&scheme())
            .unwrap()
    }

    #[test]
    fn build_bundles_both_indexes() {
        let r = Relation::with_tuples(
            scheme(),
            vec![tup(1, &[(0, 9)]), tup(2, &[(5, 20), (30, 40)])],
        )
        .unwrap();
        let idx = RelationIndexes::build(&r);
        assert_eq!(idx.tuple_count(), 2);
        assert_eq!(idx.lifespan().stab(Chronon::new(7)), vec![0, 1]);
        assert_eq!(idx.lifespan().stab(Chronon::new(35)), vec![1]);
        let key = idx.key().expect("keyed scheme builds a key index");
        assert_eq!(key.lookup(&[Value::Int(2)]), &[1]);
        assert!(key.lookup(&[Value::Int(9)]).is_empty());
    }

    /// Incremental insert equals a from-scratch build over the grown
    /// relation — both key and lifespan answers, at every step.
    #[test]
    fn incremental_insert_matches_rebuild() {
        let mut tuples: Vec<Tuple> = Vec::new();
        let mut idx = RelationIndexes::build(&Relation::new(scheme()));
        for k in 0..120i64 {
            let lo = (k * 3) % 70;
            let t = tup(k, &[(lo, lo + 9)]);
            idx.insert(tuples.len(), &t);
            tuples.push(t);
            if k % 17 == 0 || k == 119 {
                let r = Relation::with_tuples(scheme(), tuples.clone()).unwrap();
                let built = RelationIndexes::build(&r);
                assert_eq!(idx.tuple_count(), built.tuple_count());
                for t in [0, 5, 33, 69, 78] {
                    assert_eq!(
                        idx.lifespan().stab(Chronon::new(t)),
                        built.lifespan().stab(Chronon::new(t)),
                        "stab {t} after {k} inserts"
                    );
                }
                let probe = vec![Value::Int(k / 2)];
                assert_eq!(
                    idx.key().unwrap().lookup(&probe),
                    built.key().unwrap().lookup(&probe)
                );
            }
        }
    }

    #[test]
    fn keyless_scheme_has_no_key_index() {
        let keyless = scheme().project(&[Attribute::new("V")]).unwrap();
        let r = Relation::new(keyless);
        let idx = RelationIndexes::build(&r);
        assert!(idx.key().is_none());
        assert!(idx.lifespan().is_empty());
    }
}
