//! An interval index over tuple lifespans with incremental appends.

use hrdm_time::{Chronon, Interval, Lifespan};

/// An interval index over the lifespans of a relation's tuples.
///
//  Representation: every maximal interval of every lifespan becomes one
//  `(lo, hi, position)` entry; entries are sorted by `lo` and an implicit
//  segment tree over the `hi` values stores subtree maxima.
/// Queries follow the classic augmented-tree pruning argument:
///
/// * only the prefix of entries with `lo ≤ b` can overlap `[a, b]`
///   (binary search), and
/// * within that prefix, any subtree whose `max(hi) < a` is pruned whole,
///
/// which yields `O(log n + k)` per query for `k` reported entries. Because
/// one lifespan may contribute several intervals, results are deduplicated
/// before being returned; positions come back sorted ascending.
///
/// Appends ([`LifespanIndex::insert`]) go to a small **sorted pending run**
/// that queries merge on the fly; once the run outgrows a threshold
/// (√ of the main run, logarithmic-method style) it is merged into the main
/// sorted arrays and the segment tree is rebuilt. This keeps per-insert
/// cost amortized sub-linear while queries stay `O(log n + √n + k)` — so a
/// database can maintain the index *incrementally* across inserts instead
/// of invalidating and rebuilding it wholesale.
#[derive(Clone, Debug, Default)]
pub struct LifespanIndex {
    /// Entry lower bounds, sorted ascending.
    los: Vec<i64>,
    /// Entry upper bounds, parallel to `los`.
    his: Vec<i64>,
    /// Tuple position of each entry, parallel to `los`.
    positions: Vec<u32>,
    /// `max_hi[node]` for an implicit binary segment tree over `his`.
    max_hi: Vec<i64>,
    /// Recently appended `(lo, hi, position)` entries, sorted by `lo`;
    /// merged into the main arrays once larger than [`Self::pending_limit`].
    pending: Vec<(i64, i64, u32)>,
    /// Number of indexed tuples (positions are `< tuple_count`).
    tuple_count: usize,
}

impl LifespanIndex {
    /// Builds the index from tuple lifespans in position order.
    pub fn build<'a, I>(lifespans: I) -> LifespanIndex
    where
        I: IntoIterator<Item = &'a Lifespan>,
    {
        let mut entries: Vec<(i64, i64, u32)> = Vec::new();
        let mut tuple_count = 0usize;
        for (pos, ls) in lifespans.into_iter().enumerate() {
            let pos = u32::try_from(pos).expect("relation fits in u32 positions");
            for iv in ls.intervals() {
                entries.push((iv.lo().tick(), iv.hi().tick(), pos));
            }
            tuple_count += 1;
        }
        entries.sort_unstable();
        let los: Vec<i64> = entries.iter().map(|e| e.0).collect();
        let his: Vec<i64> = entries.iter().map(|e| e.1).collect();
        let positions: Vec<u32> = entries.iter().map(|e| e.2).collect();
        let max_hi = build_max_tree(&his);
        LifespanIndex {
            los,
            his,
            positions,
            max_hi,
            pending: Vec::new(),
            tuple_count,
        }
    }

    /// Appends the lifespan of the tuple at `pos` — which must be the next
    /// position, i.e. `pos == tuple_count()`; the index only grows in
    /// relation order.
    ///
    /// The entries land in the sorted pending run; when that run exceeds
    /// the `√n` pending limit it is merged into the main arrays.
    pub fn insert(&mut self, pos: usize, ls: &Lifespan) {
        assert_eq!(
            pos, self.tuple_count,
            "LifespanIndex::insert positions are append-only"
        );
        let pos = u32::try_from(pos).expect("relation fits in u32 positions");
        for iv in ls.intervals() {
            let entry = (iv.lo().tick(), iv.hi().tick(), pos);
            let at = self.pending.partition_point(|e| *e <= entry);
            self.pending.insert(at, entry);
        }
        self.tuple_count += 1;
        if self.pending.len() > self.pending_limit() {
            self.merge_pending();
        }
    }

    /// How large the pending run may grow before it is merged: the square
    /// root of the main run (amortized `O(n √n)` total merge work over `n`
    /// appends, `O(√n)` extra work per query), floored so tiny indexes
    /// don't merge constantly.
    fn pending_limit(&self) -> usize {
        let n = self.los.len();
        ((n as f64).sqrt() as usize).max(64)
    }

    /// Merges the pending run into the main sorted arrays and rebuilds the
    /// segment-tree maxima. Idempotent; cheap when the run is empty.
    pub fn merge_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let total = self.los.len() + self.pending.len();
        let mut los = Vec::with_capacity(total);
        let mut his = Vec::with_capacity(total);
        let mut positions = Vec::with_capacity(total);
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.los.len() || j < self.pending.len() {
            let take_main = j >= self.pending.len()
                || (i < self.los.len()
                    && (self.los[i], self.his[i], self.positions[i]) <= self.pending[j]);
            if take_main {
                los.push(self.los[i]);
                his.push(self.his[i]);
                positions.push(self.positions[i]);
                i += 1;
            } else {
                let (lo, hi, p) = self.pending[j];
                los.push(lo);
                his.push(hi);
                positions.push(p);
                j += 1;
            }
        }
        self.max_hi = build_max_tree(&his);
        self.los = los;
        self.his = his;
        self.positions = positions;
        self.pending.clear();
    }

    /// Number of interval entries in the index (main run + pending run).
    pub fn entry_count(&self) -> usize {
        self.los.len() + self.pending.len()
    }

    /// Number of indexed tuples.
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Is the index empty (no intervals at all)?
    pub fn is_empty(&self) -> bool {
        self.los.is_empty() && self.pending.is_empty()
    }

    /// Chronon stabbing: positions of tuples alive at `t`, sorted ascending.
    pub fn stab(&self, t: Chronon) -> Vec<usize> {
        self.overlapping_interval(&Interval::point(t))
    }

    /// Interval overlap: positions of tuples whose lifespan intersects
    /// `window`, sorted ascending.
    pub fn overlapping_interval(&self, window: &Interval) -> Vec<usize> {
        let mut out = Vec::new();
        self.report(window.lo().tick(), window.hi().tick(), &mut out);
        finish_positions(&mut out);
        out
    }

    /// Lifespan overlap: positions of tuples whose lifespan intersects
    /// `window`, sorted ascending. The empty window matches nothing.
    pub fn overlapping(&self, window: &Lifespan) -> Vec<usize> {
        let mut out = Vec::new();
        for iv in window.intervals() {
            self.report(iv.lo().tick(), iv.hi().tick(), &mut out);
        }
        finish_positions(&mut out);
        out
    }

    /// Pushes (possibly duplicate, unsorted) positions of entries
    /// overlapping `[a, b]` onto `out`.
    fn report(&self, a: i64, b: i64, out: &mut Vec<usize>) {
        // Prefix of entries that can overlap: lo <= b.
        let prefix = self.los.partition_point(|&lo| lo <= b);
        if prefix > 0 {
            // Descend the implicit segment tree over [0, prefix), pruning
            // subtrees whose max hi < a.
            self.descend(1, 0, self.los.len(), prefix, a, out);
        }
        // The pending run is sorted by lo too: same prefix argument, but
        // it is short (≤ pending_limit), so a linear filter suffices.
        let pending_prefix = self.pending.partition_point(|e| e.0 <= b);
        for &(_, hi, pos) in &self.pending[..pending_prefix] {
            if hi >= a {
                out.push(pos as usize);
            }
        }
    }

    /// Visits tree node `node` covering entry range `[lo, hi)`, restricted
    /// to `[0, prefix)`, reporting entries with `his[i] >= a`.
    fn descend(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        prefix: usize,
        a: i64,
        out: &mut Vec<usize>,
    ) {
        if lo >= prefix || lo >= hi {
            return;
        }
        if node < self.max_hi.len() && self.max_hi[node] < a {
            return; // no entry below reaches up to `a`
        }
        if hi - lo == 1 {
            if self.his[lo] >= a {
                out.push(self.positions[lo] as usize);
            }
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.descend(node * 2, lo, mid, prefix, a, out);
        self.descend(node * 2 + 1, mid, hi, prefix, a, out);
    }
}

/// Builds the implicit segment-tree maxima for `his` (1-based heap layout;
/// node 1 covers the whole range, children split it in half).
fn build_max_tree(his: &[i64]) -> Vec<i64> {
    fn fill(tree: &mut [i64], his: &[i64], node: usize, lo: usize, hi: usize) -> i64 {
        let m = if hi - lo == 1 {
            his[lo]
        } else {
            let mid = lo + (hi - lo) / 2;
            let l = fill(tree, his, node * 2, lo, mid);
            let r = fill(tree, his, node * 2 + 1, mid, hi);
            l.max(r)
        };
        tree[node] = m;
        m
    }
    if his.is_empty() {
        return Vec::new();
    }
    let mut tree = vec![i64::MIN; 4 * his.len()];
    fill(&mut tree, his, 1, 0, his.len());
    tree
}

/// Sorts and deduplicates reported positions.
fn finish_positions(out: &mut Vec<usize>) {
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(spans: &[&[(i64, i64)]]) -> LifespanIndex {
        let lifespans: Vec<Lifespan> = spans.iter().map(|s| Lifespan::of(s)).collect();
        LifespanIndex::build(lifespans.iter())
    }

    /// Oracle: linear scan over the same lifespans.
    fn scan_overlap(spans: &[&[(i64, i64)]], window: &Lifespan) -> Vec<usize> {
        spans
            .iter()
            .enumerate()
            .filter(|(_, s)| Lifespan::of(s).intersects(window))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index() {
        let i = idx(&[]);
        assert!(i.is_empty());
        assert_eq!(i.stab(Chronon::new(0)), Vec::<usize>::new());
        assert_eq!(
            i.overlapping(&Lifespan::interval(0, 100)),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn stab_hits_exactly_live_tuples() {
        let spans: &[&[(i64, i64)]] = &[&[(0, 9)], &[(5, 20)], &[(15, 30), (40, 50)]];
        let i = idx(spans);
        assert_eq!(i.stab(Chronon::new(7)), vec![0, 1]);
        assert_eq!(i.stab(Chronon::new(17)), vec![1, 2]);
        assert_eq!(i.stab(Chronon::new(45)), vec![2]);
        assert_eq!(i.stab(Chronon::new(35)), Vec::<usize>::new());
        assert_eq!(i.stab(Chronon::new(-1)), Vec::<usize>::new());
    }

    #[test]
    fn fragmented_lifespans_report_once() {
        let spans: &[&[(i64, i64)]] = &[&[(0, 5), (10, 15), (20, 25)]];
        let i = idx(spans);
        // A window covering several fragments still reports position 0 once.
        assert_eq!(i.overlapping(&Lifespan::interval(3, 22)), vec![0]);
    }

    #[test]
    fn overlap_matches_linear_scan_exhaustively() {
        let spans: &[&[(i64, i64)]] = &[
            &[(0, 9)],
            &[(5, 20)],
            &[(15, 30), (40, 50)],
            &[(2, 2)],
            &[(48, 60)],
        ];
        let i = idx(spans);
        for lo in -2..62 {
            for len in 0..20 {
                let w = Lifespan::interval(lo, lo + len);
                assert_eq!(
                    i.overlapping(&w),
                    scan_overlap(spans, &w),
                    "window [{lo},{}]",
                    lo + len
                );
            }
        }
    }

    #[test]
    fn fragmented_window_queries() {
        let spans: &[&[(i64, i64)]] = &[&[(0, 9)], &[(20, 29)], &[(40, 49)]];
        let i = idx(spans);
        let w = Lifespan::of(&[(5, 7), (45, 60)]);
        assert_eq!(i.overlapping(&w), vec![0, 2]);
        assert_eq!(i.overlapping(&Lifespan::empty()), Vec::<usize>::new());
    }

    #[test]
    fn counts() {
        let spans: &[&[(i64, i64)]] = &[&[(0, 5), (10, 15)], &[(3, 4)]];
        let i = idx(spans);
        assert_eq!(i.entry_count(), 3);
        assert_eq!(i.tuple_count(), 2);
    }

    /// Incremental appends answer exactly like a from-scratch build, at
    /// every prefix — across the pending run, merges, and fresh appends.
    #[test]
    fn incremental_matches_rebuild_at_every_prefix() {
        // Enough tuples to force several merges past the 64-entry floor.
        let spans: Vec<Vec<(i64, i64)>> = (0..300)
            .map(|i| {
                let base = (i * 7) % 200;
                if i % 3 == 0 {
                    vec![(base, base + 10), (base + 40, base + 55)]
                } else {
                    vec![(base, base + ((i * 13) % 30))]
                }
            })
            .collect();
        let lifespans: Vec<Lifespan> = spans.iter().map(|s| Lifespan::of(s)).collect();
        let mut inc = LifespanIndex::build(std::iter::empty());
        for (pos, ls) in lifespans.iter().enumerate() {
            inc.insert(pos, ls);
            if pos % 37 == 0 || pos == lifespans.len() - 1 {
                let built = LifespanIndex::build(lifespans[..=pos].iter());
                assert_eq!(inc.tuple_count(), built.tuple_count());
                assert_eq!(inc.entry_count(), built.entry_count());
                for t in [-1, 0, 3, 50, 120, 199, 260] {
                    assert_eq!(
                        inc.stab(Chronon::new(t)),
                        built.stab(Chronon::new(t)),
                        "stab {t} after {pos} inserts"
                    );
                }
                let w = Lifespan::of(&[(10, 30), (150, 170)]);
                assert_eq!(inc.overlapping(&w), built.overlapping(&w));
            }
        }
    }

    #[test]
    fn merge_pending_is_idempotent_and_preserves_answers() {
        let mut i = idx(&[&[(0, 9)], &[(5, 20)]]);
        i.insert(2, &Lifespan::interval(15, 30));
        let before = i.overlapping(&Lifespan::interval(0, 40));
        i.merge_pending();
        i.merge_pending();
        assert_eq!(i.overlapping(&Lifespan::interval(0, 40)), before);
        assert_eq!(i.entry_count(), 3);
    }

    #[test]
    #[should_panic(expected = "append-only")]
    fn out_of_order_insert_panics() {
        let mut i = idx(&[&[(0, 9)]]);
        i.insert(5, &Lifespan::interval(0, 1));
    }
}
