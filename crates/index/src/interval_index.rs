//! A static interval index over tuple lifespans.

use hrdm_time::{Chronon, Interval, Lifespan};

/// A static interval index over the lifespans of a relation's tuples.
///
//  Representation: every maximal interval of every lifespan becomes one
//  `(lo, hi, position)` entry; entries are sorted by `lo` and an implicit
//  segment tree over the `hi` values stores subtree maxima.
/// Queries follow the classic augmented-tree pruning argument:
///
/// * only the prefix of entries with `lo ≤ b` can overlap `[a, b]`
///   (binary search), and
/// * within that prefix, any subtree whose `max(hi) < a` is pruned whole,
///
/// which yields `O(log n + k)` per query for `k` reported entries. Because
/// one lifespan may contribute several intervals, results are deduplicated
/// before being returned; positions come back sorted ascending.
#[derive(Clone, Debug, Default)]
pub struct LifespanIndex {
    /// Entry lower bounds, sorted ascending.
    los: Vec<i64>,
    /// Entry upper bounds, parallel to `los`.
    his: Vec<i64>,
    /// Tuple position of each entry, parallel to `los`.
    positions: Vec<u32>,
    /// `max_hi[node]` for an implicit binary segment tree over `his`.
    max_hi: Vec<i64>,
    /// Number of indexed tuples (positions are `< tuple_count`).
    tuple_count: usize,
}

impl LifespanIndex {
    /// Builds the index from tuple lifespans in position order.
    pub fn build<'a, I>(lifespans: I) -> LifespanIndex
    where
        I: IntoIterator<Item = &'a Lifespan>,
    {
        let mut entries: Vec<(i64, i64, u32)> = Vec::new();
        let mut tuple_count = 0usize;
        for (pos, ls) in lifespans.into_iter().enumerate() {
            let pos = u32::try_from(pos).expect("relation fits in u32 positions");
            for iv in ls.intervals() {
                entries.push((iv.lo().tick(), iv.hi().tick(), pos));
            }
            tuple_count += 1;
        }
        entries.sort_unstable();
        let los: Vec<i64> = entries.iter().map(|e| e.0).collect();
        let his: Vec<i64> = entries.iter().map(|e| e.1).collect();
        let positions: Vec<u32> = entries.iter().map(|e| e.2).collect();
        let max_hi = build_max_tree(&his);
        LifespanIndex {
            los,
            his,
            positions,
            max_hi,
            tuple_count,
        }
    }

    /// Number of interval entries in the index.
    pub fn entry_count(&self) -> usize {
        self.los.len()
    }

    /// Number of indexed tuples.
    pub fn tuple_count(&self) -> usize {
        self.tuple_count
    }

    /// Is the index empty (no intervals at all)?
    pub fn is_empty(&self) -> bool {
        self.los.is_empty()
    }

    /// Chronon stabbing: positions of tuples alive at `t`, sorted ascending.
    pub fn stab(&self, t: Chronon) -> Vec<usize> {
        self.overlapping_interval(&Interval::point(t))
    }

    /// Interval overlap: positions of tuples whose lifespan intersects
    /// `window`, sorted ascending.
    pub fn overlapping_interval(&self, window: &Interval) -> Vec<usize> {
        let mut out = Vec::new();
        self.report(window.lo().tick(), window.hi().tick(), &mut out);
        finish_positions(&mut out);
        out
    }

    /// Lifespan overlap: positions of tuples whose lifespan intersects
    /// `window`, sorted ascending. The empty window matches nothing.
    pub fn overlapping(&self, window: &Lifespan) -> Vec<usize> {
        let mut out = Vec::new();
        for iv in window.intervals() {
            self.report(iv.lo().tick(), iv.hi().tick(), &mut out);
        }
        finish_positions(&mut out);
        out
    }

    /// Pushes (possibly duplicate, unsorted) positions of entries
    /// overlapping `[a, b]` onto `out`.
    fn report(&self, a: i64, b: i64, out: &mut Vec<usize>) {
        // Prefix of entries that can overlap: lo <= b.
        let prefix = self.los.partition_point(|&lo| lo <= b);
        if prefix == 0 {
            return;
        }
        // Descend the implicit segment tree over [0, prefix), pruning
        // subtrees whose max hi < a.
        self.descend(1, 0, self.los.len(), prefix, a, out);
    }

    /// Visits tree node `node` covering entry range `[lo, hi)`, restricted
    /// to `[0, prefix)`, reporting entries with `his[i] >= a`.
    fn descend(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        prefix: usize,
        a: i64,
        out: &mut Vec<usize>,
    ) {
        if lo >= prefix || lo >= hi {
            return;
        }
        if node < self.max_hi.len() && self.max_hi[node] < a {
            return; // no entry below reaches up to `a`
        }
        if hi - lo == 1 {
            if self.his[lo] >= a {
                out.push(self.positions[lo] as usize);
            }
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.descend(node * 2, lo, mid, prefix, a, out);
        self.descend(node * 2 + 1, mid, hi, prefix, a, out);
    }
}

/// Builds the implicit segment-tree maxima for `his` (1-based heap layout;
/// node 1 covers the whole range, children split it in half).
fn build_max_tree(his: &[i64]) -> Vec<i64> {
    fn fill(tree: &mut [i64], his: &[i64], node: usize, lo: usize, hi: usize) -> i64 {
        let m = if hi - lo == 1 {
            his[lo]
        } else {
            let mid = lo + (hi - lo) / 2;
            let l = fill(tree, his, node * 2, lo, mid);
            let r = fill(tree, his, node * 2 + 1, mid, hi);
            l.max(r)
        };
        tree[node] = m;
        m
    }
    if his.is_empty() {
        return Vec::new();
    }
    let mut tree = vec![i64::MIN; 4 * his.len()];
    fill(&mut tree, his, 1, 0, his.len());
    tree
}

/// Sorts and deduplicates reported positions.
fn finish_positions(out: &mut Vec<usize>) {
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(spans: &[&[(i64, i64)]]) -> LifespanIndex {
        let lifespans: Vec<Lifespan> = spans.iter().map(|s| Lifespan::of(s)).collect();
        LifespanIndex::build(lifespans.iter())
    }

    /// Oracle: linear scan over the same lifespans.
    fn scan_overlap(spans: &[&[(i64, i64)]], window: &Lifespan) -> Vec<usize> {
        spans
            .iter()
            .enumerate()
            .filter(|(_, s)| Lifespan::of(s).intersects(window))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_index() {
        let i = idx(&[]);
        assert!(i.is_empty());
        assert_eq!(i.stab(Chronon::new(0)), Vec::<usize>::new());
        assert_eq!(
            i.overlapping(&Lifespan::interval(0, 100)),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn stab_hits_exactly_live_tuples() {
        let spans: &[&[(i64, i64)]] = &[&[(0, 9)], &[(5, 20)], &[(15, 30), (40, 50)]];
        let i = idx(spans);
        assert_eq!(i.stab(Chronon::new(7)), vec![0, 1]);
        assert_eq!(i.stab(Chronon::new(17)), vec![1, 2]);
        assert_eq!(i.stab(Chronon::new(45)), vec![2]);
        assert_eq!(i.stab(Chronon::new(35)), Vec::<usize>::new());
        assert_eq!(i.stab(Chronon::new(-1)), Vec::<usize>::new());
    }

    #[test]
    fn fragmented_lifespans_report_once() {
        let spans: &[&[(i64, i64)]] = &[&[(0, 5), (10, 15), (20, 25)]];
        let i = idx(spans);
        // A window covering several fragments still reports position 0 once.
        assert_eq!(i.overlapping(&Lifespan::interval(3, 22)), vec![0]);
    }

    #[test]
    fn overlap_matches_linear_scan_exhaustively() {
        let spans: &[&[(i64, i64)]] = &[
            &[(0, 9)],
            &[(5, 20)],
            &[(15, 30), (40, 50)],
            &[(2, 2)],
            &[(48, 60)],
        ];
        let i = idx(spans);
        for lo in -2..62 {
            for len in 0..20 {
                let w = Lifespan::interval(lo, lo + len);
                assert_eq!(
                    i.overlapping(&w),
                    scan_overlap(spans, &w),
                    "window [{lo},{}]",
                    lo + len
                );
            }
        }
    }

    #[test]
    fn fragmented_window_queries() {
        let spans: &[&[(i64, i64)]] = &[&[(0, 9)], &[(20, 29)], &[(40, 49)]];
        let i = idx(spans);
        let w = Lifespan::of(&[(5, 7), (45, 60)]);
        assert_eq!(i.overlapping(&w), vec![0, 2]);
        assert_eq!(i.overlapping(&Lifespan::empty()), Vec::<usize>::new());
    }

    #[test]
    fn counts() {
        let spans: &[&[(i64, i64)]] = &[&[(0, 5), (10, 15)], &[(3, 4)]];
        let i = idx(spans);
        assert_eq!(i.entry_count(), 3);
        assert_eq!(i.tuple_count(), 2);
    }
}
