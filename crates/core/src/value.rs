//! Atomic values — the elements of the paper's value domains `D_i` and of
//! the time domain `T` when used as data.

use crate::errors::{HrdmError, Result};
use hrdm_time::Chronon;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A totally-ordered, hashable `f64` wrapper. NaN is rejected at
/// construction, which is what lets [`Value`] keep full `Eq + Ord + Hash`
/// (relations are *sets* of tuples; set semantics need total equality).
#[derive(Clone, Copy, Debug)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a float, rejecting NaN.
    pub fn new(v: f64) -> Result<OrderedF64> {
        if v.is_nan() {
            Err(HrdmError::NanFloat)
        } else {
            Ok(OrderedF64(v))
        }
    }

    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        // Normalize ±0.0 so Eq agrees with Hash.
        (self.0 + 0.0).to_bits() == (other.0 + 0.0).to_bits()
    }
}
impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            // lint: no-panic-ok(OrderedF64::new rejects NaN, and NaN is the only incomparable float)
            .expect("NaN excluded at construction")
    }
}

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0 + 0.0).to_bits().hash(state);
    }
}

/// An atomic (non-decomposable) value, per the paper's definition of a value
/// domain: "a set of atomic (non-decomposable) values" (§3).
///
/// `Time` values are the inhabitants of the paper's `TT` domains — attribute
/// values that denote *times* — kept as a distinct variant precisely because
/// the model "make\[s\] explicit the distinction … between those values
/// representing times, and those that do not" (§3). Dynamic TIME-SLICE and
/// TIME-JOIN are only defined at time-valued attributes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// An integer from an integer value domain.
    Int(i64),
    /// A non-NaN float from a numeric value domain.
    Float(OrderedF64),
    /// A string. `Arc<str>` keeps the pervasive cloning in algebra operators
    /// cheap.
    Str(Arc<str>),
    /// A boolean.
    Bool(bool),
    /// A time point — an element of `T` used as data (domain `TT`).
    Time(Chronon),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for floats; errors on NaN.
    pub fn float(v: f64) -> Result<Value> {
        OrderedF64::new(v).map(Value::Float)
    }

    /// Convenience constructor for time values.
    pub fn time(t: impl Into<Chronon>) -> Value {
        Value::Time(t.into())
    }

    /// The kind (value domain family) of this value.
    pub fn kind(&self) -> crate::domain::ValueKind {
        use crate::domain::ValueKind;
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Bool(_) => ValueKind::Bool,
            Value::Time(_) => ValueKind::Time,
        }
    }

    /// Is this a time value (an inhabitant of a `TT` domain)?
    pub fn is_time(&self) -> bool {
        matches!(self, Value::Time(_))
    }

    /// Extracts the chronon from a time value.
    pub fn as_time(&self) -> Option<Chronon> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Compares two values of the *same kind*; numeric kinds (`Int`, `Float`)
    /// compare with each other. Errors on incomparable kinds — θ predicates
    /// over mismatched domains are type errors, not `false` (paper predicates
    /// are typed by the scheme).
    pub fn try_cmp(&self, other: &Value) -> Result<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Ok(a.cmp(b)),
            (Value::Int(a), Value::Float(b)) => Ok(OrderedF64::new(*a as f64)
                // lint: no-panic-ok(an i64-to-f64 cast cannot produce NaN)
                .expect("i64 to f64 is never NaN")
                .cmp(b)),
            (Value::Float(a), Value::Int(b)) => {
                // lint: no-panic-ok(an i64-to-f64 cast cannot produce NaN)
                Ok(a.cmp(&OrderedF64::new(*b as f64).expect("i64 to f64 is never NaN")))
            }
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
            (Value::Time(a), Value::Time(b)) => Ok(a.cmp(b)),
            _ => Err(HrdmError::IncomparableValues {
                left: self.kind(),
                right: other.kind(),
            }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<Chronon> for Value {
    fn from(v: Chronon) -> Value {
        Value::Time(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{}", v.get()),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Time(v) => write!(f, "t{}", v.tick()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_is_rejected() {
        assert_eq!(Value::float(f64::NAN).unwrap_err(), HrdmError::NanFloat);
        assert!(Value::float(1.5).is_ok());
    }

    #[test]
    fn negative_zero_equals_positive_zero() {
        let a = Value::float(0.0).unwrap();
        let b = Value::float(-0.0).unwrap();
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn same_kind_comparisons() {
        assert_eq!(
            Value::Int(1).try_cmp(&Value::Int(2)).unwrap(),
            Ordering::Less
        );
        assert_eq!(
            Value::str("b").try_cmp(&Value::str("a")).unwrap(),
            Ordering::Greater
        );
        assert_eq!(
            Value::Bool(true).try_cmp(&Value::Bool(true)).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            Value::time(3).try_cmp(&Value::time(9)).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn numeric_cross_kind_comparisons() {
        assert_eq!(
            Value::Int(2).try_cmp(&Value::float(2.0).unwrap()).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            Value::float(1.5).unwrap().try_cmp(&Value::Int(2)).unwrap(),
            Ordering::Less
        );
    }

    #[test]
    fn incomparable_kinds_error() {
        let err = Value::Int(1).try_cmp(&Value::str("x")).unwrap_err();
        assert!(matches!(err, HrdmError::IncomparableValues { .. }));
        assert!(Value::Bool(true).try_cmp(&Value::time(1)).is_err());
    }

    #[test]
    fn kind_classification() {
        use crate::domain::ValueKind;
        assert_eq!(Value::Int(1).kind(), ValueKind::Int);
        assert_eq!(Value::str("x").kind(), ValueKind::Str);
        assert_eq!(Value::time(5).kind(), ValueKind::Time);
        assert!(Value::time(5).is_time());
        assert_eq!(Value::time(5).as_time(), Some(Chronon::new(5)));
        assert_eq!(Value::Int(5).as_time(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("Codd").to_string(), "Codd");
        assert_eq!(Value::time(7).to_string(), "t7");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(Chronon::new(2)), Value::time(2));
    }
}
