//! The "consistent extension" machinery of paper §5.
//!
//! "HRDM is a consistent extension of the traditional relational data model
//! … each component C of the relational model has a corresponding component
//! Cᴴ in the historical relational model with the property that the
//! definitions of C and Cᴴ become equivalent in the absence of a temporal
//! dimension." The paper sketches the reduction: "consider the set of times
//! T as the singleton set {now}, the lifespan of each tuple as T and the
//! values of all tuples as constant functions."
//!
//! This module provides the embedding ([`lift_snapshot`]) and the projection
//! back ([`lower_snapshot`]); the equivalence itself — every HRDM operator
//! degenerating to its classical counterpart — is machine-checked in the
//! workspace integration tests against the classical implementation in
//! `hrdm-baseline`.

use crate::attribute::Attribute;
use crate::errors::Result;
use crate::relation::Relation;
use crate::scheme::Scheme;
use crate::temporal::TemporalValue;
use crate::tuple::Tuple;
use crate::value::Value;
use hrdm_time::{Chronon, Lifespan};
use std::collections::BTreeMap;

/// Embeds classical rows into HRDM with `T = {now}`: every tuple gets the
/// singleton lifespan `{now}` and constant values at `now`.
///
/// Rows must provide a value for every scheme attribute (classical relations
/// have no partiality); the scheme's ALS must contain `now`.
pub fn lift_snapshot(
    scheme: &Scheme,
    rows: &[BTreeMap<Attribute, Value>],
    now: Chronon,
) -> Result<Relation> {
    let life = Lifespan::point(now);
    let mut tuples = Vec::with_capacity(rows.len());
    for row in rows {
        let mut b = Tuple::builder(life.clone());
        for (attr, v) in row {
            b = b.value(attr.clone(), TemporalValue::at_point(now, v.clone()));
        }
        tuples.push(b.finish(scheme)?);
    }
    Relation::with_tuples(scheme.clone(), tuples)
}

/// Projects an HRDM relation back to classical rows at `now` — the inverse
/// of [`lift_snapshot`] on its image.
pub fn lower_snapshot(r: &Relation, now: Chronon) -> Vec<BTreeMap<Attribute, Value>> {
    r.snapshot_at(now)
}

/// Is the relation a pure snapshot at `now` — every tuple's lifespan exactly
/// `{now}`? Relations in the image of [`lift_snapshot`] satisfy this, and
/// every HRDM operator applied to such relations preserves it (the §5
/// claim).
pub fn is_snapshot_relation(r: &Relation, now: Chronon) -> bool {
    let point = Lifespan::point(now);
    r.iter().all(|t| t.lifespan() == &point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{
        predicate::Predicate, select_if, select_when, timeslice, when, Quantifier,
    };
    use crate::domain::{HistoricalDomain, ValueKind};

    const NOW: Chronon = Chronon::new(0);

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("K", ValueKind::Int, Lifespan::point(NOW))
            .attr("V", HistoricalDomain::int(), Lifespan::point(NOW))
            .build()
            .unwrap()
    }

    fn rows() -> Vec<BTreeMap<Attribute, Value>> {
        vec![
            BTreeMap::from([
                (Attribute::new("K"), Value::Int(1)),
                (Attribute::new("V"), Value::Int(10)),
            ]),
            BTreeMap::from([
                (Attribute::new("K"), Value::Int(2)),
                (Attribute::new("V"), Value::Int(20)),
            ]),
        ]
    }

    #[test]
    fn lift_lower_roundtrip() {
        let r = lift_snapshot(&scheme(), &rows(), NOW).unwrap();
        assert!(is_snapshot_relation(&r, NOW));
        let mut lowered = lower_snapshot(&r, NOW);
        let mut original = rows();
        lowered.sort_by_key(|m| m.get(&Attribute::new("K")).cloned().map(|v| format!("{v}")));
        original.sort_by_key(|m| m.get(&Attribute::new("K")).cloned().map(|v| format!("{v}")));
        assert_eq!(lowered, original);
    }

    #[test]
    fn select_if_and_select_when_coincide_on_snapshots() {
        // Paper §5: "both SELECT-IF and SELECT-WHEN reduce to one another and
        // to the traditional SELECT on a static relation r, when T = {now}".
        let r = lift_snapshot(&scheme(), &rows(), NOW).unwrap();
        let p = Predicate::eq_value("V", 10i64);
        let via_if = select_if(&r, &p, Quantifier::Exists, None).unwrap();
        let via_if_forall = select_if(&r, &p, Quantifier::Forall, None).unwrap();
        let via_when = select_when(&r, &p).unwrap();
        assert_eq!(via_if.len(), 1);
        assert_eq!(via_if, via_if_forall);
        assert_eq!(via_if, via_when);
    }

    #[test]
    fn timeslice_at_now_is_identity_on_snapshots() {
        // Paper §5: "TIME-SLICE can be viewed as the identity function
        // defined only for time now".
        let r = lift_snapshot(&scheme(), &rows(), NOW).unwrap();
        assert_eq!(timeslice(&r, &Lifespan::point(NOW)), r);
        assert!(timeslice(&r, &Lifespan::interval(5, 9)).is_empty());
    }

    #[test]
    fn when_maps_to_now_or_empty() {
        // Paper §5: "WHEN maps a relation either to now or to the empty set,
        // corresponding to either 'always' or 'never'".
        let r = lift_snapshot(&scheme(), &rows(), NOW).unwrap();
        assert_eq!(when(&r), Lifespan::point(NOW));
        assert_eq!(when(&Relation::new(scheme())), Lifespan::empty());
    }

    #[test]
    fn operators_preserve_snapshot_shape() {
        let r = lift_snapshot(&scheme(), &rows(), NOW).unwrap();
        let p = Predicate::attr_op_value("V", crate::algebra::predicate::Comparator::Gt, 5i64);
        let s = select_when(&r, &p).unwrap();
        assert!(is_snapshot_relation(&s, NOW));
        let pr = crate::algebra::project(&r, &["K".into()]).unwrap();
        assert!(is_snapshot_relation(&pr, NOW));
    }

    #[test]
    fn lift_rejects_rows_that_violate_scheme() {
        let bad_rows = vec![BTreeMap::from([
            (Attribute::new("K"), Value::Int(1)),
            (Attribute::new("V"), Value::str("oops")),
        ])];
        assert!(lift_snapshot(&scheme(), &bad_rows, NOW).is_err());
    }
}
