//! Attribute names — elements of the universal set `U` of attributes.

use std::fmt;
use std::sync::Arc;

/// An attribute name, an element of the paper's universal attribute set `U`.
///
/// Backed by `Arc<str>` so the heavy cloning in algebra operators (every
/// result scheme and tuple carries attribute names) costs a refcount bump,
/// not an allocation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attribute(Arc<str>);

impl Attribute {
    /// Creates an attribute name.
    pub fn new(name: impl AsRef<str>) -> Attribute {
        Attribute(Arc::from(name.as_ref()))
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Returns a copy renamed with a prefix (`"emp.NAME"`), used to
    /// disambiguate when operators require disjoint attribute sets.
    pub fn prefixed(&self, prefix: &str) -> Attribute {
        Attribute(Arc::from(format!("{prefix}.{}", self.0).as_str()))
    }
}

impl fmt::Debug for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Attribute {
    fn from(s: &str) -> Attribute {
        Attribute::new(s)
    }
}

impl From<String> for Attribute {
    fn from(s: String) -> Attribute {
        Attribute::new(s)
    }
}

impl AsRef<str> for Attribute {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn equality_is_by_name() {
        assert_eq!(Attribute::new("NAME"), Attribute::from("NAME"));
        assert_ne!(Attribute::new("NAME"), Attribute::new("name"));
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let a = Attribute::new("SALARY");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn prefixed_rename() {
        let a = Attribute::new("NAME");
        assert_eq!(a.prefixed("emp").name(), "emp.NAME");
    }

    #[test]
    fn usable_in_hash_sets() {
        let set: HashSet<Attribute> = ["A", "B", "A"].iter().map(Attribute::new).collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Attribute::new("B"), Attribute::new("A")];
        v.sort();
        assert_eq!(v[0].name(), "A");
    }
}
