//! Relation schemes: the paper's 4-tuple `R = <A, K, ALS, DOM>`.

use crate::attribute::Attribute;
use crate::domain::{HistoricalDomain, ValueKind};
use crate::errors::{HrdmError, Result};
use hrdm_time::Lifespan;
use std::collections::HashSet;
use std::fmt;

/// One attribute of a scheme: its name, its historical domain (`DOM(A)`),
/// and its attribute lifespan (`ALS(A, R)`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AttributeDef {
    name: Attribute,
    domain: HistoricalDomain,
    lifespan: Lifespan,
}

impl AttributeDef {
    /// Creates an attribute definition.
    pub fn new(
        name: impl Into<Attribute>,
        domain: HistoricalDomain,
        lifespan: Lifespan,
    ) -> AttributeDef {
        AttributeDef {
            name: name.into(),
            domain,
            lifespan,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &Attribute {
        &self.name
    }

    /// `DOM(A)` — the attribute's historical domain.
    pub fn domain(&self) -> &HistoricalDomain {
        &self.domain
    }

    /// `ALS(A, R)` — the attribute's lifespan within the scheme: "the period
    /// of time over which this attribute is defined in that relation"
    /// (paper §2), the mechanism for evolving schemes (paper Fig. 6).
    pub fn lifespan(&self) -> &Lifespan {
        &self.lifespan
    }
}

/// A relation scheme `R = <A, K, ALS, DOM>` (paper §3):
///
/// 1. `A ⊆ U` — the attributes (kept in declaration order),
/// 2. `K ⊆ A` — the key attributes,
/// 3. `ALS : A → 2^T` — a lifespan per attribute,
/// 4. `DOM : A → HD` — a historical domain per attribute, with the paper's
///    restriction (a): key attributes draw from the constant subdomain `CD`.
///
/// Restriction (b) — every value function's domain lies within `ALS(A, R)` —
/// is enforced when tuples are validated against the scheme.
///
/// `K` may be empty on *derived* schemes (e.g. a projection that drops key
/// attributes); such relations enforce no key constraint, only set semantics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scheme {
    attrs: Vec<AttributeDef>,
    key: Vec<Attribute>,
}

impl Scheme {
    /// Starts building a scheme.
    pub fn builder() -> SchemeBuilder {
        SchemeBuilder {
            attrs: Vec::new(),
            key: Vec::new(),
        }
    }

    /// Constructs a scheme from parts, validating the paper's restrictions.
    pub fn new(attrs: Vec<AttributeDef>, key: Vec<Attribute>) -> Result<Scheme> {
        if attrs.is_empty() {
            return Err(HrdmError::EmptyScheme);
        }
        let mut seen: HashSet<&Attribute> = HashSet::with_capacity(attrs.len());
        for def in &attrs {
            if !seen.insert(&def.name) {
                return Err(HrdmError::DuplicateAttribute(def.name.clone()));
            }
        }
        let mut key_seen: HashSet<&Attribute> = HashSet::with_capacity(key.len());
        for k in &key {
            if !key_seen.insert(k) {
                return Err(HrdmError::DuplicateAttribute(k.clone()));
            }
            match attrs.iter().find(|d| &d.name == k) {
                None => return Err(HrdmError::KeyNotInScheme(k.clone())),
                Some(def) if !def.domain.is_constant() => {
                    return Err(HrdmError::KeyNotConstant(k.clone()))
                }
                Some(_) => {}
            }
        }
        Ok(Scheme { attrs, key })
    }

    /// The attribute definitions, in declaration order.
    pub fn attrs(&self) -> &[AttributeDef] {
        &self.attrs
    }

    /// The attribute names, in declaration order.
    pub fn attr_names(&self) -> impl Iterator<Item = &Attribute> + '_ {
        self.attrs.iter().map(|d| &d.name)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The key attributes `K`.
    pub fn key(&self) -> &[Attribute] {
        &self.key
    }

    /// Is `name` a key attribute?
    pub fn is_key(&self, name: &Attribute) -> bool {
        self.key.contains(name)
    }

    /// Looks up an attribute definition.
    pub fn attr(&self, name: &Attribute) -> Option<&AttributeDef> {
        self.attrs.iter().find(|d| &d.name == name)
    }

    /// Does the scheme contain `name`?
    pub fn contains(&self, name: &Attribute) -> bool {
        self.attr(name).is_some()
    }

    /// `ALS(A, R)`, or an error for unknown attributes.
    pub fn als(&self, name: &Attribute) -> Result<&Lifespan> {
        self.attr(name)
            .map(|d| &d.lifespan)
            .ok_or_else(|| HrdmError::UnknownAttribute(name.clone()))
    }

    /// `DOM(A)`, or an error for unknown attributes.
    pub fn dom(&self, name: &Attribute) -> Result<&HistoricalDomain> {
        self.attr(name)
            .map(|d| &d.domain)
            .ok_or_else(|| HrdmError::UnknownAttribute(name.clone()))
    }

    /// The lifespan of the whole scheme: "the union of the lifespans of all
    /// of the attributes in the schema" (paper §2).
    pub fn lifespan(&self) -> Lifespan {
        self.attrs
            .iter()
            .fold(Lifespan::empty(), |acc, d| acc.union(&d.lifespan))
    }

    /// The paper's §2 covenant: "the lifespan of the key attributes must be
    /// the same as the lifespan of the entire relation schema". Stated as a
    /// design constraint rather than part of the formal §3 definition, so it
    /// is checked on demand, not at construction.
    pub fn check_key_lifespan_covenant(&self) -> Result<()> {
        let whole = self.lifespan();
        for k in &self.key {
            // lint: no-panic-ok(Scheme construction rejects key names not in the attribute list)
            let def = self.attr(k).expect("key attributes are in the scheme");
            if def.lifespan != whole {
                return Err(HrdmError::KeyLifespanCovenant(k.clone()));
            }
        }
        Ok(())
    }

    /// Union-compatibility (paper §4.1): `A1 = A2 ∧ DOM1 = DOM2` — same
    /// attribute *sets* with the same domains (ALS may differ).
    pub fn union_compatible(&self, other: &Scheme) -> bool {
        self.attrs.len() == other.attrs.len()
            && self.attrs.iter().all(|d| {
                other
                    .attr(&d.name)
                    .is_some_and(|o| o.domain.same_as(&d.domain))
            })
    }

    /// Merge-compatibility (paper §4.1): union-compatibility plus the same
    /// key set.
    pub fn merge_compatible(&self, other: &Scheme) -> bool {
        if !self.union_compatible(other) {
            return false;
        }
        let a: HashSet<&Attribute> = self.key.iter().collect();
        let b: HashSet<&Attribute> = other.key.iter().collect();
        a == b
    }

    /// The scheme of a set-operation result, with per-attribute ALS combined
    /// by `combine` — the paper uses `ALS1 ∪ ALS2` for unions and
    /// `ALS1 ∩ ALS2` for intersections.
    pub(crate) fn combine_als<F>(&self, other: &Scheme, mut combine: F) -> Scheme
    where
        F: FnMut(&Lifespan, &Lifespan) -> Lifespan,
    {
        debug_assert!(self.union_compatible(other));
        let attrs = self
            .attrs
            .iter()
            .map(|d| {
                let theirs = other
                    .attr(&d.name)
                    // lint: no-panic-ok(guarded by the union_compatible debug_assert and checked by every public caller)
                    .expect("union-compatible schemes share attributes");
                AttributeDef {
                    name: d.name.clone(),
                    domain: d.domain,
                    lifespan: combine(&d.lifespan, &theirs.lifespan),
                }
            })
            .collect();
        Scheme {
            attrs,
            key: self.key.clone(),
        }
    }

    /// The scheme of a projection onto `x` (order follows `x`). The key is
    /// retained only if every key attribute survives; otherwise the derived
    /// scheme is keyless.
    pub fn project(&self, x: &[Attribute]) -> Result<Scheme> {
        let mut attrs = Vec::with_capacity(x.len());
        let mut seen: HashSet<&Attribute> = HashSet::with_capacity(x.len());
        for name in x {
            if !seen.insert(name) {
                return Err(HrdmError::DuplicateAttribute(name.clone()));
            }
            match self.attr(name) {
                Some(def) => attrs.push(def.clone()),
                None => return Err(HrdmError::UnknownAttribute(name.clone())),
            }
        }
        if attrs.is_empty() {
            return Err(HrdmError::EmptyScheme);
        }
        let key = if self.key.iter().all(|k| x.contains(k)) {
            self.key.clone()
        } else {
            Vec::new()
        };
        Ok(Scheme { attrs, key })
    }

    /// The scheme of a Cartesian product or θ-join: attribute sets must be
    /// disjoint; the result carries `A1 ∪ A2`, `K1 ∪ K2`, and each
    /// attribute's own ALS and DOM (paper §4.6).
    pub fn disjoint_concat(&self, other: &Scheme) -> Result<Scheme> {
        for d in &other.attrs {
            if self.contains(&d.name) {
                return Err(HrdmError::AttributesNotDisjoint(d.name.clone()));
            }
        }
        let mut attrs = self.attrs.clone();
        attrs.extend(other.attrs.iter().cloned());
        let mut key = self.key.clone();
        key.extend(other.key.iter().cloned());
        Ok(Scheme { attrs, key })
    }

    /// The scheme of a natural join: common attributes must agree on their
    /// *value domain* `VD(A)` (their ALS are unioned, per the paper's
    /// `ALS1 ∪ ALS2` result scheme; the result domain is constant only when
    /// both sides are); the key is `K1 ∪ K2`.
    pub fn natural_concat(&self, other: &Scheme) -> Result<Scheme> {
        let mut attrs = Vec::with_capacity(self.attrs.len() + other.attrs.len());
        for d in &self.attrs {
            match other.attr(&d.name) {
                Some(o) if o.domain.kind() != d.domain.kind() => {
                    return Err(HrdmError::CommonAttributeDomainMismatch(d.name.clone()))
                }
                Some(o) => {
                    let domain = if d.domain.is_constant() && o.domain.is_constant() {
                        d.domain
                    } else {
                        HistoricalDomain::new(d.domain.kind())
                    };
                    attrs.push(AttributeDef {
                        name: d.name.clone(),
                        domain,
                        lifespan: d.lifespan.union(&o.lifespan),
                    });
                }
                None => attrs.push(d.clone()),
            }
        }
        for d in &other.attrs {
            if !self.contains(&d.name) {
                attrs.push(d.clone());
            }
        }
        let mut key = self.key.clone();
        for k in &other.key {
            if !key.contains(k) {
                key.push(k.clone());
            }
        }
        // A common attribute whose merged domain lost the CD restriction can
        // no longer serve as a key (restriction (a) must keep holding).
        key.retain(|k| {
            attrs
                .iter()
                .find(|d| &d.name == k)
                .is_some_and(|d| d.domain.is_constant())
        });
        Ok(Scheme { attrs, key })
    }

    /// A copy of the scheme with every attribute (and key entry) renamed to
    /// `prefix.NAME` — the standard device for self-joins, which require
    /// disjoint attribute sets.
    pub fn prefixed(&self, prefix: &str) -> Scheme {
        Scheme {
            attrs: self
                .attrs
                .iter()
                .map(|d| AttributeDef {
                    name: d.name.prefixed(prefix),
                    domain: d.domain,
                    lifespan: d.lifespan.clone(),
                })
                .collect(),
            key: self.key.iter().map(|k| k.prefixed(prefix)).collect(),
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<")?;
        for (i, d) in self.attrs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            if self.is_key(&d.name) {
                write!(f, "*{}: {} over {}", d.name, d.domain, d.lifespan)?;
            } else {
                write!(f, "{}: {} over {}", d.name, d.domain, d.lifespan)?;
            }
        }
        f.write_str(">")
    }
}

/// Fluent builder for [`Scheme`].
pub struct SchemeBuilder {
    attrs: Vec<AttributeDef>,
    key: Vec<Attribute>,
}

impl SchemeBuilder {
    /// Adds a non-key attribute with an explicit historical domain.
    pub fn attr(
        mut self,
        name: impl Into<Attribute>,
        domain: HistoricalDomain,
        lifespan: Lifespan,
    ) -> SchemeBuilder {
        self.attrs.push(AttributeDef::new(name, domain, lifespan));
        self
    }

    /// Adds a key attribute; its domain is automatically restricted to the
    /// constant subdomain `CD`, per the paper's restriction (a).
    pub fn key_attr(
        mut self,
        name: impl Into<Attribute>,
        kind: ValueKind,
        lifespan: Lifespan,
    ) -> SchemeBuilder {
        let name = name.into();
        self.attrs.push(AttributeDef::new(
            name.clone(),
            HistoricalDomain::constant(kind),
            lifespan,
        ));
        self.key.push(name);
        self
    }

    /// Finishes, validating the scheme.
    pub fn build(self) -> Result<Scheme> {
        Scheme::new(self.attrs, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(lo: i64, hi: i64) -> Lifespan {
        Lifespan::interval(lo, hi)
    }

    fn emp_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, ls(0, 100))
            .attr("SALARY", HistoricalDomain::int(), ls(0, 100))
            .attr("DEPT", HistoricalDomain::string(), ls(0, 100))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_valid_scheme() {
        let s = emp_scheme();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.key(), &[Attribute::new("NAME")]);
        assert!(s.is_key(&Attribute::new("NAME")));
        assert!(!s.is_key(&Attribute::new("SALARY")));
        assert!(s.dom(&Attribute::new("NAME")).unwrap().is_constant());
    }

    #[test]
    fn empty_scheme_rejected() {
        assert_eq!(
            Scheme::builder().build().unwrap_err(),
            HrdmError::EmptyScheme
        );
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Scheme::builder()
            .attr("A", HistoricalDomain::int(), ls(0, 1))
            .attr("A", HistoricalDomain::int(), ls(0, 1))
            .build()
            .unwrap_err();
        assert_eq!(err, HrdmError::DuplicateAttribute(Attribute::new("A")));
    }

    #[test]
    fn key_must_be_in_scheme_and_constant() {
        let err = Scheme::new(
            vec![AttributeDef::new("A", HistoricalDomain::int(), ls(0, 1))],
            vec![Attribute::new("B")],
        )
        .unwrap_err();
        assert_eq!(err, HrdmError::KeyNotInScheme(Attribute::new("B")));

        // Paper restriction (a): DOM(K) ⊆ CD.
        let err = Scheme::new(
            vec![AttributeDef::new("A", HistoricalDomain::int(), ls(0, 1))],
            vec![Attribute::new("A")],
        )
        .unwrap_err();
        assert_eq!(err, HrdmError::KeyNotConstant(Attribute::new("A")));
    }

    #[test]
    fn scheme_lifespan_is_union_of_als() {
        let s = Scheme::builder()
            .key_attr("K", ValueKind::Int, ls(0, 10))
            .attr("A", HistoricalDomain::int(), Lifespan::of(&[(20, 30)]))
            .build()
            .unwrap();
        assert_eq!(s.lifespan(), Lifespan::of(&[(0, 10), (20, 30)]));
    }

    #[test]
    fn key_lifespan_covenant() {
        let good = emp_scheme();
        assert!(good.check_key_lifespan_covenant().is_ok());

        let bad = Scheme::builder()
            .key_attr("K", ValueKind::Int, ls(0, 10))
            .attr("A", HistoricalDomain::int(), ls(0, 50))
            .build()
            .unwrap();
        assert!(bad.check_key_lifespan_covenant().is_err());
    }

    #[test]
    fn union_compatibility_ignores_als() {
        let a = Scheme::builder()
            .key_attr("K", ValueKind::Int, ls(0, 10))
            .attr("A", HistoricalDomain::int(), ls(0, 10))
            .build()
            .unwrap();
        let b = Scheme::builder()
            .key_attr("K", ValueKind::Int, ls(50, 90))
            .attr("A", HistoricalDomain::int(), ls(50, 90))
            .build()
            .unwrap();
        assert!(a.union_compatible(&b));
        assert!(a.merge_compatible(&b));

        let c = Scheme::builder()
            .key_attr("K", ValueKind::Int, ls(0, 10))
            .attr("A", HistoricalDomain::float(), ls(0, 10))
            .build()
            .unwrap();
        assert!(!a.union_compatible(&c));
    }

    #[test]
    fn merge_compatibility_requires_same_key() {
        let a = Scheme::builder()
            .key_attr("K", ValueKind::Int, ls(0, 10))
            .attr("A", HistoricalDomain::constant(ValueKind::Int), ls(0, 10))
            .build()
            .unwrap();
        // Same attrs/domains but different key set.
        let b = Scheme::new(
            a.attrs().to_vec(),
            vec![Attribute::new("K"), Attribute::new("A")],
        )
        .unwrap();
        assert!(a.union_compatible(&b));
        assert!(!a.merge_compatible(&b));
    }

    #[test]
    fn projection_keeps_key_only_if_complete() {
        let s = emp_scheme();
        let p = s
            .project(&[Attribute::new("NAME"), Attribute::new("SALARY")])
            .unwrap();
        assert_eq!(p.key(), &[Attribute::new("NAME")]);

        let q = s.project(&[Attribute::new("SALARY")]).unwrap();
        assert!(q.key().is_empty());

        assert!(s.project(&[Attribute::new("NOPE")]).is_err());
        assert!(s.project(&[]).is_err());
        assert!(s
            .project(&[Attribute::new("NAME"), Attribute::new("NAME")])
            .is_err());
    }

    #[test]
    fn disjoint_concat_rejects_overlap() {
        let s = emp_scheme();
        let err = s.disjoint_concat(&emp_scheme()).unwrap_err();
        assert!(matches!(err, HrdmError::AttributesNotDisjoint(_)));

        let other = Scheme::builder()
            .key_attr("DNAME", ValueKind::Str, ls(0, 100))
            .attr("BUDGET", HistoricalDomain::int(), ls(0, 100))
            .build()
            .unwrap();
        let joined = s.disjoint_concat(&other).unwrap();
        assert_eq!(joined.arity(), 5);
        assert_eq!(joined.key().len(), 2);
    }

    #[test]
    fn natural_concat_unions_common_als() {
        let a = Scheme::builder()
            .key_attr("K", ValueKind::Int, ls(0, 10))
            .attr("X", HistoricalDomain::int(), ls(0, 10))
            .build()
            .unwrap();
        let b = Scheme::builder()
            .key_attr("K", ValueKind::Int, ls(20, 30))
            .attr("Y", HistoricalDomain::int(), ls(20, 30))
            .build()
            .unwrap();
        let j = a.natural_concat(&b).unwrap();
        assert_eq!(j.arity(), 3);
        assert_eq!(
            j.als(&Attribute::new("K")).unwrap(),
            &Lifespan::of(&[(0, 10), (20, 30)])
        );
        assert_eq!(j.key(), &[Attribute::new("K")]);

        let c = Scheme::builder()
            .key_attr("K", ValueKind::Str, ls(0, 10))
            .build()
            .unwrap();
        assert!(matches!(
            a.natural_concat(&c).unwrap_err(),
            HrdmError::CommonAttributeDomainMismatch(_)
        ));
    }

    #[test]
    fn prefixed_renames_everything() {
        let s = emp_scheme().prefixed("e");
        assert!(s.contains(&Attribute::new("e.NAME")));
        assert_eq!(s.key(), &[Attribute::new("e.NAME")]);
        // Self-join becomes possible.
        assert!(emp_scheme().disjoint_concat(&s).is_ok());
    }

    #[test]
    fn display_marks_keys() {
        let text = emp_scheme().to_string();
        assert!(text.contains("*NAME"));
        assert!(text.contains("SALARY"));
    }
}
