//! WHEN (Ω) — the operator into the lifespan sort (paper §4.5).
//!
//! The algebra is multi-sorted: every other operator maps relations to
//! relations, but `Ω` maps a relation to a **lifespan**, "the set of times
//! over which the relation is defined". Composed with SELECT it answers
//! *when* a condition held; its result can feed TIME-SLICE, whose parameter
//! is a lifespan.

use crate::relation::Relation;
use hrdm_time::Lifespan;

/// `Ω(r) = LS(r)` — the lifespan of the relation (paper §4.5).
pub fn when(r: &Relation) -> Lifespan {
    r.lifespan()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::select::select_when;
    use crate::algebra::timeslice::timeslice;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::predicate::Predicate;
    use crate::scheme::Scheme;
    use crate::temporal::TemporalValue;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use hrdm_time::Lifespan;

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn emp(name: &str, history: &[(i64, i64, i64)]) -> Tuple {
        let life = Lifespan::from_intervals(
            history
                .iter()
                .map(|&(lo, hi, _)| hrdm_time::Interval::of(lo, hi)),
        );
        Tuple::builder(life)
            .constant("NAME", name)
            .value(
                "SALARY",
                TemporalValue::of(
                    &history
                        .iter()
                        .map(|&(lo, hi, v)| (lo, hi, Value::Int(v)))
                        .collect::<Vec<_>>(),
                ),
            )
            .finish(&scheme())
            .unwrap()
    }

    #[test]
    fn when_is_relation_lifespan() {
        let r = Relation::with_tuples(
            scheme(),
            vec![
                emp("John", &[(0, 9, 25_000)]),
                emp("Mary", &[(20, 29, 30_000)]),
            ],
        )
        .unwrap();
        assert_eq!(when(&r), Lifespan::of(&[(0, 9), (20, 29)]));
        assert_eq!(when(&Relation::new(scheme())), Lifespan::empty());
    }

    #[test]
    fn when_of_select_when_answers_temporal_queries() {
        // "When did anyone earn 30K?" = Ω(σ-WHEN(SALARY=30K)(emp)).
        let r = Relation::with_tuples(
            scheme(),
            vec![
                emp("John", &[(0, 9, 25_000), (10, 19, 30_000)]),
                emp("Mary", &[(5, 24, 30_000)]),
            ],
        )
        .unwrap();
        let q = Predicate::eq_value("SALARY", 30_000i64);
        let answer = when(&select_when(&r, &q).unwrap());
        assert_eq!(answer, Lifespan::interval(5, 24));
    }

    #[test]
    fn when_feeds_timeslice() {
        // The paper notes Ω's result "can serve as the parameter" of τ_L.
        let r = Relation::with_tuples(
            scheme(),
            vec![
                emp("John", &[(0, 9, 25_000), (10, 19, 30_000)]),
                emp("Mary", &[(5, 24, 30_000)]),
            ],
        )
        .unwrap();
        let q = Predicate::eq_value("SALARY", 30_000i64);
        let span = when(&select_when(&r, &q).unwrap());
        let sliced = timeslice(&r, &span);
        // Everyone clipped to the era when someone earned 30K.
        assert_eq!(sliced.lifespan(), Lifespan::interval(5, 24));
    }
}
