//! PROJECT — reduction along the attribute dimension (paper §4.2).

use crate::attribute::Attribute;
use crate::errors::Result;
use crate::relation::Relation;

/// `π_X(r)` — "removes from r all but a specified set of attributes … It
/// does not change the values of any of the remaining attributes, or the
/// combinations of attribute values in the tuples" (paper §4.2).
///
/// Tuple lifespans are untouched; the result is a *set* (duplicate projected
/// tuples collapse). The derived scheme keeps the key only when every key
/// attribute survives the projection.
pub fn project(r: &Relation, x: &[Attribute]) -> Result<Relation> {
    let scheme = r.scheme().project(x)?;
    Ok(Relation::from_parts_unchecked(
        scheme,
        r.iter().map(|t| t.project(x)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::scheme::Scheme;
    use crate::temporal::TemporalValue;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use hrdm_time::Lifespan;

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("K", ValueKind::Str, Lifespan::interval(0, 100))
            .attr("V", HistoricalDomain::int(), Lifespan::interval(0, 100))
            .attr("W", HistoricalDomain::int(), Lifespan::interval(0, 100))
            .build()
            .unwrap()
    }

    fn tup(k: &str, spans: &[(i64, i64)], v: i64, w: i64) -> Tuple {
        let life = Lifespan::of(spans);
        Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(v)))
            .value("W", TemporalValue::constant(&life, Value::Int(w)))
            .finish(&scheme())
            .unwrap()
    }

    #[test]
    fn projection_drops_attributes_keeps_lifespan() {
        let r = Relation::with_tuples(scheme(), vec![tup("a", &[(0, 5), (10, 12)], 1, 7)]).unwrap();
        let p = project(&r, &["K".into(), "V".into()]).unwrap();
        assert_eq!(p.scheme().arity(), 2);
        let t = &p.tuples()[0];
        assert_eq!(t.lifespan(), &Lifespan::of(&[(0, 5), (10, 12)]));
        assert!(t.value(&"W".into()).is_none());
        assert!(t.value(&"V".into()).is_some());
    }

    #[test]
    fn projection_collapses_duplicates() {
        // Two distinct objects with identical non-key histories collapse
        // once the key is projected away.
        let r = Relation::with_tuples(
            scheme(),
            vec![tup("a", &[(0, 5)], 1, 7), tup("b", &[(0, 5)], 1, 7)],
        )
        .unwrap();
        let p = project(&r, &["V".into(), "W".into()]).unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.scheme().key().is_empty());
    }

    #[test]
    fn projection_onto_key_keeps_key() {
        let r = Relation::with_tuples(scheme(), vec![tup("a", &[(0, 5)], 1, 7)]).unwrap();
        let p = project(&r, &["K".into()]).unwrap();
        assert_eq!(p.scheme().key(), &[Attribute::new("K")]);
        assert!(p.check_key_constraint().is_ok());
    }

    #[test]
    fn projection_errors_on_unknown_attribute() {
        let r = Relation::new(scheme());
        assert!(project(&r, &["NOPE".into()]).is_err());
    }

    #[test]
    fn projection_is_idempotent() {
        let r = Relation::with_tuples(
            scheme(),
            vec![tup("a", &[(0, 5)], 1, 7), tup("b", &[(6, 9)], 2, 8)],
        )
        .unwrap();
        let x = ["K".into(), "V".into()];
        let once = project(&r, &x).unwrap();
        let twice = project(&once, &x).unwrap();
        assert_eq!(once, twice);
    }
}
