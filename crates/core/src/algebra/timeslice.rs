//! TIME-SLICE — reduction along the temporal dimension (paper §4.4).
//!
//! The third unary operator, the one the classical algebra has no analog
//! for: SELECT reduces along values, PROJECT along attributes, TIME-SLICE
//! along time. It comes in a *static* form (the target lifespan is a
//! parameter) and a *dynamic* form (the target lifespan is read, per tuple,
//! from the image of a time-valued attribute).

use crate::attribute::Attribute;
use crate::errors::{HrdmError, Result};
use crate::relation::Relation;
use hrdm_time::Lifespan;

/// Static TIME-SLICE `τ_L(r)` (paper §4.4): every tuple is restricted to
/// `L ∩ t.l`, values included. Tuples left with an empty lifespan bear no
/// information and are dropped.
pub fn timeslice(r: &Relation, l: &Lifespan) -> Relation {
    Relation::from_parts_unchecked(
        r.scheme().clone(),
        r.iter()
            .map(|t| t.restrict(l))
            .filter(|t| t.bears_information()),
    )
}

/// Dynamic TIME-SLICE `τ@A(r)` (paper §4.4): `A` must be time-valued
/// (`DOM(A) ⊆ TT`); each tuple is restricted to the **image** of its own
/// `t(A)` — "the subset of the lifespan that is selected for each tuple is
/// determined by the image of the value of a specified attribute for that
/// tuple".
///
/// The paper's formula reads `t.l = L` for `L` the image; since it also
/// requires `t = t'|_L` (whose lifespan is `t'.l ∩ L`), we take the
/// restriction reading: the result lifespan is `t'.l ∩ image(t'(A))`.
pub fn timeslice_dynamic(r: &Relation, attr: &Attribute) -> Result<Relation> {
    let dom = r.scheme().dom(attr)?;
    if !dom.is_time_valued() {
        return Err(HrdmError::NotTimeValued(attr.clone()));
    }
    let mut out = Vec::new();
    for t in r.iter() {
        let image = match t.value(attr) {
            Some(tv) => tv.image_lifespan()?,
            None => Lifespan::empty(),
        };
        let sliced = t.restrict(&image);
        if sliced.bears_information() {
            out.push(sliced);
        }
    }
    Ok(Relation::from_parts_unchecked(r.scheme().clone(), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::scheme::Scheme;
    use crate::temporal::TemporalValue;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use hrdm_time::{Chronon, Lifespan};

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            // REVIEWED: at each time s, the time point at which the record
            // was last reviewed — a time-valued attribute (DOM ⊆ TT).
            .attr(
                "REVIEWED",
                HistoricalDomain::time(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn emp(name: &str, span: (i64, i64), salary: i64, reviewed: &[(i64, i64, i64)]) -> Tuple {
        let life = Lifespan::interval(span.0, span.1);
        Tuple::builder(life.clone())
            .constant("NAME", name)
            .value("SALARY", TemporalValue::constant(&life, Value::Int(salary)))
            .value(
                "REVIEWED",
                TemporalValue::of(
                    &reviewed
                        .iter()
                        .map(|&(lo, hi, at)| (lo, hi, Value::time(at)))
                        .collect::<Vec<_>>(),
                ),
            )
            .finish(&scheme())
            .unwrap()
    }

    fn rel() -> Relation {
        Relation::with_tuples(
            scheme(),
            vec![
                emp("John", (0, 20), 25_000, &[(0, 10, 5), (11, 20, 15)]),
                emp("Mary", (10, 30), 30_000, &[(10, 30, 12)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn static_timeslice_restricts_everything() {
        let r = rel();
        let sliced = timeslice(&r, &Lifespan::interval(5, 12));
        assert_eq!(sliced.len(), 2);
        let john = sliced.find_by_key(&[Value::str("John")]).unwrap();
        assert_eq!(john.lifespan(), &Lifespan::interval(5, 12));
        assert_eq!(john.at(&"SALARY".into(), Chronon::new(3)), None);
        assert_eq!(
            john.at(&"SALARY".into(), Chronon::new(8)),
            Some(&Value::Int(25_000))
        );
        let mary = sliced.find_by_key(&[Value::str("Mary")]).unwrap();
        assert_eq!(mary.lifespan(), &Lifespan::interval(10, 12));
    }

    #[test]
    fn static_timeslice_drops_dead_tuples() {
        let r = rel();
        let sliced = timeslice(&r, &Lifespan::interval(25, 30));
        assert_eq!(sliced.len(), 1); // only Mary lives past 20
    }

    #[test]
    fn static_timeslice_with_fragmented_lifespan() {
        let r = rel();
        let window = Lifespan::of(&[(0, 2), (18, 22)]);
        let sliced = timeslice(&r, &window);
        let john = sliced.find_by_key(&[Value::str("John")]).unwrap();
        assert_eq!(john.lifespan(), &Lifespan::of(&[(0, 2), (18, 20)]));
    }

    #[test]
    fn static_timeslice_empty_window_empties_relation() {
        let r = rel();
        assert!(timeslice(&r, &Lifespan::empty()).is_empty());
    }

    #[test]
    fn dynamic_timeslice_uses_per_tuple_image() {
        let r = rel();
        let sliced = timeslice_dynamic(&r, &"REVIEWED".into()).unwrap();
        // John's REVIEWED image = {5, 15}; t.l ∩ image = {5, 15}.
        let john = sliced.find_by_key(&[Value::str("John")]).unwrap();
        assert_eq!(john.lifespan(), &Lifespan::of(&[(5, 5), (15, 15)]));
        // Mary's image = {12}, within her lifespan.
        let mary = sliced.find_by_key(&[Value::str("Mary")]).unwrap();
        assert_eq!(mary.lifespan(), &Lifespan::of(&[(12, 12)]));
    }

    #[test]
    fn dynamic_timeslice_drops_tuples_with_image_outside_lifespan() {
        // An employee whose review happened before their own lifespan:
        // image ∩ t.l = ∅, so the tuple vanishes.
        let r = Relation::with_tuples(scheme(), vec![emp("Zoe", (50, 60), 10_000, &[(50, 60, 3)])])
            .unwrap();
        let sliced = timeslice_dynamic(&r, &"REVIEWED".into()).unwrap();
        assert!(sliced.is_empty());
    }

    #[test]
    fn dynamic_timeslice_requires_tt_domain() {
        let r = rel();
        let err = timeslice_dynamic(&r, &"SALARY".into()).unwrap_err();
        assert_eq!(err, HrdmError::NotTimeValued(Attribute::new("SALARY")));
        assert!(timeslice_dynamic(&r, &"NOPE".into()).is_err());
    }

    #[test]
    fn timeslice_composes_with_itself() {
        // τ_L1 ∘ τ_L2 = τ_{L1 ∩ L2}.
        let r = rel();
        let l1 = Lifespan::interval(5, 15);
        let l2 = Lifespan::interval(10, 25);
        let nested = timeslice(&timeslice(&r, &l1), &l2);
        let direct = timeslice(&r, &l1.intersect(&l2));
        assert_eq!(nested, direct);
    }
}
