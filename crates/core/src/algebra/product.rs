//! Cartesian product — and the null-vs-lifespan trade-off of paper §5.
//!
//! The paper defines the product so that "resulting tuples are defined over
//! the **union** of the lifespans of the participating tuples, and thus
//! potentially contain null values" (§5): inside the combined lifespan, the
//! attributes inherited from one operand are undefined at times only the
//! other operand's tuple was alive. The JOINs, by contrast, intersect
//! lifespans and are null-free. [`null_volume`] measures exactly that cost.

use crate::errors::Result;
use crate::relation::Relation;

/// `r1 × r2` (paper §4.1/§5): schemes must have disjoint attribute sets; each
/// result tuple pairs `t1` and `t2` with lifespan `t1.l ∪ t2.l` and each
/// value kept on its own original span (so the result *contains nulls* —
/// undefined stretches — wherever only one contributor was alive).
pub fn cartesian_product(r1: &Relation, r2: &Relation) -> Result<Relation> {
    let scheme = r1.scheme().disjoint_concat(r2.scheme())?;
    let mut out = Vec::with_capacity(r1.len() * r2.len());
    for t1 in r1.iter() {
        for t2 in r2.iter() {
            let l = t1.lifespan().union(t2.lifespan());
            out.push(t1.concat_unrestricted(t2, l));
        }
    }
    Ok(Relation::from_parts_unchecked(scheme, out))
}

/// The total number of "null" chronons in a relation: for every tuple and
/// attribute, the chronons of `vls(t, A, R) = t.l ∩ ALS(A)` at which the
/// value is undefined. This quantifies §5's trade-off — products over
/// lifespan unions pay in nulls what joins over intersections pay in lost
/// history.
pub fn null_volume(r: &Relation) -> u64 {
    let mut total = 0u64;
    for t in r.iter() {
        for def in r.scheme().attrs() {
            let vls = t.lifespan().intersect(def.lifespan());
            let defined = match t.value(def.name()) {
                Some(tv) => tv.domain(),
                None => hrdm_time::Lifespan::empty(),
            };
            total = total.saturating_add(vls.difference(&defined).cardinality());
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::scheme::Scheme;
    use crate::temporal::TemporalValue;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use hrdm_time::{Chronon, Lifespan};

    fn emp_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn dept_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("DNAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "BUDGET",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn emp(name: &str, span: (i64, i64), salary: i64) -> Tuple {
        let life = Lifespan::interval(span.0, span.1);
        Tuple::builder(life.clone())
            .constant("NAME", name)
            .value("SALARY", TemporalValue::constant(&life, Value::Int(salary)))
            .finish(&emp_scheme())
            .unwrap()
    }

    fn dept(name: &str, span: (i64, i64), budget: i64) -> Tuple {
        let life = Lifespan::interval(span.0, span.1);
        Tuple::builder(life.clone())
            .constant("DNAME", name)
            .value("BUDGET", TemporalValue::constant(&life, Value::Int(budget)))
            .finish(&dept_scheme())
            .unwrap()
    }

    #[test]
    fn product_pairs_all_tuples_over_lifespan_union() {
        let emps = Relation::with_tuples(
            emp_scheme(),
            vec![emp("John", (0, 9), 1), emp("Mary", (5, 14), 2)],
        )
        .unwrap();
        let depts =
            Relation::with_tuples(dept_scheme(), vec![dept("Toys", (20, 29), 100)]).unwrap();
        let p = cartesian_product(&emps, &depts).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.scheme().arity(), 4);
        let t = p
            .iter()
            .find(|t| t.at(&"NAME".into(), Chronon::new(0)).is_some())
            .unwrap();
        // Lifespan is the union — disjoint here.
        assert_eq!(t.lifespan(), &Lifespan::of(&[(0, 9), (20, 29)]));
        // Values keep their own spans: nulls on the other side's span.
        assert_eq!(t.at(&"SALARY".into(), Chronon::new(25)), None);
        assert_eq!(t.at(&"BUDGET".into(), Chronon::new(5)), None);
        assert_eq!(
            t.at(&"BUDGET".into(), Chronon::new(25)),
            Some(&Value::Int(100))
        );
    }

    #[test]
    fn product_requires_disjoint_attributes() {
        let r = Relation::new(emp_scheme());
        assert!(cartesian_product(&r, &r).is_err());
        // The standard device: prefix one side.
        let r2 = Relation::new(emp_scheme().prefixed("e2"));
        assert!(cartesian_product(&r, &r2).is_ok());
    }

    #[test]
    fn null_volume_measures_undefined_stretches() {
        // John alive [0,9], dept alive [20,29]; product tuple spans both.
        // Inside [20,29] John's NAME and SALARY are null (2 attrs × 10
        // chronons) and inside [0,9] DNAME and BUDGET are null (2 × 10).
        let emps = Relation::with_tuples(emp_scheme(), vec![emp("John", (0, 9), 1)]).unwrap();
        let depts =
            Relation::with_tuples(dept_scheme(), vec![dept("Toys", (20, 29), 100)]).unwrap();
        let p = cartesian_product(&emps, &depts).unwrap();
        assert_eq!(null_volume(&p), 40);
        // The operands themselves are null-free.
        assert_eq!(null_volume(&emps), 0);
        assert_eq!(null_volume(&depts), 0);
    }

    #[test]
    fn overlapping_lifespans_reduce_null_volume() {
        let emps = Relation::with_tuples(emp_scheme(), vec![emp("John", (0, 9), 1)]).unwrap();
        let d_far = Relation::with_tuples(dept_scheme(), vec![dept("Toys", (20, 29), 1)]).unwrap();
        let d_near = Relation::with_tuples(dept_scheme(), vec![dept("Toys", (5, 14), 1)]).unwrap();
        let far = null_volume(&cartesian_product(&emps, &d_far).unwrap());
        let near = null_volume(&cartesian_product(&emps, &d_near).unwrap());
        assert!(
            near < far,
            "more overlap must mean fewer nulls: {near} vs {far}"
        );
    }

    #[test]
    fn product_with_empty_relation_is_empty() {
        let emps = Relation::with_tuples(emp_scheme(), vec![emp("John", (0, 9), 1)]).unwrap();
        let empty = Relation::new(dept_scheme());
        assert!(cartesian_product(&emps, &empty).unwrap().is_empty());
    }
}
