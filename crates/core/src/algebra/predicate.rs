//! Selection predicates `A θ a` and their evaluation over historical tuples.
//!
//! The paper's selection criterion is "a simple predicate over the attributes
//! of the tuple … `A θ a` would select only those tuples whose value for
//! attribute A stood in relationship θ to the value a. (The value a could
//! represent another attribute value or a constant.)" (§4.3). We implement
//! exactly that, plus the obvious boolean closure (`AND` / `OR` / `NOT`) as a
//! conservative extension.
//!
//! # Three-valued semantics
//!
//! Attribute values are *partial* functions; at times where a referenced
//! attribute is undefined the paper says the attribute "does not exist", so a
//! comparison there is neither true nor false — it is undefined. Predicates
//! therefore evaluate to `Option<bool>` per time point (Kleene's strong
//! three-valued logic for the connectives), and set-level operators consume
//! the *certainly-true* region ([`Predicate::when_true`]).

use crate::attribute::Attribute;
use crate::errors::{HrdmError, Result};
use crate::scheme::Scheme;
use crate::tuple::Tuple;
use crate::value::Value;
use hrdm_time::{Chronon, Lifespan};
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator θ.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Comparator {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl Comparator {
    /// Does an ordering outcome satisfy this comparator?
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            Comparator::Eq => ord == Ordering::Equal,
            Comparator::Ne => ord != Ordering::Equal,
            Comparator::Lt => ord == Ordering::Less,
            Comparator::Le => ord != Ordering::Greater,
            Comparator::Gt => ord == Ordering::Greater,
            Comparator::Ge => ord != Ordering::Less,
        }
    }

    /// The comparator with operands swapped (`a θ b ⇔ b θ' a`).
    pub fn flipped(self) -> Comparator {
        match self {
            Comparator::Eq => Comparator::Eq,
            Comparator::Ne => Comparator::Ne,
            Comparator::Lt => Comparator::Gt,
            Comparator::Le => Comparator::Ge,
            Comparator::Gt => Comparator::Lt,
            Comparator::Ge => Comparator::Le,
        }
    }

    /// The logical negation (`¬(a θ b) ⇔ a θ' b`, when both sides defined).
    pub fn negated(self) -> Comparator {
        match self {
            Comparator::Eq => Comparator::Ne,
            Comparator::Ne => Comparator::Eq,
            Comparator::Lt => Comparator::Ge,
            Comparator::Le => Comparator::Gt,
            Comparator::Gt => Comparator::Le,
            Comparator::Ge => Comparator::Lt,
        }
    }
}

impl fmt::Display for Comparator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Comparator::Eq => "=",
            Comparator::Ne => "!=",
            Comparator::Lt => "<",
            Comparator::Le => "<=",
            Comparator::Gt => ">",
            Comparator::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One side of a comparison: an attribute reference or a constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// The (time-varying) value of an attribute.
    Attr(Attribute),
    /// A constant value.
    Const(Value),
}

impl Operand {
    /// Convenience: an attribute operand.
    pub fn attr(name: impl Into<Attribute>) -> Operand {
        Operand::Attr(name.into())
    }

    /// Convenience: a constant operand.
    pub fn val(v: impl Into<Value>) -> Operand {
        Operand::Const(v.into())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr(a) => write!(f, "{a}"),
            Operand::Const(Value::Str(s)) => write!(f, "\"{s}\""),
            Operand::Const(v) => write!(f, "{v}"),
        }
    }
}

/// A selection predicate: an atomic comparison `x θ y`, or a boolean
/// combination of predicates.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Predicate {
    /// Always true (selects whole tuples; the identity of `AND`).
    True,
    /// An atomic comparison.
    Cmp {
        /// Left operand.
        left: Operand,
        /// The comparison operator θ.
        op: Comparator,
        /// Right operand.
        right: Operand,
    },
    /// Conjunction (Kleene strong ∧).
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction (Kleene strong ∨).
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation (undefined stays undefined).
    Not(Box<Predicate>),
}

impl Predicate {
    /// `left θ right`.
    pub fn cmp(left: Operand, op: Comparator, right: Operand) -> Predicate {
        Predicate::Cmp { left, op, right }
    }

    /// `A θ const` — the paper's canonical form.
    pub fn attr_op_value(
        attr: impl Into<Attribute>,
        op: Comparator,
        v: impl Into<Value>,
    ) -> Predicate {
        Predicate::cmp(Operand::attr(attr), op, Operand::val(v))
    }

    /// `A = const`.
    pub fn eq_value(attr: impl Into<Attribute>, v: impl Into<Value>) -> Predicate {
        Predicate::attr_op_value(attr, Comparator::Eq, v)
    }

    /// `p ∧ q`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `p ∨ q`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `¬p`.
    pub fn negate(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// The attributes the predicate references.
    pub fn attributes(&self) -> Vec<Attribute> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<Attribute>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp { left, right, .. } => {
                if let Operand::Attr(a) = left {
                    out.push(a.clone());
                }
                if let Operand::Attr(a) = right {
                    out.push(a.clone());
                }
            }
            Predicate::And(p, q) | Predicate::Or(p, q) => {
                p.collect_attrs(out);
                q.collect_attrs(out);
            }
            Predicate::Not(p) => p.collect_attrs(out),
        }
    }

    /// Type-checks the predicate against a scheme: referenced attributes must
    /// exist and compared kinds must be comparable.
    pub fn typecheck(&self, scheme: &Scheme) -> Result<()> {
        match self {
            Predicate::True => Ok(()),
            Predicate::Cmp { left, op: _, right } => {
                let lk = match left {
                    Operand::Attr(a) => scheme.dom(a)?.kind(),
                    Operand::Const(v) => v.kind(),
                };
                let rk = match right {
                    Operand::Attr(a) => scheme.dom(a)?.kind(),
                    Operand::Const(v) => v.kind(),
                };
                if lk.comparable_with(rk) {
                    Ok(())
                } else {
                    Err(HrdmError::IncomparableValues {
                        left: lk,
                        right: rk,
                    })
                }
            }
            Predicate::And(p, q) | Predicate::Or(p, q) => {
                p.typecheck(scheme)?;
                q.typecheck(scheme)
            }
            Predicate::Not(p) => p.typecheck(scheme),
        }
    }

    /// Point evaluation: the truth value of the predicate over tuple `t` at
    /// time `s`. `None` means *undefined* — some referenced attribute bears
    /// no value at `s`.
    pub fn eval_at(&self, t: &Tuple, s: Chronon) -> Result<Option<bool>> {
        match self {
            Predicate::True => Ok(Some(true)),
            Predicate::Cmp { left, op, right } => {
                let lv = match left {
                    Operand::Attr(a) => t.at(a, s),
                    Operand::Const(v) => Some(v),
                };
                let rv = match right {
                    Operand::Attr(a) => t.at(a, s),
                    Operand::Const(v) => Some(v),
                };
                match (lv, rv) {
                    (Some(l), Some(r)) => Ok(Some(op.test(l.try_cmp(r)?))),
                    _ => Ok(None),
                }
            }
            Predicate::And(p, q) => {
                let (a, b) = (p.eval_at(t, s)?, q.eval_at(t, s)?);
                Ok(match (a, b) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                })
            }
            Predicate::Or(p, q) => {
                let (a, b) = (p.eval_at(t, s)?, q.eval_at(t, s)?);
                Ok(match (a, b) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                })
            }
            Predicate::Not(p) => Ok(p.eval_at(t, s)?.map(|b| !b)),
        }
    }

    /// The set of times (within the tuple's lifespan) where the predicate is
    /// *certainly true*. Computed segment-wise, never per chronon.
    pub fn when_true(&self, t: &Tuple) -> Result<Lifespan> {
        Ok(self.truth_spans(t)?.0)
    }

    /// The set of times where the predicate is *certainly false*.
    pub fn when_false(&self, t: &Tuple) -> Result<Lifespan> {
        Ok(self.truth_spans(t)?.1)
    }

    /// `(certainly-true, certainly-false)` spans, both within `t.l`.
    fn truth_spans(&self, t: &Tuple) -> Result<(Lifespan, Lifespan)> {
        match self {
            Predicate::True => Ok((t.lifespan().clone(), Lifespan::empty())),
            Predicate::Cmp { left, op, right } => cmp_spans(t, left, *op, right),
            Predicate::And(p, q) => {
                let (pt, pf) = p.truth_spans(t)?;
                let (qt, qf) = q.truth_spans(t)?;
                Ok((pt.intersect(&qt), pf.union(&qf)))
            }
            Predicate::Or(p, q) => {
                let (pt, pf) = p.truth_spans(t)?;
                let (qt, qf) = q.truth_spans(t)?;
                Ok((pt.union(&qt), pf.intersect(&qf)))
            }
            Predicate::Not(p) => {
                let (pt, pf) = p.truth_spans(t)?;
                Ok((pf, pt))
            }
        }
    }
}

/// Truth spans of one atomic comparison, segment-wise.
fn cmp_spans(
    t: &Tuple,
    left: &Operand,
    op: Comparator,
    right: &Operand,
) -> Result<(Lifespan, Lifespan)> {
    use crate::temporal::TemporalValue;
    match (left, right) {
        (Operand::Const(l), Operand::Const(r)) => {
            let holds = op.test(l.try_cmp(r)?);
            if holds {
                Ok((t.lifespan().clone(), Lifespan::empty()))
            } else {
                Ok((Lifespan::empty(), t.lifespan().clone()))
            }
        }
        (Operand::Attr(a), Operand::Const(c)) => {
            let f = t.value(a).cloned().unwrap_or_else(TemporalValue::empty);
            attr_const_spans(&f, op, c)
        }
        (Operand::Const(c), Operand::Attr(a)) => {
            let f = t.value(a).cloned().unwrap_or_else(TemporalValue::empty);
            attr_const_spans(&f, op.flipped(), c)
        }
        (Operand::Attr(a), Operand::Attr(b)) => {
            let empty = TemporalValue::empty();
            let f = t.value(a).unwrap_or(&empty);
            let g = t.value(b).unwrap_or(&empty);
            let truth = f.when_compare(g, |ord| op.test(ord))?;
            let falsity = f.when_compare(g, |ord| !op.test(ord))?;
            Ok((truth, falsity))
        }
    }
}

fn attr_const_spans(
    f: &crate::temporal::TemporalValue,
    op: Comparator,
    c: &Value,
) -> Result<(Lifespan, Lifespan)> {
    let mut truth = Vec::new();
    let mut falsity = Vec::new();
    for (iv, v) in f.segments() {
        if op.test(v.try_cmp(c)?) {
            truth.push(*iv);
        } else {
            falsity.push(*iv);
        }
    }
    Ok((
        Lifespan::from_intervals(truth),
        Lifespan::from_intervals(falsity),
    ))
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => f.write_str("true"),
            Predicate::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Predicate::And(p, q) => write!(f, "({p} and {q})"),
            Predicate::Or(p, q) => write!(f, "({p} or {q})"),
            Predicate::Not(p) => write!(f, "(not {p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::temporal::TemporalValue;

    fn ls(lo: i64, hi: i64) -> Lifespan {
        Lifespan::interval(lo, hi)
    }

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, ls(0, 100))
            .attr("SALARY", HistoricalDomain::int(), ls(0, 100))
            .attr("BUDGET", HistoricalDomain::int(), ls(0, 100))
            .build()
            .unwrap()
    }

    fn john() -> Tuple {
        Tuple::builder(ls(0, 30))
            .constant("NAME", "John")
            .value(
                "SALARY",
                TemporalValue::of(&[
                    (0, 9, Value::Int(25_000)),
                    (10, 19, Value::Int(30_000)),
                    (25, 30, Value::Int(28_000)), // gap [20,24]: salary unknown
                ]),
            )
            .value("BUDGET", TemporalValue::of(&[(0, 30, Value::Int(29_000))]))
            .finish(&scheme())
            .unwrap()
    }

    #[test]
    fn comparator_tests() {
        assert!(Comparator::Eq.test(Ordering::Equal));
        assert!(!Comparator::Eq.test(Ordering::Less));
        assert!(Comparator::Le.test(Ordering::Equal));
        assert!(Comparator::Ne.test(Ordering::Greater));
        assert!(Comparator::Ge.test(Ordering::Greater));
        assert!(Comparator::Lt.test(Ordering::Less));
    }

    #[test]
    fn comparator_flip_and_negate() {
        for op in [
            Comparator::Eq,
            Comparator::Ne,
            Comparator::Lt,
            Comparator::Le,
            Comparator::Gt,
            Comparator::Ge,
        ] {
            for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
                assert_eq!(op.test(ord), op.flipped().test(ord.reverse()));
                assert_eq!(op.test(ord), !op.negated().test(ord));
            }
        }
    }

    #[test]
    fn point_eval_attr_const() {
        // The paper's running example: Salary = 30K.
        let p = Predicate::eq_value("SALARY", 30_000i64);
        let t = john();
        assert_eq!(p.eval_at(&t, Chronon::new(15)).unwrap(), Some(true));
        assert_eq!(p.eval_at(&t, Chronon::new(5)).unwrap(), Some(false));
        assert_eq!(p.eval_at(&t, Chronon::new(22)).unwrap(), None); // undefined gap
        assert_eq!(p.eval_at(&t, Chronon::new(99)).unwrap(), None); // outside t.l
    }

    #[test]
    fn when_true_is_select_when_core() {
        // "just those times when John earned 30K" (paper §4.3).
        let p = Predicate::eq_value("SALARY", 30_000i64);
        assert_eq!(p.when_true(&john()).unwrap(), ls(10, 19));
    }

    #[test]
    fn when_false_excludes_undefined() {
        let p = Predicate::eq_value("SALARY", 30_000i64);
        let wf = p.when_false(&john()).unwrap();
        assert_eq!(wf, Lifespan::of(&[(0, 9), (25, 30)]));
        // [20,24] is neither true nor false.
        assert!(!wf.contains(Chronon::new(22)));
    }

    #[test]
    fn attr_attr_comparison_segmentwise() {
        // SALARY > BUDGET exactly when salary is 30000 > 29000.
        let p = Predicate::cmp(
            Operand::attr("SALARY"),
            Comparator::Gt,
            Operand::attr("BUDGET"),
        );
        assert_eq!(p.when_true(&john()).unwrap(), ls(10, 19));
        let wf = p.when_false(&john()).unwrap();
        assert_eq!(wf, Lifespan::of(&[(0, 9), (25, 30)]));
    }

    #[test]
    fn const_attr_flips() {
        let p = Predicate::cmp(
            Operand::val(26_000i64),
            Comparator::Lt,
            Operand::attr("SALARY"),
        );
        assert_eq!(
            p.when_true(&john()).unwrap(),
            Lifespan::of(&[(10, 19), (25, 30)])
        );
    }

    #[test]
    fn kleene_connectives() {
        let t = john();
        let hi = Predicate::attr_op_value("SALARY", Comparator::Ge, 28_000i64);
        let lo = Predicate::attr_op_value("SALARY", Comparator::Le, 29_000i64);
        let band = hi.clone().and(lo.clone());
        assert_eq!(band.when_true(&t).unwrap(), ls(25, 30));

        let either = hi.clone().or(lo);
        assert_eq!(
            either.when_true(&t).unwrap(),
            Lifespan::of(&[(0, 19), (25, 30)])
        );

        let not_hi = hi.negate();
        assert_eq!(not_hi.when_true(&t).unwrap(), ls(0, 9));
        // Undefined gap stays undefined under negation.
        assert!(!not_hi.when_true(&t).unwrap().contains(Chronon::new(22)));
        assert_eq!(not_hi.eval_at(&t, Chronon::new(22)).unwrap(), None);
    }

    #[test]
    fn kleene_false_dominates_undefined() {
        let t = john();
        // SALARY = 1 is false on defined spans; undefined on [20,24].
        let f = Predicate::eq_value("SALARY", 1i64);
        // false AND undefined = false (strong Kleene).
        let conj = f.clone().and(Predicate::eq_value("SALARY", 30_000i64));
        assert_eq!(conj.eval_at(&t, Chronon::new(5)).unwrap(), Some(false));
        // true OR undefined = true.
        let disj = Predicate::True.or(f);
        assert_eq!(disj.eval_at(&t, Chronon::new(22)).unwrap(), Some(true));
    }

    #[test]
    fn pointwise_agrees_with_spanwise() {
        // Exhaustive consistency check between eval_at and truth spans.
        let t = john();
        let preds = [
            Predicate::eq_value("SALARY", 30_000i64),
            Predicate::attr_op_value("SALARY", Comparator::Gt, 26_000i64),
            Predicate::cmp(
                Operand::attr("SALARY"),
                Comparator::Le,
                Operand::attr("BUDGET"),
            ),
            Predicate::eq_value("SALARY", 30_000i64).and(Predicate::eq_value("NAME", "John")),
            Predicate::eq_value("SALARY", 25_000i64).negate(),
        ];
        for p in &preds {
            let wt = p.when_true(&t).unwrap();
            let wf = p.when_false(&t).unwrap();
            for s in 0..=35i64 {
                let s = Chronon::new(s);
                match p.eval_at(&t, s).unwrap() {
                    Some(true) => assert!(wt.contains(s), "{p} at {s}"),
                    Some(false) => assert!(wf.contains(s), "{p} at {s}"),
                    None => {
                        assert!(!wt.contains(s) && !wf.contains(s), "{p} at {s}")
                    }
                }
            }
        }
    }

    #[test]
    fn typecheck_catches_unknown_and_incomparable() {
        let s = scheme();
        assert!(Predicate::eq_value("SALARY", 1i64).typecheck(&s).is_ok());
        assert!(Predicate::eq_value("NOPE", 1i64).typecheck(&s).is_err());
        assert!(Predicate::eq_value("SALARY", "text").typecheck(&s).is_err());
        assert!(Predicate::cmp(
            Operand::attr("NAME"),
            Comparator::Eq,
            Operand::attr("SALARY")
        )
        .typecheck(&s)
        .is_err());
    }

    #[test]
    fn const_const_cases() {
        let t = john();
        let p = Predicate::cmp(Operand::val(1i64), Comparator::Lt, Operand::val(2i64));
        assert_eq!(p.when_true(&t).unwrap(), t.lifespan().clone());
        let q = Predicate::cmp(Operand::val(2i64), Comparator::Lt, Operand::val(1i64));
        assert_eq!(q.when_true(&t).unwrap(), Lifespan::empty());
        assert_eq!(q.when_false(&t).unwrap(), t.lifespan().clone());
    }

    #[test]
    fn attributes_collected() {
        let p = Predicate::eq_value("A", 1i64).and(Predicate::cmp(
            Operand::attr("B"),
            Comparator::Lt,
            Operand::attr("C"),
        ));
        let names: Vec<String> = p
            .attributes()
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn display_forms() {
        let p = Predicate::eq_value("SALARY", 30_000i64)
            .and(Predicate::eq_value("NAME", "John").negate());
        assert_eq!(p.to_string(), "(SALARY = 30000 and (not NAME = \"John\"))");
    }
}
