//! The JOIN family: θ-JOIN, EQUIJOIN, NATURAL-JOIN, TIME-JOIN (paper §4.6).
//!
//! All intersection-flavored joins share one shape: pair up tuples, compute
//! the lifespan on which the join condition relates their values, and — if
//! that lifespan is non-empty — emit the concatenation of both tuples
//! *restricted to it*. Because the result lifespan is where the condition
//! actually holds, "no nulls result; the JOIN of two tuples was defined only
//! over their lifespan intersection" (paper §5). The union-flavored variant
//! the paper sketches in §5 (`SELECT-IF` over the product, with nulls) is
//! provided as [`theta_join_union`].

use crate::algebra::predicate::Comparator;
use crate::attribute::Attribute;
use crate::errors::{HrdmError, Result};
use crate::relation::Relation;
use crate::temporal::TemporalValue;
use hrdm_time::Lifespan;

/// `r1 JOIN r2 [A θ B]` (paper §4.6): attribute sets must be disjoint; each
/// pair `(t1, t2)` joins over `l = { s | t1(A)(s) θ t2(B)(s) }` — the times
/// both values are defined and θ-related — with every attribute of the
/// result restricted to `l`.
pub fn theta_join(
    r1: &Relation,
    r2: &Relation,
    a: &Attribute,
    op: Comparator,
    b: &Attribute,
) -> Result<Relation> {
    // Validate the join attributes up front (types + existence).
    let ka = r1.scheme().dom(a)?.kind();
    let kb = r2.scheme().dom(b)?.kind();
    if !ka.comparable_with(kb) {
        return Err(HrdmError::IncomparableValues {
            left: ka,
            right: kb,
        });
    }
    let scheme = r1.scheme().disjoint_concat(r2.scheme())?;
    let empty = TemporalValue::empty();
    let mut out = Vec::new();
    for t1 in r1.iter() {
        let f = t1.value(a).unwrap_or(&empty);
        for t2 in r2.iter() {
            let g = t2.value(b).unwrap_or(&empty);
            let l = f.when_compare(g, |ord| op.test(ord))?;
            if !l.is_empty() {
                out.push(t1.concat_restricted(t2, l));
            }
        }
    }
    Ok(Relation::from_parts_unchecked(scheme, out))
}

/// `r1 [A = B] r2` — "just a special case of the general θ-JOIN" (paper
/// §4.6) with θ as equality; in the result `t.v(A) = t.v(B)` holds over the
/// whole tuple lifespan by construction.
pub fn equijoin(r1: &Relation, r2: &Relation, a: &Attribute, b: &Attribute) -> Result<Relation> {
    theta_join(r1, r2, a, Comparator::Eq, b)
}

/// `r1 NATURAL-JOIN r2` (paper §4.6): pairs join over the times **all**
/// common attributes are defined and equal on both sides; the common
/// attributes appear once in the result ("just a projection of the
/// equijoin"). With no common attributes this degenerates — as in the
/// classical algebra — to a product over the lifespan intersection.
pub fn natural_join(r1: &Relation, r2: &Relation) -> Result<Relation> {
    let common: Vec<Attribute> = r1
        .scheme()
        .attr_names()
        .filter(|a| r2.scheme().contains(a))
        .cloned()
        .collect();
    let scheme = r1.scheme().natural_concat(r2.scheme())?;
    let mut out = Vec::new();
    for t1 in r1.iter() {
        for t2 in r2.iter() {
            if let Some(joined) = natural_join_pair(t1, t2, &common)? {
                out.push(joined);
            }
        }
    }
    Ok(Relation::from_parts_unchecked(scheme, out))
}

/// Joins one `(t1, t2)` pair as NATURAL-JOIN does: the result exists on the
/// times both tuples are alive and agree on every attribute of `common`,
/// and is `None` when that lifespan is empty.
///
/// This is the exact per-pair semantics of [`natural_join`], exposed so
/// index-driven join strategies (probing a key index for candidate
/// partners instead of scanning) can reuse it unchanged.
pub fn natural_join_pair(
    t1: &crate::Tuple,
    t2: &crate::Tuple,
    common: &[Attribute],
) -> Result<Option<crate::Tuple>> {
    let empty = TemporalValue::empty();
    let mut l = t1.lifespan().intersect(t2.lifespan());
    for attr in common {
        if l.is_empty() {
            break;
        }
        let f = t1.value(attr).unwrap_or(&empty);
        let g = t2.value(attr).unwrap_or(&empty);
        l = l.intersect(&f.when_compare(g, |ord| ord == std::cmp::Ordering::Equal)?);
    }
    if l.is_empty() {
        Ok(None)
    } else {
        Ok(Some(t1.concat_restricted(t2, l)))
    }
}

/// `r1 [@A] r2` — TIME-JOIN at time-valued attribute `A` of `r1` (paper
/// §4.6): "essentially … a join of dynamic TIME-SLICEs of both relations".
/// Each pair joins over `l = t1.l ∩ t2.l ∩ image(t1(A))` — the times both
/// tuples are alive that the time-valued attribute actually points at.
///
/// (The paper's closing formula is lost to the source scan; this is the
/// reconstruction implied by its prose definition, and it reduces to the
/// dynamic TIME-SLICE of `r1` when `r2`'s tuples span all of `T`.)
pub fn time_join(r1: &Relation, r2: &Relation, a: &Attribute) -> Result<Relation> {
    let dom = r1.scheme().dom(a)?;
    if !dom.is_time_valued() {
        return Err(HrdmError::NotTimeValued(a.clone()));
    }
    let scheme = r1.scheme().disjoint_concat(r2.scheme())?;
    let mut out = Vec::new();
    for t1 in r1.iter() {
        let image = match t1.value(a) {
            Some(tv) => tv.image_lifespan()?,
            None => Lifespan::empty(),
        };
        if image.is_empty() {
            continue;
        }
        for t2 in r2.iter() {
            if let Some(joined) = time_join_pair(t1, t2, &image) {
                out.push(joined);
            }
        }
    }
    Ok(Relation::from_parts_unchecked(scheme, out))
}

/// Joins one `(t1, t2)` pair as TIME-JOIN does, for a precomputed image of
/// `t1`'s time-valued join attribute: the result exists on
/// `t1.l ∩ t2.l ∩ image` and is `None` when that lifespan is empty.
///
/// The exact per-pair semantics of [`time_join`], exposed so index-driven
/// strategies (probing a lifespan index with `t1.l ∩ image` for candidate
/// partners) can reuse it unchanged.
pub fn time_join_pair(
    t1: &crate::Tuple,
    t2: &crate::Tuple,
    image: &Lifespan,
) -> Option<crate::Tuple> {
    let l = t1.lifespan().intersect(t2.lifespan()).intersect(image);
    if l.is_empty() {
        None
    } else {
        Some(t1.concat_restricted(t2, l))
    }
}

/// The union-flavored θ-join of paper §5: pairs whose values are θ-related
/// at **some** time are kept whole, over `t1.l ∪ t2.l`, values unrestricted
/// — "essentially equivalent to a SELECT-IF of the Cartesian product; a
/// resulting tuple will have null values for times outside of its
/// contributing tuples' lifespans".
pub fn theta_join_union(
    r1: &Relation,
    r2: &Relation,
    a: &Attribute,
    op: Comparator,
    b: &Attribute,
) -> Result<Relation> {
    let ka = r1.scheme().dom(a)?.kind();
    let kb = r2.scheme().dom(b)?.kind();
    if !ka.comparable_with(kb) {
        return Err(HrdmError::IncomparableValues {
            left: ka,
            right: kb,
        });
    }
    let scheme = r1.scheme().disjoint_concat(r2.scheme())?;
    let empty = TemporalValue::empty();
    let mut out = Vec::new();
    for t1 in r1.iter() {
        let f = t1.value(a).unwrap_or(&empty);
        for t2 in r2.iter() {
            let g = t2.value(b).unwrap_or(&empty);
            let holds_somewhere = !f.when_compare(g, |ord| op.test(ord))?.is_empty();
            if holds_somewhere {
                let l = t1.lifespan().union(t2.lifespan());
                out.push(t1.concat_unrestricted(t2, l));
            }
        }
    }
    Ok(Relation::from_parts_unchecked(scheme, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::product::null_volume;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::scheme::Scheme;
    use crate::value::Value;
    use crate::Tuple;
    use hrdm_time::{Chronon, Lifespan};

    fn emp_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "DEPT",
                HistoricalDomain::string(),
                Lifespan::interval(0, 100),
            )
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn dept_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("DNAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "BUDGET",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn emp(name: &str, span: (i64, i64), dept: &[(i64, i64, &str)], salary: i64) -> Tuple {
        let life = Lifespan::interval(span.0, span.1);
        Tuple::builder(life.clone())
            .constant("NAME", name)
            .value(
                "DEPT",
                TemporalValue::of(
                    &dept
                        .iter()
                        .map(|&(lo, hi, d)| (lo, hi, Value::str(d)))
                        .collect::<Vec<_>>(),
                ),
            )
            .value("SALARY", TemporalValue::constant(&life, Value::Int(salary)))
            .finish(&emp_scheme())
            .unwrap()
    }

    fn dept(name: &str, span: (i64, i64), budget: i64) -> Tuple {
        let life = Lifespan::interval(span.0, span.1);
        Tuple::builder(life.clone())
            .constant("DNAME", name)
            .value("BUDGET", TemporalValue::constant(&life, Value::Int(budget)))
            .finish(&dept_scheme())
            .unwrap()
    }

    fn emps() -> Relation {
        Relation::with_tuples(
            emp_scheme(),
            vec![
                emp("John", (0, 20), &[(0, 10, "Toys"), (11, 20, "Shoes")], 25),
                emp("Mary", (5, 30), &[(5, 30, "Toys")], 30),
            ],
        )
        .unwrap()
    }

    fn depts() -> Relation {
        Relation::with_tuples(
            dept_scheme(),
            vec![dept("Toys", (0, 30), 100), dept("Shoes", (8, 25), 50)],
        )
        .unwrap()
    }

    #[test]
    fn equijoin_joins_on_matching_spans() {
        let j = equijoin(&emps(), &depts(), &"DEPT".into(), &"DNAME".into()).unwrap();
        // John×Toys over [0,10], John×Shoes over [11,20], Mary×Toys over [5,30].
        assert_eq!(j.len(), 3);
        let john_toys = j
            .iter()
            .find(|t| t.at(&"NAME".into(), Chronon::new(0)) == Some(&Value::str("John")))
            .unwrap();
        assert_eq!(john_toys.lifespan(), &Lifespan::interval(0, 10));
        // Both join attributes are kept, equal over the lifespan.
        assert_eq!(
            john_toys.at(&"DEPT".into(), Chronon::new(5)),
            john_toys.at(&"DNAME".into(), Chronon::new(5))
        );
        // No nulls anywhere (paper §5).
        assert_eq!(null_volume(&j), 0);
    }

    #[test]
    fn equijoin_is_theta_join_with_eq() {
        let a = equijoin(&emps(), &depts(), &"DEPT".into(), &"DNAME".into()).unwrap();
        let b = theta_join(
            &emps(),
            &depts(),
            &"DEPT".into(),
            Comparator::Eq,
            &"DNAME".into(),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn theta_join_with_inequality() {
        // SALARY < BUDGET: John(25) < Toys(100) and < Shoes(50); Mary(30) likewise.
        let j = theta_join(
            &emps(),
            &depts(),
            &"SALARY".into(),
            Comparator::Lt,
            &"BUDGET".into(),
        )
        .unwrap();
        assert_eq!(j.len(), 4);
        // Each joined tuple lives on the lifespan intersection (values are
        // constants, so θ holds wherever both are defined).
        let john_shoes = j
            .iter()
            .find(|t| {
                t.at(&"NAME".into(), Chronon::new(8)) == Some(&Value::str("John"))
                    && t.at(&"DNAME".into(), Chronon::new(8)) == Some(&Value::str("Shoes"))
            })
            .unwrap();
        assert_eq!(john_shoes.lifespan(), &Lifespan::interval(8, 20));
    }

    #[test]
    fn theta_join_requires_comparable_kinds_and_disjoint_attrs() {
        assert!(matches!(
            theta_join(
                &emps(),
                &depts(),
                &"NAME".into(),
                Comparator::Eq,
                &"BUDGET".into()
            ),
            Err(HrdmError::IncomparableValues { .. })
        ));
        let self_join = theta_join(
            &emps(),
            &emps(),
            &"SALARY".into(),
            Comparator::Eq,
            &"SALARY".into(),
        );
        assert!(matches!(
            self_join,
            Err(HrdmError::AttributesNotDisjoint(_))
        ));
    }

    #[test]
    fn natural_join_on_common_attribute() {
        // Rename DNAME to DEPT so the schemes share an attribute.
        let dscheme = Scheme::builder()
            .key_attr("DEPT", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "BUDGET",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap();
        // DEPT as key must be constant; "Toys" department.
        let toys = Tuple::builder(Lifespan::interval(0, 30))
            .constant("DEPT", "Toys")
            .value(
                "BUDGET",
                TemporalValue::constant(&Lifespan::interval(0, 30), Value::Int(100)),
            )
            .finish(&dscheme)
            .unwrap();
        let depts = Relation::with_tuples(dscheme, vec![toys]).unwrap();

        let j = natural_join(&emps(), &depts).unwrap();
        // John matches Toys on [0,10]; Mary on [5,30]. DEPT appears once.
        assert_eq!(j.len(), 2);
        assert_eq!(j.scheme().arity(), 4); // NAME, DEPT, SALARY, BUDGET
        let john = j
            .iter()
            .find(|t| t.at(&"NAME".into(), Chronon::new(0)).is_some())
            .unwrap();
        assert_eq!(john.lifespan(), &Lifespan::interval(0, 10));
        assert_eq!(
            john.at(&"DEPT".into(), Chronon::new(5)),
            Some(&Value::str("Toys"))
        );
        assert_eq!(
            john.at(&"BUDGET".into(), Chronon::new(5)),
            Some(&Value::Int(100))
        );
    }

    #[test]
    fn natural_join_without_common_attrs_is_intersection_product() {
        let j = natural_join(&emps(), &depts()).unwrap();
        // Every emp×dept pair restricted to lifespan intersection.
        assert_eq!(j.len(), 4);
        for t in j.iter() {
            assert!(!t.lifespan().is_empty());
        }
    }

    #[test]
    fn time_join_slices_by_image() {
        // Emp scheme with a time-valued HIRED attribute pointing at the
        // hire chronon; joining on it pairs each employee with the
        // departments alive at the times the attribute points to.
        let scheme = Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "HIRED",
                HistoricalDomain::time(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap();
        let life = Lifespan::interval(0, 30);
        let t = Tuple::builder(life.clone())
            .constant("NAME", "John")
            .value("HIRED", TemporalValue::constant(&life, Value::time(9)))
            .finish(&scheme)
            .unwrap();
        let r1 = Relation::with_tuples(scheme, vec![t]).unwrap();
        let j = time_join(&r1, &depts(), &"HIRED".into()).unwrap();
        // image = {9}; both Toys [0,30] and Shoes [8,25] are alive at 9.
        assert_eq!(j.len(), 2);
        for t in j.iter() {
            assert_eq!(t.lifespan(), &Lifespan::of(&[(9, 9)]));
        }
    }

    #[test]
    fn time_join_requires_tt_attribute() {
        assert!(matches!(
            time_join(&emps(), &depts(), &"SALARY".into()),
            Err(HrdmError::NotTimeValued(_))
        ));
    }

    #[test]
    fn union_join_keeps_whole_lifespans_with_nulls() {
        let j = theta_join_union(
            &emps(),
            &depts(),
            &"DEPT".into(),
            Comparator::Eq,
            &"DNAME".into(),
        )
        .unwrap();
        assert_eq!(j.len(), 3); // same pairs as the equijoin…
        let john_toys = j
            .iter()
            .find(|t| {
                t.at(&"NAME".into(), Chronon::new(0)) == Some(&Value::str("John"))
                    && t.at(&"DNAME".into(), Chronon::new(0)) == Some(&Value::str("Toys"))
            })
            .unwrap();
        // …but over the union of lifespans, with nulls (paper §5).
        assert_eq!(john_toys.lifespan(), &Lifespan::interval(0, 30));
        assert!(null_volume(&j) > 0);
    }

    #[test]
    fn joins_with_empty_operand_are_empty() {
        let empty = Relation::new(dept_scheme());
        assert!(equijoin(&emps(), &empty, &"DEPT".into(), &"DNAME".into())
            .unwrap()
            .is_empty());
        assert!(natural_join(&emps(), &empty).unwrap().is_empty());
    }
}
