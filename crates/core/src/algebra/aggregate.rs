//! Time-varying aggregation — an *extension* beyond the 1987 paper.
//!
//! The paper's algebra has no aggregates; every successor of HRDM (HSQL,
//! TSQL2) added them, and they fall out naturally here: since attribute
//! values are functions of time, an aggregate over a relation is itself a
//! **function of time** — `COUNT(emp)` is the time-varying head-count,
//! `AVG(SALARY)` the time-varying average salary. The result is a
//! [`TemporalValue`], so aggregates compose with the rest of the model.
//!
//! Everything is computed segment-wise over the *elementary intervals*
//! induced by the operand's segment boundaries — never per chronon.

use crate::attribute::Attribute;
use crate::errors::{HrdmError, Result};
use crate::relation::Relation;
use crate::temporal::TemporalValue;
use crate::value::Value;
use hrdm_time::{Chronon, Interval};
use std::fmt;

/// An aggregate operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggregateOp {
    /// Number of tuples bearing a value for the attribute (defined on the
    /// whole relation lifespan; zero where nobody bears a value).
    Count,
    /// Sum of the defined values (numeric domains only).
    Sum,
    /// Minimum of the defined values.
    Min,
    /// Maximum of the defined values.
    Max,
    /// Arithmetic mean of the defined values (always a float).
    Avg,
}

impl fmt::Display for AggregateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggregateOp::Count => "COUNT",
            AggregateOp::Sum => "SUM",
            AggregateOp::Min => "MIN",
            AggregateOp::Max => "MAX",
            AggregateOp::Avg => "AVG",
        })
    }
}

/// Computes the time-varying aggregate of `attr` over `r`.
///
/// The result is defined:
/// * for `Count` — on all of `LS(r)` (zero where no tuple bears a value),
/// * otherwise — exactly where at least one tuple bears a value.
pub fn aggregate_over_time(
    r: &Relation,
    attr: &Attribute,
    op: AggregateOp,
) -> Result<TemporalValue> {
    let dom = r.scheme().dom(attr)?;
    if matches!(op, AggregateOp::Sum | AggregateOp::Avg)
        && !matches!(
            dom.kind(),
            crate::domain::ValueKind::Int | crate::domain::ValueKind::Float
        )
    {
        return Err(HrdmError::IncomparableValues {
            left: crate::domain::ValueKind::Float,
            right: dom.kind(),
        });
    }

    // Elementary intervals: between consecutive boundaries nothing changes.
    // Boundaries: every segment start, and every position just after a
    // segment end; plus the relation-lifespan run edges for Count.
    let mut bounds: Vec<Chronon> = Vec::new();
    for t in r.iter() {
        if let Some(tv) = t.value(attr) {
            for (iv, _) in tv.segments() {
                bounds.push(iv.lo());
                if let Some(after) = iv.hi().succ() {
                    bounds.push(after);
                }
            }
        }
        if matches!(op, AggregateOp::Count) {
            for run in t.lifespan().intervals() {
                bounds.push(run.lo());
                if let Some(after) = run.hi().succ() {
                    bounds.push(after);
                }
            }
        }
    }
    bounds.sort_unstable();
    bounds.dedup();

    let ls = r.lifespan();
    let mut segments: Vec<(Interval, Value)> = Vec::new();
    for (i, &lo) in bounds.iter().enumerate() {
        let hi = match bounds.get(i + 1) {
            Some(next) => next.saturating_pred(),
            None => break, // last boundary starts nothing
        };
        let Some(cell) = Interval::new(lo, hi) else {
            continue;
        };
        // Everything is constant on `cell`; evaluate at its start.
        let values: Vec<&Value> = r.iter().filter_map(|t| t.at(attr, lo)).collect();
        let out = match op {
            AggregateOp::Count => Some(Value::Int(values.len() as i64)),
            _ if values.is_empty() => None,
            AggregateOp::Sum => Some(numeric_sum(&values)?),
            AggregateOp::Avg => {
                let sum = to_f64(&numeric_sum(&values)?);
                Some(Value::float(sum / values.len() as f64)?)
            }
            AggregateOp::Min => {
                let mut best = values[0];
                for v in &values[1..] {
                    if v.try_cmp(best)? == std::cmp::Ordering::Less {
                        best = v;
                    }
                }
                Some(best.clone())
            }
            AggregateOp::Max => {
                let mut best = values[0];
                for v in &values[1..] {
                    if v.try_cmp(best)? == std::cmp::Ordering::Greater {
                        best = v;
                    }
                }
                Some(best.clone())
            }
        };
        if let Some(v) = out {
            // Count is clipped to LS(r); the others follow definedness.
            if matches!(op, AggregateOp::Count) {
                for run in ls.clamp(cell).intervals() {
                    segments.push((*run, v.clone()));
                }
            } else {
                segments.push((cell, v));
            }
        }
    }
    TemporalValue::from_segments(segments)
}

fn numeric_sum(values: &[&Value]) -> Result<Value> {
    let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
    if all_int {
        let mut acc = 0i64;
        for v in values {
            if let Value::Int(i) = v {
                acc = acc.saturating_add(*i);
            }
        }
        Ok(Value::Int(acc))
    } else {
        let mut acc = 0f64;
        for v in values {
            acc += to_f64(v);
        }
        Value::float(acc)
    }
}

fn to_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => f.get(),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::scheme::Scheme;
    use crate::tuple::Tuple;
    use hrdm_time::Lifespan;

    fn scheme() -> Scheme {
        let era = Lifespan::interval(0, 100);
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, era.clone())
            .attr("SALARY", HistoricalDomain::int(), era)
            .build()
            .unwrap()
    }

    fn emp(name: &str, history: &[(i64, i64, i64)]) -> Tuple {
        let life =
            Lifespan::from_intervals(history.iter().map(|&(lo, hi, _)| Interval::of(lo, hi)));
        Tuple::builder(life)
            .constant("NAME", name)
            .value(
                "SALARY",
                TemporalValue::of(
                    &history
                        .iter()
                        .map(|&(lo, hi, v)| (lo, hi, Value::Int(v)))
                        .collect::<Vec<_>>(),
                ),
            )
            .finish(&scheme())
            .unwrap()
    }

    fn rel() -> Relation {
        Relation::with_tuples(
            scheme(),
            vec![
                emp("John", &[(0, 9, 10), (10, 19, 20)]),
                emp("Mary", &[(5, 24, 30)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_is_the_time_varying_headcount() {
        let count = aggregate_over_time(&rel(), &"SALARY".into(), AggregateOp::Count).unwrap();
        assert_eq!(count.at(Chronon::new(2)), Some(&Value::Int(1)));
        assert_eq!(count.at(Chronon::new(7)), Some(&Value::Int(2)));
        assert_eq!(count.at(Chronon::new(22)), Some(&Value::Int(1)));
        assert_eq!(count.at(Chronon::new(50)), None); // outside LS(r)
                                                      // Count is defined on all of LS(r).
        assert_eq!(count.domain(), rel().lifespan());
    }

    #[test]
    fn count_reports_zero_inside_ls_gaps_of_definedness() {
        // A tuple alive but with an undefined salary stretch: count drops
        // to 0 there, not undefined, because the tuple keeps LS(r) alive.
        let scheme = scheme();
        let t = Tuple::builder(Lifespan::interval(0, 20))
            .constant("NAME", "Gap")
            .value(
                "SALARY",
                TemporalValue::of(&[(0, 5, Value::Int(1)), (15, 20, Value::Int(2))]),
            )
            .finish(&scheme)
            .unwrap();
        let r = Relation::with_tuples(scheme, vec![t]).unwrap();
        let count = aggregate_over_time(&r, &"SALARY".into(), AggregateOp::Count).unwrap();
        assert_eq!(count.at(Chronon::new(10)), Some(&Value::Int(0)));
        assert_eq!(count.at(Chronon::new(3)), Some(&Value::Int(1)));
    }

    #[test]
    fn sum_tracks_changes_of_both_operands() {
        let sum = aggregate_over_time(&rel(), &"SALARY".into(), AggregateOp::Sum).unwrap();
        assert_eq!(sum.at(Chronon::new(2)), Some(&Value::Int(10)));
        assert_eq!(sum.at(Chronon::new(7)), Some(&Value::Int(40)));
        assert_eq!(sum.at(Chronon::new(12)), Some(&Value::Int(50)));
        assert_eq!(sum.at(Chronon::new(22)), Some(&Value::Int(30)));
        // Sum is only defined where someone bears a value.
        assert_eq!(sum.domain(), Lifespan::interval(0, 24));
    }

    #[test]
    fn min_max_avg() {
        let r = rel();
        let min = aggregate_over_time(&r, &"SALARY".into(), AggregateOp::Min).unwrap();
        let max = aggregate_over_time(&r, &"SALARY".into(), AggregateOp::Max).unwrap();
        let avg = aggregate_over_time(&r, &"SALARY".into(), AggregateOp::Avg).unwrap();
        assert_eq!(min.at(Chronon::new(7)), Some(&Value::Int(10)));
        assert_eq!(max.at(Chronon::new(7)), Some(&Value::Int(30)));
        assert_eq!(avg.at(Chronon::new(7)), Some(&Value::float(20.0).unwrap()));
        assert_eq!(avg.at(Chronon::new(12)), Some(&Value::float(25.0).unwrap()));
    }

    #[test]
    fn aggregate_matches_pointwise_model() {
        // Cross-check every op against brute-force per-chronon evaluation.
        let r = rel();
        for op in [
            AggregateOp::Count,
            AggregateOp::Sum,
            AggregateOp::Min,
            AggregateOp::Max,
        ] {
            let agg = aggregate_over_time(&r, &"SALARY".into(), op).unwrap();
            for s in 0..=30i64 {
                let s = Chronon::new(s);
                let alive: Vec<i64> = r
                    .iter()
                    .filter_map(|t| t.at(&"SALARY".into(), s))
                    .map(|v| match v {
                        Value::Int(i) => *i,
                        _ => unreachable!(),
                    })
                    .collect();
                let want = match op {
                    AggregateOp::Count => {
                        if r.lifespan().contains(s) {
                            Some(Value::Int(alive.len() as i64))
                        } else {
                            None
                        }
                    }
                    _ if alive.is_empty() => None,
                    AggregateOp::Sum => Some(Value::Int(alive.iter().sum())),
                    AggregateOp::Min => alive.iter().min().map(|&v| Value::Int(v)),
                    AggregateOp::Max => alive.iter().max().map(|&v| Value::Int(v)),
                    AggregateOp::Avg => unreachable!(),
                };
                assert_eq!(agg.at(s).cloned(), want, "{op} at {s:?}");
            }
        }
    }

    #[test]
    fn sum_rejects_non_numeric() {
        let err = aggregate_over_time(&rel(), &"NAME".into(), AggregateOp::Sum).unwrap_err();
        assert!(matches!(err, HrdmError::IncomparableValues { .. }));
        // Min/Max on strings are fine (ordered domain).
        assert!(aggregate_over_time(&rel(), &"NAME".into(), AggregateOp::Min).is_ok());
    }

    #[test]
    fn empty_relation_aggregates_to_empty() {
        let r = Relation::new(scheme());
        for op in [AggregateOp::Count, AggregateOp::Sum, AggregateOp::Avg] {
            assert!(aggregate_over_time(&r, &"SALARY".into(), op)
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn unknown_attribute_errors() {
        assert!(aggregate_over_time(&rel(), &"NOPE".into(), AggregateOp::Count).is_err());
    }
}
