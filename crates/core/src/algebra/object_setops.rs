//! The object-based set operators `∪ₒ`, `∩ₒ`, `−ₒ` (paper §4.1).
//!
//! Fig. 11 of the paper shows that the plain tuple-set union of two
//! historical relations is "counter-intuitive": the same real-world object
//! can appear as two separate tuples, one per operand. The object-based
//! operators instead *merge* the tuples of corresponding objects:
//! merge-compatible schemes (same attributes, domains, **and key**), tuples
//! *mergable* when they share a key value and nowhere contradict each other.

use crate::errors::{HrdmError, Result};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

fn require_merge_compatible(r1: &Relation, r2: &Relation) -> Result<()> {
    if r1.scheme().merge_compatible(r2.scheme()) {
        Ok(())
    } else {
        Err(HrdmError::NotMergeCompatible)
    }
}

/// Key-indexed view of a relation's tuples; tuples without a key value (or
/// in keyless schemes) are unindexable and treated as matching nothing.
fn key_index(r: &Relation) -> HashMap<Vec<Value>, &Tuple> {
    let mut idx = HashMap::with_capacity(r.len());
    for t in r.iter() {
        if let Ok(k) = t.key_values(r.scheme()) {
            idx.insert(k, t);
        }
    }
    idx
}

/// `r1 ∪ₒ r2` — the object-based union (paper §4.1, the Fig. 11 `r1 + r2`):
///
/// * tuples of `r1` not matched in `r2` pass through,
/// * tuples of `r2` not matched in `r1` pass through,
/// * every mergable pair contributes its merge `t1 + t2`.
///
/// (The paper's text reads "t ∈ r2 and t is not matched in r2"; matching a
/// relation against itself is vacuous, so we read it as the evident typo for
/// `r1`.)
pub fn union_o(r1: &Relation, r2: &Relation) -> Result<Relation> {
    require_merge_compatible(r1, r2)?;
    let scheme = r1.scheme().combine_als(r2.scheme(), |a, b| a.union(b));
    let idx2 = key_index(r2);
    let idx1 = key_index(r1);
    let mut out: Vec<Tuple> = Vec::with_capacity(r1.len() + r2.len());
    for t1 in r1.iter() {
        if let Some(t2) = find_mergable(t1, r2, &idx2) {
            out.push(t1.merge(t2)?);
        } else {
            out.push(t1.clone());
        }
    }
    for t2 in r2.iter() {
        if find_mergable(t2, r1, &idx1).is_none() {
            out.push(t2.clone());
        }
    }
    Ok(Relation::from_parts_unchecked(scheme, out))
}

/// `r1 ∩ₒ r2` — the object-based intersection: for each mergable pair, a
/// tuple over `t1.l ∩ t2.l` carrying the values the two agree on.
///
/// The paper's set-builder demands `t1.v(A)(s) = t2.v(A)(s) = t.v(A)(s)` for
/// all `s ∈ t.l`; where attribute lifespans make one side undefined at some
/// `s`, we take the function intersection (defined where **both** sides are
/// defined and equal), which coincides with the paper's condition whenever
/// values are total on the lifespan intersection. Pairs whose lifespan
/// intersection is empty contribute nothing (an information-free tuple).
pub fn intersection_o(r1: &Relation, r2: &Relation) -> Result<Relation> {
    require_merge_compatible(r1, r2)?;
    let scheme = r1.scheme().combine_als(r2.scheme(), |a, b| a.intersect(b));
    let idx2 = key_index(r2);
    let mut out = Vec::new();
    for t1 in r1.iter() {
        let Some(t2) = find_mergable(t1, r2, &idx2) else {
            continue;
        };
        let l = t1.lifespan().intersect(t2.lifespan());
        if l.is_empty() {
            continue;
        }
        // Mergable tuples agree wherever both are defined, so restricting
        // the merge to the lifespan intersection is exactly the common part.
        let merged = t1.merge(t2)?;
        out.push(merged.restrict(&l));
    }
    Ok(Relation::from_parts_unchecked(scheme, out))
}

/// `r1 −ₒ r2` — the object-based difference:
///
/// * tuples of `r1` not matched in `r2` pass through,
/// * for each mergable pair, `t1` survives on `t1.l − t2.l` with its values
///   restricted (`t.v(A) = t1.v(A)|_{t.l}`).
pub fn difference_o(r1: &Relation, r2: &Relation) -> Result<Relation> {
    require_merge_compatible(r1, r2)?;
    let idx2 = key_index(r2);
    let mut out = Vec::new();
    for t1 in r1.iter() {
        match find_mergable(t1, r2, &idx2) {
            None => out.push(t1.clone()),
            Some(t2) => {
                let l = t1.lifespan().difference(t2.lifespan());
                if !l.is_empty() {
                    out.push(t1.restrict(&l));
                }
            }
        }
    }
    Ok(Relation::from_parts_unchecked(r1.scheme().clone(), out))
}

/// Finds the tuple of `r` this tuple is mergable with, if any.
///
/// In a key-respecting relation at most one tuple can share the key, so the
/// key index resolves the candidate in O(1); the full mergability test
/// (value compatibility) then runs on that single candidate. Relations with
/// empty keys fall back to a linear scan, matching the paper's definition
/// ("there is *some* tuple t' in S").
fn find_mergable<'a>(
    t: &Tuple,
    r: &'a Relation,
    idx: &HashMap<Vec<Value>, &'a Tuple>,
) -> Option<&'a Tuple> {
    if r.scheme().key().is_empty() {
        return r.iter().find(|cand| t.mergable(cand, r.scheme()));
    }
    let key = t.key_values(r.scheme()).ok()?;
    let cand = idx.get(&key)?;
    if t.mergable(cand, r.scheme()) {
        Some(cand)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::setops::union;
    use crate::domain::ValueKind;
    use crate::scheme::Scheme;
    use crate::temporal::TemporalValue;
    use crate::HistoricalDomain;
    use hrdm_time::{Chronon, Lifespan};

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("K", ValueKind::Str, Lifespan::interval(0, 100))
            .attr("V", HistoricalDomain::int(), Lifespan::interval(0, 100))
            .build()
            .unwrap()
    }

    fn tup(k: &str, spans: &[(i64, i64)], v: i64) -> Tuple {
        let s = scheme();
        let life = Lifespan::of(spans);
        Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(v)))
            .finish(&s)
            .unwrap()
    }

    fn rel(tuples: Vec<Tuple>) -> Relation {
        Relation::with_tuples(scheme(), tuples).unwrap()
    }

    #[test]
    fn figure_11_union_vs_object_union() {
        // r1 knows object "a" on [0,5]; r2 knows "a" on [10,15].
        let r1 = rel(vec![tup("a", &[(0, 5)], 1)]);
        let r2 = rel(vec![tup("a", &[(10, 15)], 2)]);

        // Plain union: two tuples for one object — counter-intuitive.
        let plain = union(&r1, &r2).unwrap();
        assert_eq!(plain.len(), 2);
        assert!(plain.check_key_constraint().is_err());

        // Object union: one merged tuple with the full history.
        let merged = union_o(&r1, &r2).unwrap();
        assert_eq!(merged.len(), 1);
        assert!(merged.check_key_constraint().is_ok());
        let t = &merged.tuples()[0];
        assert_eq!(t.lifespan(), &Lifespan::of(&[(0, 5), (10, 15)]));
        assert_eq!(t.at(&"V".into(), Chronon::new(3)), Some(&Value::Int(1)));
        assert_eq!(t.at(&"V".into(), Chronon::new(12)), Some(&Value::Int(2)));
    }

    #[test]
    fn union_o_passes_unmatched_through() {
        let r1 = rel(vec![tup("a", &[(0, 5)], 1), tup("b", &[(0, 5)], 9)]);
        let r2 = rel(vec![tup("a", &[(10, 15)], 2), tup("c", &[(0, 5)], 7)]);
        let u = union_o(&r1, &r2).unwrap();
        assert_eq!(u.len(), 3); // a merged, b and c passed through
        assert!(u.find_by_key(&[Value::str("b")]).is_some());
        assert!(u.find_by_key(&[Value::str("c")]).is_some());
    }

    #[test]
    fn union_o_keeps_contradicting_tuples_separate() {
        // Same key, overlapping lifespans, different values: not mergable,
        // so both pass through (and the result violates the key constraint,
        // faithfully to the definition).
        let r1 = rel(vec![tup("a", &[(0, 5)], 1)]);
        let r2 = rel(vec![tup("a", &[(3, 8)], 2)]);
        let u = union_o(&r1, &r2).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.check_key_constraint().is_err());
    }

    #[test]
    fn intersection_o_keeps_agreed_overlap() {
        let r1 = rel(vec![tup("a", &[(0, 10)], 1)]);
        let r2 = rel(vec![tup("a", &[(5, 20)], 1)]);
        let i = intersection_o(&r1, &r2).unwrap();
        assert_eq!(i.len(), 1);
        let t = &i.tuples()[0];
        assert_eq!(t.lifespan(), &Lifespan::interval(5, 10));
        assert_eq!(t.at(&"V".into(), Chronon::new(7)), Some(&Value::Int(1)));
    }

    #[test]
    fn intersection_o_drops_disjoint_and_unmatched() {
        let r1 = rel(vec![tup("a", &[(0, 5)], 1), tup("b", &[(0, 5)], 2)]);
        let r2 = rel(vec![tup("a", &[(10, 15)], 1)]); // disjoint lifespans
        let i = intersection_o(&r1, &r2).unwrap();
        assert!(i.is_empty());
    }

    #[test]
    fn difference_o_subtracts_lifespans() {
        let r1 = rel(vec![tup("a", &[(0, 10)], 1)]);
        let r2 = rel(vec![tup("a", &[(4, 6)], 1)]);
        let d = difference_o(&r1, &r2).unwrap();
        assert_eq!(d.len(), 1);
        let t = &d.tuples()[0];
        assert_eq!(t.lifespan(), &Lifespan::of(&[(0, 3), (7, 10)]));
        // Values restricted to the surviving lifespan.
        assert_eq!(t.at(&"V".into(), Chronon::new(5)), None);
        assert_eq!(t.at(&"V".into(), Chronon::new(8)), Some(&Value::Int(1)));
    }

    #[test]
    fn difference_o_passes_unmatched_and_drops_consumed() {
        let r1 = rel(vec![tup("a", &[(0, 10)], 1), tup("b", &[(0, 10)], 2)]);
        let r2 = rel(vec![tup("a", &[(0, 10)], 1)]);
        let d = difference_o(&r1, &r2).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.find_by_key(&[Value::str("b")]).is_some());
    }

    #[test]
    fn merge_compatibility_required() {
        let other = Scheme::builder()
            .key_attr("K", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "V",
                HistoricalDomain::constant(ValueKind::Int),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap();
        let r1 = rel(vec![]);
        let r2 = Relation::new(other);
        assert_eq!(
            union_o(&r1, &r2).unwrap_err(),
            HrdmError::NotMergeCompatible
        );
        assert!(intersection_o(&r1, &r2).is_err());
        assert!(difference_o(&r1, &r2).is_err());
    }

    #[test]
    fn object_ops_reduce_to_plain_ops_on_disjoint_keys() {
        // With no shared objects, ∪ₒ behaves like ∪ on tuple sets.
        let r1 = rel(vec![tup("a", &[(0, 5)], 1)]);
        let r2 = rel(vec![tup("b", &[(3, 8)], 2)]);
        let uo = union_o(&r1, &r2).unwrap();
        let u = union(&r1, &r2).unwrap();
        assert_eq!(uo, u);
        assert!(intersection_o(&r1, &r2).unwrap().is_empty());
        assert_eq!(difference_o(&r1, &r2).unwrap(), r1);
    }
}
