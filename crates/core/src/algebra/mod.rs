//! The historical relational algebra of HRDM (paper §4).
//!
//! The temporal dimension makes the model three-dimensional (paper Fig. 10):
//! SELECT reduces along values, PROJECT along attributes, and the new
//! TIME-SLICE along time; WHEN (Ω) escapes into the lifespan sort; the JOINs
//! and set operators combine relations. Operator inventory:
//!
//! | Paper operator | Function |
//! |---|---|
//! | `∪`, `∩`, `−` | [`setops::union`], [`setops::intersection`], [`setops::difference`] |
//! | `×` | [`product::cartesian_product`] |
//! | `∪ₒ`, `∩ₒ`, `−ₒ` | [`object_setops::union_o`], [`object_setops::intersection_o`], [`object_setops::difference_o`] |
//! | `π_X` | [`project::project`] |
//! | `σ-IF(θ, Q, L)` | [`select::select_if`] |
//! | `σ-WHEN(θ)` | [`select::select_when`] |
//! | `τ_L` (static) | [`timeslice::timeslice`] |
//! | `τ@A` (dynamic) | [`timeslice::timeslice_dynamic`] |
//! | `Ω` | [`when::when`] |
//! | `JOIN [A θ B]` | [`join::theta_join`] |
//! | `[A = B]` | [`join::equijoin`] |
//! | `NATURAL-JOIN` | [`join::natural_join`] |
//! | `[@A]` | [`join::time_join`] |
//! | §5 union-join | [`join::theta_join_union`] |

pub mod aggregate;
pub mod join;
pub mod object_setops;
pub mod predicate;
pub mod product;
pub mod project;
pub mod select;
pub mod setops;
pub mod timeslice;
pub mod when;

pub use aggregate::{aggregate_over_time, AggregateOp};
pub use join::{
    equijoin, natural_join, natural_join_pair, theta_join, theta_join_union, time_join,
    time_join_pair,
};
pub use object_setops::{difference_o, intersection_o, union_o};
pub use predicate::{Comparator, Operand, Predicate};
pub use product::{cartesian_product, null_volume};
pub use project::project;
pub use select::{select_if, select_when, Quantifier};
pub use setops::{difference, intersection, union};
pub use timeslice::{timeslice, timeslice_dynamic};
pub use when::when;
