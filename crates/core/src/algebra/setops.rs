//! The standard set-theoretic operators `∪`, `∩`, `−` over historical
//! relations (paper §4.1).
//!
//! "Historical relations, like regular relations, are sets of tuples;
//! therefore the standard set-theoretic operations … can be defined over
//! them." The paper then immediately shows (Fig. 11) that these operators
//! produce counter-intuitive results for historical relations — a union can
//! contain two tuples describing the same object — which motivates the
//! object-based variants in [`crate::algebra::object_setops`]. Both families
//! are provided; the plain ones below are the faithful baseline.

use crate::errors::{HrdmError, Result};
use crate::relation::Relation;
use std::collections::HashSet;

fn require_union_compatible(r1: &Relation, r2: &Relation) -> Result<()> {
    if r1.scheme().union_compatible(r2.scheme()) {
        Ok(())
    } else {
        Err(HrdmError::NotUnionCompatible)
    }
}

/// `r1 ∪ r2` — tuple-set union of union-compatible relations. The result
/// scheme is `<A1, K1, ALS1 ∪ ALS2, DOM1>` (paper §4.1, def. 1).
///
/// Note the result may violate the key constraint: the same object can
/// contribute distinct tuples from each operand (paper Fig. 11's
/// "counter-intuitive" union).
pub fn union(r1: &Relation, r2: &Relation) -> Result<Relation> {
    require_union_compatible(r1, r2)?;
    let scheme = r1.scheme().combine_als(r2.scheme(), |a, b| a.union(b));
    Ok(Relation::from_parts_unchecked(
        scheme,
        r1.iter().chain(r2.iter()).cloned(),
    ))
}

/// `r1 ∩ r2` — tuples present (identically) in both operands. The result
/// scheme is `<A1, K1, ALS1 ∩ ALS2, DOM1>` (paper §4.1, def. 2).
pub fn intersection(r1: &Relation, r2: &Relation) -> Result<Relation> {
    require_union_compatible(r1, r2)?;
    let scheme = r1.scheme().combine_als(r2.scheme(), |a, b| a.intersect(b));
    let theirs: HashSet<_> = r2.iter().collect();
    Ok(Relation::from_parts_unchecked(
        scheme,
        r1.iter().filter(|t| theirs.contains(t)).cloned(),
    ))
}

/// `r1 − r2` — tuples of `r1` not present (identically) in `r2`. The result
/// keeps scheme `R1` (paper §4.1, def. 3).
pub fn difference(r1: &Relation, r2: &Relation) -> Result<Relation> {
    require_union_compatible(r1, r2)?;
    let theirs: HashSet<_> = r2.iter().collect();
    Ok(Relation::from_parts_unchecked(
        r1.scheme().clone(),
        r1.iter().filter(|t| !theirs.contains(t)).cloned(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ValueKind;
    use crate::scheme::Scheme;
    use crate::temporal::TemporalValue;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use crate::HistoricalDomain;
    use hrdm_time::Lifespan;

    fn scheme(als: (i64, i64)) -> Scheme {
        Scheme::builder()
            .key_attr("K", ValueKind::Str, Lifespan::interval(als.0, als.1))
            .attr(
                "V",
                HistoricalDomain::int(),
                Lifespan::interval(als.0, als.1),
            )
            .build()
            .unwrap()
    }

    fn tup(s: &Scheme, k: &str, spans: &[(i64, i64)], v: i64) -> Tuple {
        let life = Lifespan::of(spans);
        Tuple::builder(life.clone())
            .constant("K", k)
            .value("V", TemporalValue::constant(&life, Value::Int(v)))
            .finish(s)
            .unwrap()
    }

    #[test]
    fn union_merges_tuple_sets_and_als() {
        let s1 = scheme((0, 10));
        let s2 = scheme((20, 30));
        let r1 = Relation::with_tuples(s1.clone(), vec![tup(&s1, "a", &[(0, 5)], 1)]).unwrap();
        let r2 = Relation::with_tuples(s2.clone(), vec![tup(&s2, "b", &[(20, 25)], 2)]).unwrap();
        let u = union(&r1, &r2).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(
            u.scheme().als(&"K".into()).unwrap(),
            &Lifespan::of(&[(0, 10), (20, 30)])
        );
    }

    #[test]
    fn union_dedupes_identical_tuples() {
        let s = scheme((0, 10));
        let t = tup(&s, "a", &[(0, 5)], 1);
        let r1 = Relation::with_tuples(s.clone(), vec![t.clone()]).unwrap();
        let r2 = Relation::with_tuples(s.clone(), vec![t]).unwrap();
        assert_eq!(union(&r1, &r2).unwrap().len(), 1);
    }

    #[test]
    fn union_can_violate_key_constraint_like_fig_11() {
        // Same object "a" with different histories in the two operands: the
        // plain union keeps both tuples — the paper's Fig. 11 situation.
        let s = scheme((0, 30));
        let r1 = Relation::with_tuples(s.clone(), vec![tup(&s, "a", &[(0, 5)], 1)]).unwrap();
        let r2 = Relation::with_tuples(s.clone(), vec![tup(&s, "a", &[(10, 15)], 2)]).unwrap();
        let u = union(&r1, &r2).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.check_key_constraint().is_err());
    }

    #[test]
    fn intersection_requires_identical_tuples() {
        let s = scheme((0, 30));
        let shared = tup(&s, "a", &[(0, 5)], 1);
        let r1 = Relation::with_tuples(s.clone(), vec![shared.clone(), tup(&s, "b", &[(6, 9)], 2)])
            .unwrap();
        let r2 = Relation::with_tuples(s.clone(), vec![shared.clone(), tup(&s, "c", &[(6, 9)], 3)])
            .unwrap();
        let i = intersection(&r1, &r2).unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.contains_tuple(&shared));
    }

    #[test]
    fn intersection_intersects_als() {
        let s1 = scheme((0, 20));
        let s2 = scheme((10, 30));
        let r1 = Relation::new(s1);
        let r2 = Relation::new(s2);
        let i = intersection(&r1, &r2).unwrap();
        assert_eq!(
            i.scheme().als(&"V".into()).unwrap(),
            &Lifespan::interval(10, 20)
        );
    }

    #[test]
    fn difference_keeps_r1_scheme() {
        let s = scheme((0, 30));
        let shared = tup(&s, "a", &[(0, 5)], 1);
        let only_mine = tup(&s, "b", &[(6, 9)], 2);
        let r1 = Relation::with_tuples(s.clone(), vec![shared.clone(), only_mine.clone()]).unwrap();
        let r2 = Relation::with_tuples(s.clone(), vec![shared]).unwrap();
        let d = difference(&r1, &r2).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains_tuple(&only_mine));
        assert_eq!(d.scheme(), r1.scheme());
    }

    #[test]
    fn incompatible_schemes_rejected() {
        let a = scheme((0, 10));
        let b = Scheme::builder()
            .key_attr("K", ValueKind::Str, Lifespan::interval(0, 10))
            .attr("W", HistoricalDomain::int(), Lifespan::interval(0, 10))
            .build()
            .unwrap();
        let err = union(&Relation::new(a.clone()), &Relation::new(b.clone())).unwrap_err();
        assert_eq!(err, HrdmError::NotUnionCompatible);
        assert!(intersection(&Relation::new(a.clone()), &Relation::new(b.clone())).is_err());
        assert!(difference(&Relation::new(a), &Relation::new(b)).is_err());
    }

    #[test]
    fn set_identities() {
        let s = scheme((0, 30));
        let r = Relation::with_tuples(
            s.clone(),
            vec![tup(&s, "a", &[(0, 5)], 1), tup(&s, "b", &[(6, 9)], 2)],
        )
        .unwrap();
        let empty = Relation::new(s.clone());
        // r ∪ ∅ = r (tuple sets; scheme ALS unchanged since both equal here)
        assert_eq!(union(&r, &empty).unwrap().tuples().len(), 2);
        // r − r = ∅
        assert!(difference(&r, &r).unwrap().is_empty());
        // r ∩ r = r
        assert_eq!(intersection(&r, &r).unwrap(), r);
        // union commutes on tuple sets
        let ab = union(&r, &empty).unwrap();
        let ba = union(&empty, &r).unwrap();
        let a_set: std::collections::HashSet<_> = ab.iter().collect();
        let b_set: std::collections::HashSet<_> = ba.iter().collect();
        assert_eq!(a_set, b_set);
    }
}
