//! SELECT — the two "flavors" of historical selection (paper §4.3).
//!
//! Because tuples have lifespans, selection has a choice the classical
//! operator never faced: select **whole objects** whose history satisfies
//! the criterion somewhere/everywhere (SELECT-IF), or cut each object down
//! to **exactly the times** the criterion holds (SELECT-WHEN).

use crate::algebra::predicate::Predicate;
use crate::errors::Result;
use crate::relation::Relation;
use hrdm_time::Lifespan;

/// The bounded quantifier `Q` of SELECT-IF: `∃` or `∀` over `L ∩ t.l`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Quantifier {
    /// `∃ s ∈ (L ∩ t.l)` — the criterion holds at some relevant time.
    Exists,
    /// `∀ s ∈ (L ∩ t.l)` — the criterion holds at every relevant time.
    Forall,
}

impl std::fmt::Display for Quantifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Quantifier::Exists => "exists",
            Quantifier::Forall => "forall",
        })
    }
}

/// `σ-IF(θ, Q, L)(r)` (paper §4.3):
///
/// ```text
/// σ-IF(A θ a, Q, L)(r) = { t ∈ r | Q (s ∈ (L ∩ t.l)) [ t(A)(s) θ a ] }
/// ```
///
/// Selected tuples are returned **whole** — "a complete object either is or
/// is not selected", with its lifespan unchanged. Pass `None` for `L` to
/// quantify over the entire lifespan (`L = T`, so `L ∩ t.l = t.l`).
///
/// Semantics at undefined points: the criterion *holds* at `s` only when all
/// referenced attributes are defined at `s` and the comparison is true. Under
/// `Forall` the quantification domain `L ∩ t.l` may be empty, in which case
/// the condition is vacuously true — standard bounded-quantifier reading.
pub fn select_if(
    r: &Relation,
    pred: &Predicate,
    q: Quantifier,
    l: Option<&Lifespan>,
) -> Result<Relation> {
    pred.typecheck(r.scheme())?;
    let mut out = Vec::new();
    for t in r.iter() {
        let domain = match l {
            Some(l) => l.intersect(t.lifespan()),
            None => t.lifespan().clone(),
        };
        let truth = pred.when_true(t)?;
        let selected = match q {
            Quantifier::Exists => domain.intersects(&truth),
            Quantifier::Forall => truth.contains_lifespan(&domain),
        };
        if selected {
            out.push(t.clone());
        }
    }
    Ok(Relation::from_parts_unchecked(r.scheme().clone(), out))
}

/// `σ-WHEN(θ)(r)` (paper §4.3): "if the selection criterion is met by a
/// tuple t at some time in its lifespan, what is returned is a new tuple t'
/// whose lifespan is exactly those points in time WHEN the criterion is met,
/// and whose value is the same as t for those points."
///
/// A hybrid operator: it reduces the relation in both the value and the
/// temporal dimension. Tuples whose criterion never holds vanish.
pub fn select_when(r: &Relation, pred: &Predicate) -> Result<Relation> {
    pred.typecheck(r.scheme())?;
    let mut out = Vec::new();
    for t in r.iter() {
        let truth = pred.when_true(t)?;
        if !truth.is_empty() {
            out.push(t.restrict(&truth));
        }
    }
    Ok(Relation::from_parts_unchecked(r.scheme().clone(), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::predicate::{Comparator, Predicate};
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::scheme::Scheme;
    use crate::temporal::TemporalValue;
    use crate::tuple::Tuple;
    use crate::value::Value;
    use hrdm_time::{Chronon, Lifespan};

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn emp(name: &str, history: &[(i64, i64, i64)]) -> Tuple {
        let life = Lifespan::from_intervals(
            history
                .iter()
                .map(|&(lo, hi, _)| hrdm_time::Interval::of(lo, hi)),
        );
        Tuple::builder(life)
            .constant("NAME", name)
            .value(
                "SALARY",
                TemporalValue::of(
                    &history
                        .iter()
                        .map(|&(lo, hi, v)| (lo, hi, Value::Int(v)))
                        .collect::<Vec<_>>(),
                ),
            )
            .finish(&scheme())
            .unwrap()
    }

    fn emps() -> Relation {
        Relation::with_tuples(
            scheme(),
            vec![
                emp("John", &[(0, 9, 25_000), (10, 19, 30_000)]),
                emp("Mary", &[(0, 19, 30_000)]),
                emp("Igor", &[(5, 14, 20_000)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_if_exists_keeps_whole_tuples() {
        let r = emps();
        let p = Predicate::eq_value("SALARY", 30_000i64);
        let out = select_if(&r, &p, Quantifier::Exists, None).unwrap();
        assert_eq!(out.len(), 2); // John (eventually) and Mary
                                  // John's tuple is intact, lifespan unchanged.
        let john = out.find_by_key(&[Value::str("John")]).unwrap();
        assert_eq!(john.lifespan(), &Lifespan::interval(0, 19));
        assert_eq!(
            john.at(&"SALARY".into(), Chronon::new(3)),
            Some(&Value::Int(25_000))
        );
    }

    #[test]
    fn select_if_forall_requires_whole_history() {
        let r = emps();
        let p = Predicate::eq_value("SALARY", 30_000i64);
        let out = select_if(&r, &p, Quantifier::Forall, None).unwrap();
        assert_eq!(out.len(), 1); // only Mary earned 30K throughout
        assert!(out.find_by_key(&[Value::str("Mary")]).is_some());
    }

    #[test]
    fn select_if_bounded_by_lifespan_parameter() {
        let r = emps();
        let p = Predicate::eq_value("SALARY", 30_000i64);
        // Within [10,19] John also always earned 30K.
        let window = Lifespan::interval(10, 19);
        let out = select_if(&r, &p, Quantifier::Forall, Some(&window)).unwrap();
        assert_eq!(out.len(), 2);
        // Igor's lifespan ∩ window = [10,14], where he earned 20K → excluded.
        assert!(out.find_by_key(&[Value::str("Igor")]).is_none());
    }

    #[test]
    fn select_if_forall_vacuous_on_empty_domain() {
        let r = emps();
        let p = Predicate::eq_value("SALARY", 1i64);
        // Window disjoint from everyone's lifespan: ∀ over ∅ is true.
        let window = Lifespan::interval(50, 60);
        let out = select_if(&r, &p, Quantifier::Forall, Some(&window)).unwrap();
        assert_eq!(out.len(), 3);
        // …while ∃ over ∅ is false.
        let out = select_if(&r, &p, Quantifier::Exists, Some(&window)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn select_when_restricts_lifespans() {
        // The paper's example: σ-WHEN(Name=John ∧ Salary=30K)(emp) yields one
        // tuple whose new lifespan is just the times John earned 30K.
        let r = emps();
        let p = Predicate::eq_value("NAME", "John").and(Predicate::eq_value("SALARY", 30_000i64));
        let out = select_when(&r, &p).unwrap();
        assert_eq!(out.len(), 1);
        let t = &out.tuples()[0];
        assert_eq!(t.lifespan(), &Lifespan::interval(10, 19));
        // Values restricted too.
        assert_eq!(t.at(&"SALARY".into(), Chronon::new(5)), None);
        assert_eq!(
            t.at(&"SALARY".into(), Chronon::new(12)),
            Some(&Value::Int(30_000))
        );
    }

    #[test]
    fn select_when_drops_never_satisfied() {
        let r = emps();
        let p = Predicate::eq_value("SALARY", 99i64);
        assert!(select_when(&r, &p).unwrap().is_empty());
    }

    #[test]
    fn select_when_fragments_lifespans() {
        let r = Relation::with_tuples(
            scheme(),
            vec![emp("Yoyo", &[(0, 4, 10), (5, 9, 20), (10, 14, 10)])],
        )
        .unwrap();
        let p = Predicate::eq_value("SALARY", 10i64);
        let out = select_when(&r, &p).unwrap();
        assert_eq!(
            out.tuples()[0].lifespan(),
            &Lifespan::of(&[(0, 4), (10, 14)])
        );
    }

    #[test]
    fn select_typechecks() {
        let r = emps();
        let bad = Predicate::eq_value("SALARY", "text");
        assert!(select_if(&r, &bad, Quantifier::Exists, None).is_err());
        assert!(select_when(&r, &bad).is_err());
    }

    #[test]
    fn select_if_gt_comparator() {
        let r = emps();
        let p = Predicate::attr_op_value("SALARY", Comparator::Gt, 24_000i64);
        let out = select_if(&r, &p, Quantifier::Forall, None).unwrap();
        assert_eq!(out.len(), 2); // John (25K then 30K) and Mary; not Igor
    }
}
