//! # hrdm-core — the Historical Relational Data Model and its algebra
//!
//! A faithful implementation of Clifford & Croker, *The Historical Relational
//! Data Model (HRDM) and Algebra Based on Lifespans* (ICDE 1987).
//!
//! HRDM extends the relational model along a third, temporal dimension:
//!
//! * attribute values are **partial functions from time into value domains**
//!   ([`TemporalValue`]), not atoms;
//! * both tuples and scheme attributes carry **lifespans** — the times the
//!   database models them — and a value exists only on their intersection
//!   `vls(t, A, R) = t.l ∩ ALS(A, R)`;
//! * key attributes are constant-valued, so objects keep their identity
//!   across change, "death", and "reincarnation";
//! * a full algebra ([`algebra`]) extends SELECT/PROJECT/JOIN and the set
//!   operators, and adds TIME-SLICE (temporal reduction), WHEN (into the
//!   lifespan sort), object-based set operators, and TIME-JOIN.
//!
//! ```
//! use hrdm_core::prelude::*;
//!
//! // emp(NAME*, SALARY) over the company's recorded era [0, 100].
//! let era = Lifespan::interval(0, 100);
//! let scheme = Scheme::builder()
//!     .key_attr("NAME", ValueKind::Str, era.clone())
//!     .attr("SALARY", HistoricalDomain::int(), era.clone())
//!     .build()
//!     .unwrap();
//!
//! // John: hired at 0, fired at 9, re-hired at 20 (a lifespan with a gap).
//! let life = Lifespan::of(&[(0, 9), (20, 30)]);
//! let john = Tuple::builder(life.clone())
//!     .constant("NAME", "John")
//!     .value("SALARY", TemporalValue::of(&[
//!         (0, 9, Value::Int(25_000)),
//!         (20, 30, Value::Int(30_000)),
//!     ]))
//!     .finish(&scheme)
//!     .unwrap();
//! let emp = Relation::with_tuples(scheme, vec![john]).unwrap();
//!
//! // "When did John earn 30K?" — σ-WHEN then Ω (paper §4.3/§4.5).
//! let q = Predicate::eq_value("NAME", "John")
//!     .and(Predicate::eq_value("SALARY", 30_000i64));
//! let answer = when(&select_when(&emp, &q).unwrap());
//! assert_eq!(answer, Lifespan::interval(20, 30));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
mod attribute;
pub mod consistency;
pub mod constraints;
mod domain;
mod errors;
mod relation;
mod scheme;
mod temporal;
mod tuple;
mod value;

pub use algebra::predicate;
pub use attribute::Attribute;
pub use domain::{HistoricalDomain, ValueKind};
pub use errors::{HrdmError, Result};
pub use relation::Relation;
pub use scheme::{AttributeDef, Scheme, SchemeBuilder};
pub use temporal::TemporalValue;
pub use tuple::{Tuple, TupleBuilder};
pub use value::{OrderedF64, Value};

/// One-stop imports for examples and downstream code.
pub mod prelude {
    pub use crate::algebra::{
        aggregate_over_time, cartesian_product, difference, difference_o, equijoin, intersection,
        intersection_o, natural_join, null_volume, project, select_if, select_when, theta_join,
        theta_join_union, time_join, timeslice, timeslice_dynamic, union, union_o, when,
        AggregateOp, Comparator, Operand, Predicate, Quantifier,
    };
    pub use crate::constraints::{
        check_key, check_referential, holds_always, holds_pointwise, never_decreases,
        never_increases, TemporalForeignKey,
    };
    pub use crate::{
        Attribute, HistoricalDomain, HrdmError, Relation, Scheme, TemporalValue, Tuple, Value,
        ValueKind,
    };
    pub use hrdm_time::{Chronon, Interval, Lifespan};
}
