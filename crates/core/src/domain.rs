//! Historical domains: the paper's `HD = TD ∪ TT` and the constant subdomain
//! `CD`.

use crate::value::Value;
use std::fmt;

/// The family of a value domain `D_i` (or `T` itself, for time-valued data).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ValueKind {
    /// Integers.
    Int,
    /// Non-NaN floats.
    Float,
    /// Strings.
    Str,
    /// Booleans.
    Bool,
    /// Time points — this is the paper's `TT`: partial functions from `T`
    /// into `T` itself.
    Time,
}

impl ValueKind {
    /// Can values of kind `other` be compared with values of this kind by a
    /// θ predicate? (Same kind, plus Int/Float interoperate.)
    pub fn comparable_with(self, other: ValueKind) -> bool {
        self == other
            || matches!(
                (self, other),
                (ValueKind::Int, ValueKind::Float) | (ValueKind::Float, ValueKind::Int)
            )
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "string",
            ValueKind::Bool => "bool",
            ValueKind::Time => "time",
        };
        f.write_str(s)
    }
}

/// A historical domain: one element of `HD = TD ∪ TT` (paper §3), i.e. the
/// set of partial functions from `T` into one value domain, optionally
/// restricted to the constant-valued subdomain `CD`.
///
/// * `kind` selects the underlying value domain `D_i` (the paper's
///   *value-domain* `VD(A)`), with [`ValueKind::Time`] selecting `TT`.
/// * `constant` restricts to `CD`, "those functions having a constant image"
///   — mandatory for key attributes (scheme restriction (a)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HistoricalDomain {
    kind: ValueKind,
    constant: bool,
}

impl HistoricalDomain {
    /// The domain of partial functions `T → D_kind` (an element of `TD`, or
    /// `TT` when `kind` is [`ValueKind::Time`]).
    pub const fn new(kind: ValueKind) -> HistoricalDomain {
        HistoricalDomain {
            kind,
            constant: false,
        }
    }

    /// The constant-valued restriction (an element of `CD`).
    pub const fn constant(kind: ValueKind) -> HistoricalDomain {
        HistoricalDomain {
            kind,
            constant: true,
        }
    }

    /// Shorthand: time-varying integers.
    pub const fn int() -> HistoricalDomain {
        HistoricalDomain::new(ValueKind::Int)
    }

    /// Shorthand: time-varying floats.
    pub const fn float() -> HistoricalDomain {
        HistoricalDomain::new(ValueKind::Float)
    }

    /// Shorthand: time-varying strings.
    pub const fn string() -> HistoricalDomain {
        HistoricalDomain::new(ValueKind::Str)
    }

    /// Shorthand: time-varying booleans.
    pub const fn boolean() -> HistoricalDomain {
        HistoricalDomain::new(ValueKind::Bool)
    }

    /// Shorthand: time-valued attributes (`DOM(A) ⊆ TT`).
    pub const fn time() -> HistoricalDomain {
        HistoricalDomain::new(ValueKind::Time)
    }

    /// The underlying value-domain family (`VD(A)`).
    pub const fn kind(&self) -> ValueKind {
        self.kind
    }

    /// Is this domain restricted to constant functions (`CD`)?
    pub const fn is_constant(&self) -> bool {
        self.constant
    }

    /// Is this a `TT` domain (functions from `T` into `T`)?
    pub const fn is_time_valued(&self) -> bool {
        matches!(self.kind, ValueKind::Time)
    }

    /// Returns the same domain with the `CD` restriction applied.
    pub const fn as_constant(&self) -> HistoricalDomain {
        HistoricalDomain {
            kind: self.kind,
            constant: true,
        }
    }

    /// Does `v` inhabit the underlying value domain?
    pub fn admits(&self, v: &Value) -> bool {
        v.kind() == self.kind
    }

    /// Union-compatibility in the paper compares `DOM` functions for
    /// equality; two historical domains agree when both kind and constancy
    /// match. Exposed for readability at call sites.
    pub fn same_as(&self, other: &HistoricalDomain) -> bool {
        self == other
    }
}

impl fmt::Display for HistoricalDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constant {
            write!(f, "CD<{}>", self.kind)
        } else if self.is_time_valued() {
            write!(f, "TT")
        } else {
            write!(f, "TD<{}>", self.kind)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_restriction() {
        let d = HistoricalDomain::int();
        assert!(!d.is_constant());
        assert!(d.as_constant().is_constant());
        assert_eq!(d.as_constant().kind(), ValueKind::Int);
        assert_eq!(
            HistoricalDomain::constant(ValueKind::Str).kind(),
            ValueKind::Str
        );
    }

    #[test]
    fn time_valued_detection() {
        assert!(HistoricalDomain::time().is_time_valued());
        assert!(!HistoricalDomain::int().is_time_valued());
    }

    #[test]
    fn admits_checks_kind() {
        let d = HistoricalDomain::string();
        assert!(d.admits(&Value::str("x")));
        assert!(!d.admits(&Value::Int(1)));
        assert!(HistoricalDomain::time().admits(&Value::time(4)));
    }

    #[test]
    fn comparability() {
        assert!(ValueKind::Int.comparable_with(ValueKind::Float));
        assert!(ValueKind::Float.comparable_with(ValueKind::Int));
        assert!(ValueKind::Str.comparable_with(ValueKind::Str));
        assert!(!ValueKind::Str.comparable_with(ValueKind::Int));
        assert!(!ValueKind::Time.comparable_with(ValueKind::Int));
    }

    #[test]
    fn display_forms() {
        assert_eq!(HistoricalDomain::int().to_string(), "TD<int>");
        assert_eq!(HistoricalDomain::time().to_string(), "TT");
        assert_eq!(
            HistoricalDomain::constant(ValueKind::Str).to_string(),
            "CD<string>"
        );
    }

    #[test]
    fn domain_equality_is_union_compatibility_test() {
        assert!(HistoricalDomain::int().same_as(&HistoricalDomain::int()));
        assert!(!HistoricalDomain::int().same_as(&HistoricalDomain::int().as_constant()));
        assert!(!HistoricalDomain::int().same_as(&HistoricalDomain::float()));
    }
}
