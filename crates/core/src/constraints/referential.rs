//! Temporal referential integrity (paper §1).
//!
//! "The historical model must … enforce referential integrity constraints
//! with respect to the temporal dimension. For example, a student can only
//! take a course at time t if both the student and the course exist in the
//! database at time t."

use crate::attribute::Attribute;
use crate::errors::Result;
use crate::relation::Relation;
use crate::value::Value;
use hrdm_time::Lifespan;
use std::collections::HashMap;
use std::fmt;

/// A temporal foreign key: `referencing` attributes of the child relation
/// must, at every time they bear a value, name a parent tuple whose key
/// equals that value **and whose lifespan covers that time**.
#[derive(Clone, Debug)]
pub struct TemporalForeignKey {
    /// Attributes of the child relation, in parent-key order.
    pub referencing: Vec<Attribute>,
}

impl TemporalForeignKey {
    /// A foreign key over the given child attributes.
    pub fn new<I, A>(referencing: I) -> TemporalForeignKey
    where
        I: IntoIterator<Item = A>,
        A: Into<Attribute>,
    {
        TemporalForeignKey {
            referencing: referencing.into_iter().map(Into::into).collect(),
        }
    }
}

/// One violation: at the reported times, the child tuple references a parent
/// key that does not exist (at those times).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RiViolation {
    /// The referencing (child) key value, rendered.
    pub child_key: String,
    /// The dangling referenced value, rendered.
    pub referenced: String,
    /// The times at which the reference dangles.
    pub at: Lifespan,
}

impl fmt::Display for RiViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuple {} references {} which does not exist at {}",
            self.child_key, self.referenced, self.at
        )
    }
}

/// Checks a temporal foreign key from `child` into `parent`.
///
/// For every child tuple and every time `s` at which all referencing
/// attributes bear values, the referenced parent tuple (by key equality)
/// must exist **at `s`** — existing at some other time is not enough, which
/// is precisely what distinguishes temporal from classical referential
/// integrity.
///
/// Returns all violations (empty = constraint satisfied).
pub fn check_referential(
    child: &Relation,
    fk: &TemporalForeignKey,
    parent: &Relation,
) -> Result<Vec<RiViolation>> {
    // Parent lookup: key value -> lifespan over which that object exists.
    let mut parent_spans: HashMap<Vec<Value>, Lifespan> = HashMap::with_capacity(parent.len());
    for t in parent.iter() {
        let key = t.key_values(parent.scheme())?;
        let entry = parent_spans.entry(key).or_insert_with(Lifespan::empty);
        *entry = entry.union(t.lifespan());
    }

    let mut violations = Vec::new();
    for t in child.iter() {
        // The times at which the child actually references something: the
        // intersection of the domains of all referencing attributes, piecewise
        // per referenced value vector. We walk segment products lazily: for
        // each chronon run where every referencing attribute is constant, we
        // get one (value-vector, span) pair.
        let mut spans: Vec<(Vec<Value>, Lifespan)> = vec![(Vec::new(), t.lifespan().clone())];
        for attr in &fk.referencing {
            let tv = match t.value(attr) {
                Some(tv) => tv.clone(),
                None => crate::temporal::TemporalValue::empty(),
            };
            let mut next = Vec::new();
            for (prefix, span) in &spans {
                for (iv, v) in tv.segments() {
                    let piece = span.clamp(*iv);
                    if !piece.is_empty() {
                        let mut key = prefix.clone();
                        key.push(v.clone());
                        next.push((key, piece));
                    }
                }
            }
            spans = next;
        }

        let child_key = match t.key_values(child.scheme()) {
            Ok(k) => format!(
                "({})",
                k.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Err(_) => "(keyless)".to_string(),
        };
        for (referenced, span) in spans {
            let covered = parent_spans
                .get(&referenced)
                .cloned()
                .unwrap_or_else(Lifespan::empty);
            let dangling = span.difference(&covered);
            if !dangling.is_empty() {
                violations.push(RiViolation {
                    child_key: child_key.clone(),
                    referenced: format!(
                        "({})",
                        referenced
                            .iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    at: dangling,
                });
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::scheme::Scheme;
    use crate::temporal::TemporalValue;
    use crate::tuple::Tuple;

    fn course_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("CODE", ValueKind::Str, Lifespan::interval(0, 100))
            .build()
            .unwrap()
    }

    fn enrollment_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("STUDENT", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "COURSE",
                HistoricalDomain::string(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn course(code: &str, lo: i64, hi: i64) -> Tuple {
        Tuple::builder(Lifespan::interval(lo, hi))
            .constant("CODE", code)
            .finish(&course_scheme())
            .unwrap()
    }

    fn enrollment(student: &str, takes: &[(i64, i64, &str)]) -> Tuple {
        let life = Lifespan::from_intervals(
            takes
                .iter()
                .map(|&(lo, hi, _)| hrdm_time::Interval::of(lo, hi)),
        );
        Tuple::builder(life)
            .constant("STUDENT", student)
            .value(
                "COURSE",
                TemporalValue::of(
                    &takes
                        .iter()
                        .map(|&(lo, hi, c)| (lo, hi, Value::str(c)))
                        .collect::<Vec<_>>(),
                ),
            )
            .finish(&enrollment_scheme())
            .unwrap()
    }

    #[test]
    fn satisfied_when_parent_covers_child() {
        let courses = Relation::with_tuples(
            course_scheme(),
            vec![course("DB", 0, 50), course("AI", 0, 50)],
        )
        .unwrap();
        let enrollments = Relation::with_tuples(
            enrollment_scheme(),
            vec![enrollment("Ann", &[(5, 10, "DB"), (11, 20, "AI")])],
        )
        .unwrap();
        let fk = TemporalForeignKey::new(["COURSE"]);
        assert!(check_referential(&enrollments, &fk, &courses)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn detects_reference_outside_parent_lifespan() {
        // The paper's scenario: the student takes a course at a time the
        // course does not exist.
        let courses = Relation::with_tuples(course_scheme(), vec![course("DB", 0, 8)]).unwrap();
        let enrollments = Relation::with_tuples(
            enrollment_scheme(),
            vec![enrollment("Ann", &[(5, 12, "DB")])],
        )
        .unwrap();
        let fk = TemporalForeignKey::new(["COURSE"]);
        let violations = check_referential(&enrollments, &fk, &courses).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].at, Lifespan::interval(9, 12));
        assert!(violations[0].to_string().contains("DB"));
    }

    #[test]
    fn detects_wholly_dangling_reference() {
        let courses = Relation::new(course_scheme());
        let enrollments = Relation::with_tuples(
            enrollment_scheme(),
            vec![enrollment("Ann", &[(5, 12, "GHOST")])],
        )
        .unwrap();
        let fk = TemporalForeignKey::new(["COURSE"]);
        let violations = check_referential(&enrollments, &fk, &courses).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].at, Lifespan::interval(5, 12));
    }

    #[test]
    fn reincarnated_parent_covers_matching_child_gaps() {
        // Course taught on [0,10] and again on [20,30]; enrollment in both
        // incarnations is fine, in the gap is not.
        let courses = Relation::with_tuples(
            course_scheme(),
            vec![{
                let life = Lifespan::of(&[(0, 10), (20, 30)]);
                Tuple::builder(life)
                    .constant("CODE", "DB")
                    .finish(&course_scheme())
                    .unwrap()
            }],
        )
        .unwrap();
        let ok = Relation::with_tuples(
            enrollment_scheme(),
            vec![enrollment("Ann", &[(5, 8, "DB"), (22, 25, "DB")])],
        )
        .unwrap();
        let fk = TemporalForeignKey::new(["COURSE"]);
        assert!(check_referential(&ok, &fk, &courses).unwrap().is_empty());

        let bad = Relation::with_tuples(
            enrollment_scheme(),
            vec![enrollment("Bob", &[(12, 18, "DB")])],
        )
        .unwrap();
        let violations = check_referential(&bad, &fk, &courses).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].at, Lifespan::interval(12, 18));
    }

    #[test]
    fn child_with_undefined_reference_times_is_fine() {
        // Child alive [0,20] but only references a course on [5,8]; the
        // uncovered lifespan imposes no constraint.
        let courses = Relation::with_tuples(course_scheme(), vec![course("DB", 5, 8)]).unwrap();
        let enrollments = Relation::with_tuples(
            enrollment_scheme(),
            vec![{
                Tuple::builder(Lifespan::interval(0, 20))
                    .constant("STUDENT", "Ann")
                    .value("COURSE", TemporalValue::of(&[(5, 8, Value::str("DB"))]))
                    .finish(&enrollment_scheme())
                    .unwrap()
            }],
        )
        .unwrap();
        let fk = TemporalForeignKey::new(["COURSE"]);
        assert!(check_referential(&enrollments, &fk, &courses)
            .unwrap()
            .is_empty());
    }
}
