//! The key constraint of paper §3, as a standalone audit.

use crate::errors::Result;
use crate::relation::Relation;

/// Checks the relation-definition constraint of paper §3: no two tuples may
/// ever share a key value (`∀s ∈ t1.l, ∀s' ∈ t2.l : t1.v(K)(s) ≠
/// t2.v(K)(s')`).
///
/// [`Relation::insert`] enforces this incrementally; this audit exists for
/// relations assembled by the *plain* set operators, which — per the paper's
/// own Fig. 11 — can emit key-violating results.
pub fn check_key(r: &Relation) -> Result<()> {
    r.check_key_constraint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ValueKind;
    use crate::errors::HrdmError;
    use crate::scheme::Scheme;
    use crate::tuple::Tuple;
    use crate::Relation;
    use hrdm_time::Lifespan;

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("K", ValueKind::Int, Lifespan::interval(0, 50))
            .build()
            .unwrap()
    }

    fn tup(k: i64, lo: i64, hi: i64) -> Tuple {
        Tuple::builder(Lifespan::interval(lo, hi))
            .constant("K", k)
            .finish(&scheme())
            .unwrap()
    }

    #[test]
    fn detects_duplicate_keys_even_with_disjoint_lifespans() {
        let r = Relation::from_parts_unchecked(scheme(), vec![tup(1, 0, 5), tup(1, 10, 15)]);
        assert!(matches!(
            check_key(&r).unwrap_err(),
            HrdmError::KeyViolation { .. }
        ));
    }

    #[test]
    fn passes_distinct_keys() {
        let r = Relation::from_parts_unchecked(scheme(), vec![tup(1, 0, 5), tup(2, 0, 5)]);
        assert!(check_key(&r).is_ok());
    }
}
