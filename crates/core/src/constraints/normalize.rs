//! Dependency theory and normalization over historical schemes — the §5
//! future-work item, reproduced.
//!
//! "To further elaborate on HRDM would require a discussion of the extension
//! of the various classes of constraints and the theory of normalization
//! which has been developed for the traditional model … These and other
//! types of temporal dependencies can be expected to have a significant
//! impact on design methodologies for historical databases."
//!
//! The classical machinery (Armstrong closure, candidate keys, BCNF)
//! transfers to HRDM once FDs are read **pointwise** (`X →ₚ Y`: the FD holds
//! in every snapshot — checked against instances by
//! [`crate::constraints::fd::holds_pointwise`]). Decomposition then splits a
//! historical scheme into projections, each attribute keeping its own
//! `ALS` — so normalization and schema evolution compose.

use crate::attribute::Attribute;
use crate::errors::{HrdmError, Result};
use crate::scheme::Scheme;
use std::collections::BTreeSet;
use std::fmt;

/// A functional dependency `lhs → rhs` (read pointwise in HRDM).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fd {
    /// Determinant attributes.
    pub lhs: BTreeSet<Attribute>,
    /// Determined attributes.
    pub rhs: BTreeSet<Attribute>,
}

impl Fd {
    /// `lhs → rhs` from anything iterable.
    pub fn new<L, R, A, B>(lhs: L, rhs: R) -> Fd
    where
        L: IntoIterator<Item = A>,
        R: IntoIterator<Item = B>,
        A: Into<Attribute>,
        B: Into<Attribute>,
    {
        Fd {
            lhs: lhs.into_iter().map(Into::into).collect(),
            rhs: rhs.into_iter().map(Into::into).collect(),
        }
    }

    /// Is the dependency trivial (`rhs ⊆ lhs`)?
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }

    /// Validates that every attribute exists in `scheme`.
    pub fn validate(&self, scheme: &Scheme) -> Result<()> {
        for a in self.lhs.iter().chain(self.rhs.iter()) {
            if !scheme.contains(a) {
                return Err(HrdmError::UnknownAttribute(a.clone()));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side =
            |s: &BTreeSet<Attribute>| s.iter().map(|a| a.name()).collect::<Vec<_>>().join(",");
        write!(f, "{} -> {}", side(&self.lhs), side(&self.rhs))
    }
}

/// The attribute closure `X⁺` under `fds` (Armstrong's axioms, fixpoint).
pub fn closure(x: &BTreeSet<Attribute>, fds: &[Fd]) -> BTreeSet<Attribute> {
    let mut out = x.clone();
    loop {
        let before = out.len();
        for fd in fds {
            if fd.lhs.is_subset(&out) {
                out.extend(fd.rhs.iter().cloned());
            }
        }
        if out.len() == before {
            return out;
        }
    }
}

/// Does `X` functionally determine every attribute of `scheme` under `fds`?
pub fn is_superkey(scheme: &Scheme, x: &BTreeSet<Attribute>, fds: &[Fd]) -> bool {
    let all: BTreeSet<Attribute> = scheme.attr_names().cloned().collect();
    all.is_subset(&closure(x, fds))
}

/// All candidate keys (minimal superkeys) of `scheme` under `fds`.
///
/// Exponential in arity by nature; HRDM schemes are small (the paper's
/// examples have 2–4 attributes).
pub fn candidate_keys(scheme: &Scheme, fds: &[Fd]) -> Vec<BTreeSet<Attribute>> {
    let attrs: Vec<Attribute> = scheme.attr_names().cloned().collect();
    let n = attrs.len();
    let mut keys: Vec<BTreeSet<Attribute>> = Vec::new();
    // Enumerate subsets in ascending cardinality so minimality is a simple
    // superset check against already-found keys.
    let mut subsets: Vec<u32> = (1..(1u32 << n)).collect();
    subsets.sort_by_key(|m| m.count_ones());
    for mask in subsets {
        let x: BTreeSet<Attribute> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| attrs[i].clone())
            .collect();
        if keys.iter().any(|k| k.is_subset(&x)) {
            continue; // superset of a known key: not minimal
        }
        if is_superkey(scheme, &x, fds) {
            keys.push(x);
        }
    }
    keys
}

/// The FDs among the *given* `fds` that violate BCNF in `scheme`: FDs whose
/// determinant lies in the scheme, whose restriction to the scheme is
/// non-trivial, and whose determinant is not a superkey of the scheme.
///
/// For violation *reporting* on the originally-stated dependencies; complete
/// BCNF *checking* of a projection must account for implied dependencies —
/// use [`is_bcnf`], which does.
pub fn bcnf_violations<'a>(scheme: &Scheme, fds: &'a [Fd]) -> Vec<&'a Fd> {
    let here: BTreeSet<Attribute> = scheme.attr_names().cloned().collect();
    fds.iter()
        .filter(|fd| {
            if !fd.lhs.is_subset(&here) {
                return false;
            }
            let rhs_here: BTreeSet<Attribute> = fd.rhs.intersection(&here).cloned().collect();
            !rhs_here.is_subset(&fd.lhs) && !is_superkey(scheme, &fd.lhs, fds)
        })
        .collect()
}

/// Is the scheme in BCNF with respect to `fds` — including dependencies
/// merely *implied* on this scheme's attributes (e.g. transitive ones whose
/// middle attribute was projected away)?
///
/// Uses the closure characterization: for every `X ⊆ R`, `X⁺ ∩ R` must be
/// `X` or `R`. Exponential in arity, which is fine at HRDM scheme sizes.
pub fn is_bcnf(scheme: &Scheme, fds: &[Fd]) -> bool {
    let attrs: Vec<Attribute> = scheme.attr_names().cloned().collect();
    let here: BTreeSet<Attribute> = attrs.iter().cloned().collect();
    let n = attrs.len();
    for mask in 1u32..(1 << n) {
        let x: BTreeSet<Attribute> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| attrs[i].clone())
            .collect();
        let reach: BTreeSet<Attribute> = closure(&x, fds).intersection(&here).cloned().collect();
        if reach != x && reach != here {
            return false;
        }
    }
    true
}

/// Lossless BCNF decomposition: recursively splits on a violating FD
/// `X → Y` into `X ∪ Y` and `R − (Y − X)`. Each fragment is a *projection*
/// of the original historical scheme, so every attribute keeps its `ALS`
/// (normalization and attribute lifespans compose). Fragment keys follow
/// [`Scheme::project`]'s rule.
pub fn decompose_bcnf(scheme: &Scheme, fds: &[Fd]) -> Result<Vec<Scheme>> {
    for fd in fds {
        fd.validate(scheme)?;
    }
    let mut out = Vec::new();
    decompose_into(scheme.clone(), fds, &mut out)?;
    Ok(out)
}

fn decompose_into(scheme: Scheme, fds: &[Fd], out: &mut Vec<Scheme>) -> Result<()> {
    // Find a violating determinant via the closure characterization (so
    // implied dependencies are caught too): an X with X ⊊ X⁺∩R ⊊ R.
    let attrs: Vec<Attribute> = scheme.attr_names().cloned().collect();
    let here: BTreeSet<Attribute> = attrs.iter().cloned().collect();
    let n = attrs.len();
    let mut masks: Vec<u32> = (1..(1u32 << n)).collect();
    masks.sort_by_key(|m| m.count_ones()); // smallest determinant first
    for mask in masks {
        let x: BTreeSet<Attribute> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| attrs[i].clone())
            .collect();
        let reach: BTreeSet<Attribute> = closure(&x, fds).intersection(&here).cloned().collect();
        if reach == x || reach == here {
            continue;
        }
        // Split on the violation X → (X⁺ ∩ R): fragment 1 is X⁺ ∩ R,
        // fragment 2 is R − (X⁺ ∩ R − X). Projection keeps scheme order
        // and every attribute's ALS.
        let f1_attrs: Vec<Attribute> = attrs
            .iter()
            .filter(|a| reach.contains(a))
            .cloned()
            .collect();
        let f2_attrs: Vec<Attribute> = attrs
            .iter()
            .filter(|a| x.contains(a) || !reach.contains(a))
            .cloned()
            .collect();
        let f1 = scheme.project(&f1_attrs)?;
        let f2 = scheme.project(&f2_attrs)?;
        decompose_into(f1, fds, out)?;
        return decompose_into(f2, fds, out);
    }
    out.push(scheme);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};
    use hrdm_time::Lifespan;

    fn attrs<const N: usize>(names: [&str; N]) -> BTreeSet<Attribute> {
        names.iter().map(Attribute::new).collect()
    }

    /// emp(NAME*, DEPT, FLOOR, SALARY): DEPT has its own (evolved) ALS.
    fn scheme() -> Scheme {
        let era = Lifespan::interval(0, 100);
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, era.clone())
            .attr(
                "DEPT",
                HistoricalDomain::string(),
                Lifespan::of(&[(0, 49), (70, 100)]),
            )
            .attr("FLOOR", HistoricalDomain::int(), era.clone())
            .attr("SALARY", HistoricalDomain::int(), era)
            .build()
            .unwrap()
    }

    fn fds() -> Vec<Fd> {
        vec![
            Fd::new(["NAME"], ["DEPT", "SALARY"]),
            Fd::new(["DEPT"], ["FLOOR"]),
        ]
    }

    #[test]
    fn closure_follows_chains() {
        let c = closure(&attrs(["NAME"]), &fds());
        assert_eq!(c, attrs(["NAME", "DEPT", "SALARY", "FLOOR"]));
        let c = closure(&attrs(["DEPT"]), &fds());
        assert_eq!(c, attrs(["DEPT", "FLOOR"]));
        let c = closure(&attrs(["SALARY"]), &fds());
        assert_eq!(c, attrs(["SALARY"]));
    }

    #[test]
    fn superkeys_and_candidate_keys() {
        let s = scheme();
        let f = fds();
        assert!(is_superkey(&s, &attrs(["NAME"]), &f));
        assert!(is_superkey(&s, &attrs(["NAME", "FLOOR"]), &f));
        assert!(!is_superkey(&s, &attrs(["DEPT"]), &f));
        let keys = candidate_keys(&s, &f);
        assert_eq!(keys, vec![attrs(["NAME"])]);
    }

    #[test]
    fn multiple_candidate_keys_found() {
        // A ↔ B (each determines the other and C): both {A} and {B} are keys.
        let era = Lifespan::interval(0, 10);
        let s = Scheme::builder()
            .key_attr("A", ValueKind::Int, era.clone())
            .attr("B", HistoricalDomain::int(), era.clone())
            .attr("C", HistoricalDomain::int(), era)
            .build()
            .unwrap();
        let f = vec![Fd::new(["A"], ["B", "C"]), Fd::new(["B"], ["A"])];
        let keys = candidate_keys(&s, &f);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&attrs(["A"])));
        assert!(keys.contains(&attrs(["B"])));
    }

    #[test]
    fn bcnf_detection() {
        // DEPT → FLOOR with DEPT not a superkey: the classic violation.
        let s = scheme();
        let f = fds();
        assert!(!is_bcnf(&s, &f));
        let v = bcnf_violations(&s, &f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lhs, attrs(["DEPT"]));
        // Without the DEPT→FLOOR dependency the scheme is fine.
        let f2 = vec![Fd::new(["NAME"], ["DEPT", "FLOOR", "SALARY"])];
        assert!(is_bcnf(&s, &f2));
    }

    #[test]
    fn trivial_fds_never_violate() {
        let s = scheme();
        let f = vec![Fd::new(["DEPT", "FLOOR"], ["DEPT"])];
        assert!(f[0].is_trivial());
        assert!(is_bcnf(&s, &f));
    }

    #[test]
    fn bcnf_decomposition_splits_on_the_violation() {
        let s = scheme();
        let fragments = decompose_bcnf(&s, &fds()).unwrap();
        assert_eq!(fragments.len(), 2);
        // One fragment is dept(DEPT, FLOOR); the other keeps NAME's data.
        let names: Vec<BTreeSet<Attribute>> = fragments
            .iter()
            .map(|f| f.attr_names().cloned().collect())
            .collect();
        assert!(names.contains(&attrs(["DEPT", "FLOOR"])));
        assert!(names.contains(&attrs(["NAME", "DEPT", "SALARY"])));
        // Every fragment is itself BCNF.
        for frag in &fragments {
            assert!(is_bcnf(frag, &fds()));
        }
    }

    #[test]
    fn decomposition_preserves_attribute_lifespans() {
        // The §2 point: normalization must not lose schema evolution. DEPT's
        // gapped ALS survives into both fragments that carry it.
        let s = scheme();
        let fragments = decompose_bcnf(&s, &fds()).unwrap();
        for frag in &fragments {
            if let Ok(als) = frag.als(&"DEPT".into()) {
                assert_eq!(als, &Lifespan::of(&[(0, 49), (70, 100)]));
            }
        }
    }

    #[test]
    fn decomposition_of_bcnf_scheme_is_identity() {
        let s = scheme();
        let f = vec![Fd::new(["NAME"], ["DEPT", "FLOOR", "SALARY"])];
        let fragments = decompose_bcnf(&s, &f).unwrap();
        assert_eq!(fragments.len(), 1);
        assert_eq!(&fragments[0], &s);
    }

    #[test]
    fn fd_validation_catches_unknown_attributes() {
        let s = scheme();
        let bad = vec![Fd::new(["GHOST"], ["FLOOR"])];
        assert!(decompose_bcnf(&s, &bad).is_err());
    }

    #[test]
    fn display_renders_fds() {
        assert_eq!(Fd::new(["A", "B"], ["C"]).to_string(), "A,B -> C");
    }
}
