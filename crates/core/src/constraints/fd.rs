//! Temporal functional dependencies (paper §5).
//!
//! "The temporal dimension of historical relations can be used to extend the
//! traditional notion of functional dependency … we can define dependencies
//! that hold not only at each single point in time, but also that hold over
//! all points in time. We can also define constraints over the way that
//! values change over time (as in the familiar 'salary must never decrease'
//! example)."
//!
//! Three checkers:
//!
//! * [`holds_pointwise`] — `X →ₚ Y`: at every single time `s`, the classical
//!   FD holds in the snapshot at `s`.
//! * [`holds_always`] — `X →ᵍ Y`: the *intensional* FD of [Clifford 83] /
//!   the "dynamic" constraints of [Casanova 79]: whenever two tuples agree
//!   on `X` at any pair of times, they agree on `Y` at those times.
//! * [`never_decreases`] / [`never_increases`] — value-evolution constraints
//!   per tuple.

use crate::attribute::Attribute;
use crate::errors::Result;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use hrdm_time::Chronon;
use std::collections::HashMap;
use std::fmt;

/// A witness that a temporal FD fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FdViolation {
    /// Time (for the first tuple) at which the violation is witnessed.
    pub at_left: Chronon,
    /// Time (for the second tuple) at which the violation is witnessed.
    pub at_right: Chronon,
    /// The shared `X` value, rendered.
    pub x_value: String,
    /// The two conflicting `Y` values, rendered.
    pub y_values: (String, String),
}

impl fmt::Display for FdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "X={} maps to {} (at {:?}) and {} (at {:?})",
            self.x_value, self.y_values.0, self.at_left, self.y_values.1, self.at_right
        )
    }
}

fn values_at(t: &Tuple, attrs: &[Attribute], s: Chronon) -> Option<Vec<Value>> {
    attrs
        .iter()
        .map(|a| t.at(a, s).cloned())
        .collect::<Option<Vec<_>>>()
}

fn render(vs: &[Value]) -> String {
    format!(
        "({})",
        vs.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

/// Checks the pointwise temporal FD `X →ₚ Y`: for every time `s`, no two
/// tuples that agree on `X` at `s` disagree on `Y` at `s`. This captures the
/// "meaning of the traditional FD" carried to each snapshot (paper §5).
///
/// Returns the first violation found, or `None` if the FD holds.
pub fn holds_pointwise(
    r: &Relation,
    x: &[Attribute],
    y: &[Attribute],
) -> Result<Option<FdViolation>> {
    // Candidate times: segment boundaries suffice, since all values are
    // piecewise constant — between boundaries nothing changes.
    let mut times: Vec<Chronon> = Vec::new();
    for t in r.iter() {
        for attr in x.iter().chain(y.iter()) {
            if let Some(tv) = t.value(attr) {
                for (iv, _) in tv.segments() {
                    times.push(iv.lo());
                    times.push(iv.hi());
                }
            }
        }
    }
    times.sort_unstable();
    times.dedup();

    for &s in &times {
        let mut seen: HashMap<Vec<Value>, (Chronon, Vec<Value>)> = HashMap::new();
        for t in r.iter() {
            let (Some(xv), Some(yv)) = (values_at(t, x, s), values_at(t, y, s)) else {
                continue;
            };
            match seen.get(&xv) {
                Some((prev_s, prev_y)) if *prev_y != yv => {
                    return Ok(Some(FdViolation {
                        at_left: *prev_s,
                        at_right: s,
                        x_value: render(&xv),
                        y_values: (render(prev_y), render(&yv)),
                    }));
                }
                _ => {
                    seen.insert(xv, (s, yv));
                }
            }
        }
    }
    Ok(None)
}

/// Checks the intensional FD `X →ᵍ Y` over *all* points in time: whenever
/// `t1(X)(s1) = t2(X)(s2)` — at possibly different times, possibly within a
/// single tuple — then `t1(Y)(s1) = t2(Y)(s2)` (paper §5's "dependencies …
/// that hold over all points in time").
///
/// Candidate times are segment boundaries (values are piecewise constant).
pub fn holds_always(r: &Relation, x: &[Attribute], y: &[Attribute]) -> Result<Option<FdViolation>> {
    let mut seen: HashMap<Vec<Value>, (Chronon, Vec<Value>)> = HashMap::new();
    for t in r.iter() {
        let mut times: Vec<Chronon> = Vec::new();
        for attr in x.iter().chain(y.iter()) {
            if let Some(tv) = t.value(attr) {
                for (iv, _) in tv.segments() {
                    times.push(iv.lo());
                    times.push(iv.hi());
                }
            }
        }
        times.sort_unstable();
        times.dedup();
        for &s in &times {
            let (Some(xv), Some(yv)) = (values_at(t, x, s), values_at(t, y, s)) else {
                continue;
            };
            match seen.get(&xv) {
                Some((prev_s, prev_y)) if *prev_y != yv => {
                    return Ok(Some(FdViolation {
                        at_left: *prev_s,
                        at_right: s,
                        x_value: render(&xv),
                        y_values: (render(prev_y), render(&yv)),
                    }));
                }
                _ => {
                    seen.insert(xv, (s, yv));
                }
            }
        }
    }
    Ok(None)
}

/// The paper's "salary must never decrease" dynamic constraint: within each
/// tuple, the value of `attr` never decreases as time advances (gaps are
/// allowed; the constraint compares consecutive *defined* values).
///
/// Returns the key (rendered) of the first offending tuple.
pub fn never_decreases(r: &Relation, attr: &Attribute) -> Result<Option<String>> {
    monotone(r, attr, |prev, next| {
        prev.try_cmp(next).map(|o| o != std::cmp::Ordering::Greater)
    })
}

/// Dual of [`never_decreases`].
pub fn never_increases(r: &Relation, attr: &Attribute) -> Result<Option<String>> {
    monotone(r, attr, |prev, next| {
        prev.try_cmp(next).map(|o| o != std::cmp::Ordering::Less)
    })
}

fn monotone<F>(r: &Relation, attr: &Attribute, mut ok: F) -> Result<Option<String>>
where
    F: FnMut(&Value, &Value) -> Result<bool>,
{
    for t in r.iter() {
        let Some(tv) = t.value(attr) else { continue };
        for w in tv.segments().windows(2) {
            if !ok(&w[0].1, &w[1].1)? {
                let key = t
                    .key_values(r.scheme())
                    .map(|k| render(&k))
                    .unwrap_or_else(|_| "(keyless)".to_string());
                return Ok(Some(key));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::scheme::Scheme;
    use crate::temporal::TemporalValue;
    use hrdm_time::Lifespan;

    fn scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, Lifespan::interval(0, 100))
            .attr(
                "DEPT",
                HistoricalDomain::string(),
                Lifespan::interval(0, 100),
            )
            .attr("FLOOR", HistoricalDomain::int(), Lifespan::interval(0, 100))
            .attr(
                "SALARY",
                HistoricalDomain::int(),
                Lifespan::interval(0, 100),
            )
            .build()
            .unwrap()
    }

    fn emp(
        name: &str,
        span: (i64, i64),
        dept: &[(i64, i64, &str)],
        floor: &[(i64, i64, i64)],
        salary: &[(i64, i64, i64)],
    ) -> Tuple {
        Tuple::builder(Lifespan::interval(span.0, span.1))
            .constant("NAME", name)
            .value(
                "DEPT",
                TemporalValue::of(
                    &dept
                        .iter()
                        .map(|&(a, b, d)| (a, b, Value::str(d)))
                        .collect::<Vec<_>>(),
                ),
            )
            .value(
                "FLOOR",
                TemporalValue::of(
                    &floor
                        .iter()
                        .map(|&(a, b, v)| (a, b, Value::Int(v)))
                        .collect::<Vec<_>>(),
                ),
            )
            .value(
                "SALARY",
                TemporalValue::of(
                    &salary
                        .iter()
                        .map(|&(a, b, v)| (a, b, Value::Int(v)))
                        .collect::<Vec<_>>(),
                ),
            )
            .finish(&scheme())
            .unwrap()
    }

    #[test]
    fn pointwise_fd_holds_when_snapshots_consistent() {
        // DEPT -> FLOOR at every instant, even though the mapping changes
        // over time (Toys moves from floor 1 to floor 2 for everyone).
        let r = Relation::with_tuples(
            scheme(),
            vec![
                emp(
                    "A",
                    (0, 20),
                    &[(0, 20, "Toys")],
                    &[(0, 9, 1), (10, 20, 2)],
                    &[(0, 20, 5)],
                ),
                emp(
                    "B",
                    (0, 20),
                    &[(0, 20, "Toys")],
                    &[(0, 9, 1), (10, 20, 2)],
                    &[(0, 20, 6)],
                ),
            ],
        )
        .unwrap();
        assert!(holds_pointwise(&r, &["DEPT".into()], &["FLOOR".into()])
            .unwrap()
            .is_none());
        // …but the FD over all time fails: Toys maps to 1 and to 2.
        assert!(holds_always(&r, &["DEPT".into()], &["FLOOR".into()])
            .unwrap()
            .is_some());
    }

    #[test]
    fn pointwise_fd_detects_snapshot_conflict() {
        let r = Relation::with_tuples(
            scheme(),
            vec![
                emp(
                    "A",
                    (0, 10),
                    &[(0, 10, "Toys")],
                    &[(0, 10, 1)],
                    &[(0, 10, 5)],
                ),
                emp(
                    "B",
                    (0, 10),
                    &[(0, 10, "Toys")],
                    &[(0, 10, 2)],
                    &[(0, 10, 6)],
                ),
            ],
        )
        .unwrap();
        let v = holds_pointwise(&r, &["DEPT".into()], &["FLOOR".into()])
            .unwrap()
            .unwrap();
        assert_eq!(v.x_value, "(Toys)");
        assert_ne!(v.y_values.0, v.y_values.1);
    }

    #[test]
    fn always_fd_holds_for_time_invariant_mapping() {
        let r = Relation::with_tuples(
            scheme(),
            vec![
                emp(
                    "A",
                    (0, 20),
                    &[(0, 20, "Toys")],
                    &[(0, 20, 1)],
                    &[(0, 20, 5)],
                ),
                emp(
                    "B",
                    (5, 25),
                    &[(5, 25, "Toys")],
                    &[(5, 25, 1)],
                    &[(5, 25, 9)],
                ),
            ],
        )
        .unwrap();
        assert!(holds_always(&r, &["DEPT".into()], &["FLOOR".into()])
            .unwrap()
            .is_none());
    }

    #[test]
    fn always_fd_catches_within_tuple_drift() {
        // A single tuple whose DEPT stays "Toys" while FLOOR changes violates
        // the over-all-time FD — with witnesses at two different times of the
        // *same* tuple.
        let r = Relation::with_tuples(
            scheme(),
            vec![emp(
                "A",
                (0, 20),
                &[(0, 20, "Toys")],
                &[(0, 9, 1), (10, 20, 2)],
                &[(0, 20, 5)],
            )],
        )
        .unwrap();
        assert!(holds_always(&r, &["DEPT".into()], &["FLOOR".into()])
            .unwrap()
            .is_some());
    }

    #[test]
    fn never_decreases_accepts_monotone_salary() {
        let r = Relation::with_tuples(
            scheme(),
            vec![emp(
                "A",
                (0, 30),
                &[(0, 30, "Toys")],
                &[(0, 30, 1)],
                &[(0, 9, 10), (10, 19, 15), (20, 30, 15)],
            )],
        )
        .unwrap();
        assert!(never_decreases(&r, &"SALARY".into()).unwrap().is_none());
        // The same history violates never-increases.
        assert_eq!(
            never_increases(&r, &"SALARY".into()).unwrap(),
            Some("(A)".to_string())
        );
    }

    #[test]
    fn never_decreases_names_the_offender() {
        let r = Relation::with_tuples(
            scheme(),
            vec![
                emp(
                    "A",
                    (0, 20),
                    &[(0, 20, "T")],
                    &[(0, 20, 1)],
                    &[(0, 9, 10), (10, 20, 8)],
                ),
                emp("B", (0, 20), &[(0, 20, "T")], &[(0, 20, 1)], &[(0, 20, 10)]),
            ],
        )
        .unwrap();
        assert_eq!(
            never_decreases(&r, &"SALARY".into()).unwrap(),
            Some("(A)".to_string())
        );
    }

    #[test]
    fn monotonicity_across_reincarnation_gap_still_applies() {
        // Fired at 9, rehired at 20 with a lower salary: consecutive defined
        // segments compare across the gap — the constraint catches it.
        let r = Relation::with_tuples(
            scheme(),
            vec![{
                Tuple::builder(Lifespan::of(&[(0, 9), (20, 30)]))
                    .constant("NAME", "A")
                    .value(
                        "SALARY",
                        TemporalValue::of(&[(0, 9, Value::Int(10)), (20, 30, Value::Int(7))]),
                    )
                    .finish(&scheme())
                    .unwrap()
            }],
        )
        .unwrap();
        assert!(never_decreases(&r, &"SALARY".into()).unwrap().is_some());
    }
}
