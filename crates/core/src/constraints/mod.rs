//! Temporal integrity constraints.
//!
//! The paper's §1 motivates temporal referential integrity ("a student can
//! only take a course at time t if both the student and the course exist in
//! the database at time t") and §5 sketches temporal extensions of
//! functional dependencies — pointwise FDs, FDs over all of time, and
//! dynamic constraints such as "salary must never decrease". This module
//! implements all of them as checkers over historical relations.

pub mod fd;
pub mod key;
pub mod normalize;
pub mod referential;

pub use fd::{holds_always, holds_pointwise, never_decreases, never_increases, FdViolation};
pub use key::check_key;
pub use normalize::{
    bcnf_violations, candidate_keys, closure, decompose_bcnf, is_bcnf, is_superkey, Fd,
};
pub use referential::{check_referential, RiViolation, TemporalForeignKey};
