//! Historical relations: finite sets of tuples on a scheme, with the key
//! constraint of paper §3.

use crate::attribute::Attribute;
use crate::errors::{HrdmError, Result};
use crate::scheme::Scheme;
use crate::tuple::Tuple;
use crate::value::Value;
use hrdm_time::{Chronon, Lifespan};
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A historical relation `r` on a scheme `R`: a finite set of tuples such
/// that no two tuples ever share a key value — the paper's condition
/// `∀ s ∈ t1.l, ∀ s' ∈ t2.l : t1.v(K)(s) ≠ t2.v(K)(s')` (§3). Because key
/// attributes are constant-valued, the condition reduces to distinct constant
/// key vectors.
///
/// [`Relation::insert`] enforces the key constraint (and scheme validity).
/// Algebra operators use [`Relation::from_parts_unchecked`] because the paper
/// itself produces key-violating relations from the *uncorrected* set
/// operators — that is exactly the "counter-intuitive" union of Fig. 11 that
/// motivates the object-based `∪ₒ`.
///
/// ## Sharing and copy-on-write
///
/// The tuple vector is held behind an [`Arc`], so [`Relation::clone`] is
/// O(1) in the number of tuples — cloning a relation (as snapshots and the
/// query evaluator do on every base-relation scan) shares storage instead of
/// copying it. Mutation goes through [`Arc::make_mut`]: a relation whose
/// storage is shared with a live snapshot copies the vector once per write
/// burst (once per commit batch under a concurrent writer that republishes
/// after every batch) — cheaply, since tuples themselves are `Arc`-backed,
/// so the copy is `n` pointer bumps, not `n` deep value-map copies; an
/// unshared relation mutates in place with no overhead. Readers holding the
/// old `Arc` keep seeing exactly the state they snapshotted.
#[derive(Clone, Debug)]
pub struct Relation {
    scheme: Scheme,
    tuples: Arc<Vec<Tuple>>,
}

impl Relation {
    /// An empty relation on `scheme`.
    pub fn new(scheme: Scheme) -> Relation {
        Relation {
            scheme,
            tuples: Arc::new(Vec::new()),
        }
    }

    /// Builds a relation from tuples, validating each against the scheme and
    /// enforcing the key constraint.
    pub fn with_tuples<I>(scheme: Scheme, tuples: I) -> Result<Relation>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut r = Relation::new(scheme);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// Assembles a relation from parts without key or scheme validation,
    /// deduplicating exact duplicate tuples (relations are sets).
    ///
    /// This is the constructor algebra operators use; their outputs are
    /// well-formed by construction except that — per the paper — results of
    /// the plain set operators may violate the key constraint.
    pub fn from_parts_unchecked<I>(scheme: Scheme, tuples: I) -> Relation
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut seen: HashSet<Tuple> = HashSet::new();
        let mut out = Vec::new();
        for t in tuples {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
        Relation {
            scheme,
            tuples: Arc::new(out),
        }
    }

    /// The relation's scheme.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The tuples, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        self.tuples.as_slice()
    }

    /// The shared tuple storage. Cloning the returned [`Arc`] pins the
    /// current contents: later mutations of this relation copy-on-write and
    /// leave the pinned vector untouched (snapshot isolation's storage-level
    /// guarantee).
    pub fn tuples_shared(&self) -> Arc<Vec<Tuple>> {
        Arc::clone(&self.tuples)
    }

    /// Is the tuple storage currently shared with a snapshot or clone?
    /// (Diagnostic; a shared relation pays one O(n) pointer-copy on its next
    /// mutation.)
    pub fn is_storage_shared(&self) -> bool {
        Arc::strong_count(&self.tuples) > 1
    }

    /// Iterates the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuple at `pos` in [`Relation::tuples`] order, if in bounds.
    ///
    /// Positions are what access methods (`hrdm-index`) return: an index
    /// over a relation maps query predicates to positions, and operators
    /// fetch the candidate tuples through this accessor.
    pub fn tuple_at(&self, pos: usize) -> Option<&Tuple> {
        self.tuples.get(pos)
    }

    /// A positional scan: the tuples at `positions`, in the given order.
    /// Out-of-range positions are skipped (an index built before a mutation
    /// may cite positions the relation no longer has).
    pub fn scan_positions<'a>(
        &'a self,
        positions: &'a [usize],
    ) -> impl Iterator<Item = &'a Tuple> + 'a {
        positions.iter().filter_map(|&p| self.tuples.get(p))
    }

    /// Materializes the sub-relation holding exactly the tuples at
    /// `positions` — the bridge from an index result back into the algebra,
    /// whose operators consume relations.
    ///
    /// Callers must pass *distinct* positions (index queries return sorted,
    /// deduplicated position lists); the stored tuples are already a set,
    /// so the subset needs no dedup pass of its own.
    pub fn subset_at_positions(&self, positions: &[usize]) -> Relation {
        Relation {
            scheme: self.scheme.clone(),
            tuples: Arc::new(self.scan_positions(positions).cloned().collect()),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple, validating it against the scheme and enforcing the
    /// key constraint against the existing tuples.
    ///
    /// Relations with an empty (derived) key enforce only set semantics:
    /// inserting an exact duplicate is a silent no-op.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        tuple.validate(&self.scheme)?;
        if self.scheme.key().is_empty() {
            if !self.tuples.contains(&tuple) {
                Arc::make_mut(&mut self.tuples).push(tuple);
            }
            return Ok(());
        }
        let key = tuple.key_values(&self.scheme)?;
        for existing in self.tuples.iter() {
            let existing_key = existing
                .key_values(&self.scheme)
                // lint: no-panic-ok(every stored tuple passed the same key_values check on insert)
                .expect("stored tuples have key values");
            if existing_key == key {
                return Err(HrdmError::KeyViolation {
                    key: format!(
                        "({})",
                        key.iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
        Arc::make_mut(&mut self.tuples).push(tuple);
        Ok(())
    }

    /// Truncates to the first `len` tuples (a no-op when the relation is
    /// already that short). Storage-level batch undo: inserts are
    /// append-only, so cutting back to a pre-batch length restores exactly
    /// the pre-batch contents. Copy-on-write like every mutation — a
    /// snapshot sharing the storage keeps the untruncated vector.
    pub fn truncate(&mut self, len: usize) {
        if len < self.tuples.len() {
            Arc::make_mut(&mut self.tuples).truncate(len);
        }
    }

    /// Appends a tuple **without** re-running validation or the key check.
    ///
    /// For callers that have already performed both (e.g. a storage layer
    /// that validates before write-ahead logging, then applies) — the
    /// checked sibling of [`Relation::insert`], in the same spirit as
    /// [`Relation::from_parts_unchecked`]. Inserting an invalid or
    /// key-duplicate tuple through this door breaks the relation invariant.
    pub fn push_unchecked(&mut self, tuple: Tuple) {
        Arc::make_mut(&mut self.tuples).push(tuple);
    }

    /// `LS(r)` — the lifespan of the relation: "just
    /// `t1.l ∪ t2.l ∪ … ∪ tn.l`" (paper §3). This is also the result of the
    /// WHEN operator Ω.
    pub fn lifespan(&self) -> Lifespan {
        self.tuples
            .iter()
            .fold(Lifespan::empty(), |acc, t| acc.union(t.lifespan()))
    }

    /// Finds the tuple with the given (constant) key value, if any.
    pub fn find_by_key(&self, key: &[Value]) -> Option<&Tuple> {
        self.tuples
            .iter()
            .find(|t| matches!(t.key_values(&self.scheme), Ok(k) if k == key))
    }

    /// Does the relation contain an identical tuple?
    pub fn contains_tuple(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// The classical snapshot of the relation at time `s`: one row per tuple
    /// alive at `s`, mapping each attribute defined at `s` to its value.
    ///
    /// This is the `T = {now}` reading of §5's consistency claim, usable at
    /// any `s`.
    pub fn snapshot_at(&self, s: Chronon) -> Vec<BTreeMap<Attribute, Value>> {
        self.tuples
            .iter()
            .filter(|t| t.lifespan().contains(s))
            .map(|t| {
                t.values()
                    .iter()
                    .filter_map(|(a, tv)| tv.at(s).map(|v| (a.clone(), v.clone())))
                    .collect()
            })
            .collect()
    }

    /// Checks the key constraint over the whole relation, reporting the
    /// first duplicated key value. Useful for auditing relations produced by
    /// the unchecked set operators.
    pub fn check_key_constraint(&self) -> Result<()> {
        if self.scheme.key().is_empty() {
            return Ok(());
        }
        let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(self.tuples.len());
        for t in self.tuples.iter() {
            let key = t.key_values(&self.scheme)?;
            if !seen.insert(key.clone()) {
                return Err(HrdmError::KeyViolation {
                    key: format!(
                        "({})",
                        key.iter()
                            .map(|v| v.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
        Ok(())
    }

    /// Total number of value segments across all tuples — the storage-cost
    /// measure used by the granularity experiments (DESIGN.md E1/E8).
    pub fn segment_cells(&self) -> usize {
        self.tuples
            .iter()
            .map(|t| {
                t.values()
                    .values()
                    .map(|tv| tv.segment_count())
                    .sum::<usize>()
            })
            .sum()
    }
}

impl PartialEq for Relation {
    /// Set equality: same scheme, same set of tuples, order-insensitive.
    fn eq(&self, other: &Relation) -> bool {
        if self.scheme != other.scheme || self.tuples.len() != other.tuples.len() {
            return false;
        }
        let mine: HashSet<&Tuple> = self.tuples.iter().collect();
        other.tuples.iter().all(|t| mine.contains(t))
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "scheme {}", self.scheme)?;
        for t in self.tuples.iter() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};
    use crate::temporal::TemporalValue;

    fn ls(lo: i64, hi: i64) -> Lifespan {
        Lifespan::interval(lo, hi)
    }

    fn emp_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, ls(0, 100))
            .attr("SALARY", HistoricalDomain::int(), ls(0, 100))
            .build()
            .unwrap()
    }

    fn emp(name: &str, spans: &[(i64, i64)], salary: i64) -> Tuple {
        let life = Lifespan::of(spans);
        Tuple::builder(life.clone())
            .constant("NAME", name)
            .value("SALARY", TemporalValue::constant(&life, Value::Int(salary)))
            .finish(&emp_scheme())
            .unwrap()
    }

    #[test]
    fn insert_and_query() {
        let mut r = Relation::new(emp_scheme());
        r.insert(emp("John", &[(1, 10)], 25_000)).unwrap();
        r.insert(emp("Mary", &[(5, 20)], 30_000)).unwrap();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(r.find_by_key(&[Value::str("John")]).is_some());
        assert!(r.find_by_key(&[Value::str("Nobody")]).is_none());
    }

    #[test]
    fn key_constraint_rejects_duplicates() {
        let mut r = Relation::new(emp_scheme());
        r.insert(emp("John", &[(1, 10)], 25_000)).unwrap();
        // Even with a disjoint lifespan: the paper's constraint quantifies
        // over all pairs of times in the two lifespans.
        let err = r.insert(emp("John", &[(20, 30)], 40_000)).unwrap_err();
        assert!(matches!(err, HrdmError::KeyViolation { .. }));
    }

    #[test]
    fn lifespan_is_union_of_tuple_lifespans() {
        let mut r = Relation::new(emp_scheme());
        r.insert(emp("John", &[(1, 10)], 25_000)).unwrap();
        r.insert(emp("Mary", &[(20, 30)], 30_000)).unwrap();
        assert_eq!(r.lifespan(), Lifespan::of(&[(1, 10), (20, 30)]));
        assert_eq!(Relation::new(emp_scheme()).lifespan(), Lifespan::empty());
    }

    #[test]
    fn snapshot_extracts_classical_rows() {
        let mut r = Relation::new(emp_scheme());
        r.insert(emp("John", &[(1, 10)], 25_000)).unwrap();
        r.insert(emp("Mary", &[(5, 20)], 30_000)).unwrap();

        let snap = r.snapshot_at(Chronon::new(7));
        assert_eq!(snap.len(), 2);
        let snap = r.snapshot_at(Chronon::new(15));
        assert_eq!(snap.len(), 1);
        assert_eq!(
            snap[0].get(&Attribute::new("NAME")),
            Some(&Value::str("Mary"))
        );
        assert!(r.snapshot_at(Chronon::new(50)).is_empty());
    }

    #[test]
    fn from_parts_dedupes() {
        let t = emp("John", &[(1, 10)], 25_000);
        let r = Relation::from_parts_unchecked(emp_scheme(), vec![t.clone(), t.clone()]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn from_parts_allows_key_violations_but_audit_reports_them() {
        let r = Relation::from_parts_unchecked(
            emp_scheme(),
            vec![
                emp("John", &[(1, 10)], 25_000),
                emp("John", &[(20, 30)], 40_000),
            ],
        );
        assert_eq!(r.len(), 2);
        assert!(matches!(
            r.check_key_constraint().unwrap_err(),
            HrdmError::KeyViolation { .. }
        ));
    }

    #[test]
    fn keyless_relation_enforces_set_semantics() {
        let scheme = emp_scheme().project(&[Attribute::new("SALARY")]).unwrap();
        let mut r = Relation::new(scheme.clone());
        let t = Tuple::builder(ls(1, 5))
            .value("SALARY", TemporalValue::of(&[(1, 5, Value::Int(1))]))
            .finish(&scheme)
            .unwrap();
        r.insert(t.clone()).unwrap();
        r.insert(t.clone()).unwrap(); // duplicate: silent no-op
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn set_equality_is_order_insensitive() {
        let a = Relation::with_tuples(
            emp_scheme(),
            vec![emp("A", &[(1, 2)], 1), emp("B", &[(3, 4)], 2)],
        )
        .unwrap();
        let b = Relation::with_tuples(
            emp_scheme(),
            vec![emp("B", &[(3, 4)], 2), emp("A", &[(1, 2)], 1)],
        )
        .unwrap();
        assert_eq!(a, b);
        let c = Relation::with_tuples(emp_scheme(), vec![emp("A", &[(1, 2)], 1)]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn segment_cells_counts_storage() {
        let mut r = Relation::new(emp_scheme());
        r.insert(emp("John", &[(1, 10)], 25_000)).unwrap();
        // NAME constant (1 segment) + SALARY constant (1 segment).
        assert_eq!(r.segment_cells(), 2);
    }

    #[test]
    fn insert_validates_scheme() {
        let mut r = Relation::new(emp_scheme());
        let alien_scheme = Scheme::builder()
            .key_attr("ID", ValueKind::Int, ls(0, 10))
            .build()
            .unwrap();
        let t = Tuple::builder(ls(0, 5))
            .constant("ID", 7i64)
            .finish(&alien_scheme)
            .unwrap();
        assert!(r.insert(t).is_err());
    }

    #[test]
    fn positional_scan_api() {
        let mut r = Relation::new(emp_scheme());
        r.insert(emp("John", &[(1, 10)], 25_000)).unwrap();
        r.insert(emp("Mary", &[(5, 20)], 30_000)).unwrap();
        r.insert(emp("Igor", &[(8, 30)], 20_000)).unwrap();

        assert_eq!(r.tuple_at(1), Some(&r.tuples()[1]));
        assert_eq!(r.tuple_at(3), None);

        let picked: Vec<&Tuple> = r.scan_positions(&[2, 0, 99]).collect();
        assert_eq!(picked, vec![&r.tuples()[2], &r.tuples()[0]]);

        let sub = r.subset_at_positions(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert!(sub.find_by_key(&[Value::str("John")]).is_some());
        assert!(sub.find_by_key(&[Value::str("Igor")]).is_some());
        assert!(sub.find_by_key(&[Value::str("Mary")]).is_none());
        assert_eq!(sub.scheme(), r.scheme());
    }

    #[test]
    fn display_renders_scheme_and_tuples() {
        let mut r = Relation::new(emp_scheme());
        r.insert(emp("John", &[(1, 10)], 25_000)).unwrap();
        let text = r.to_string();
        assert!(text.contains("scheme"));
        assert!(text.contains("John"));
    }
}
