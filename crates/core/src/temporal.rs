//! Temporal values: partial functions from `T` into a value domain.
//!
//! This is the defining move of HRDM (paper §3): "the values of all
//! attributes [are] functions from time points to simple domains". A
//! [`TemporalValue`] is one such partial function `f : T → D_i` (or `T → T`
//! for time-valued attributes), represented as piecewise-constant segments.

use crate::errors::{HrdmError, Result};
use crate::value::Value;
use hrdm_time::{Chronon, Interval, Lifespan};
use std::collections::BTreeSet;
use std::fmt;

/// A partial function from the time domain `T` into atomic values, stored as
/// piecewise-constant segments in canonical form.
///
/// # Canonical form
///
/// Segments are sorted by interval start, pairwise disjoint, and *maximal*:
/// two adjacent segments never carry the same value (they would have been
/// merged). Therefore structural equality coincides with function equality,
/// which the set-based algebra relies on.
///
/// Per-chronon data needs unit-width segments, so this representation loses
/// no generality; the succinct encodings live one level down, in the
/// representation level (`hrdm-interp`, paper Fig. 9).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct TemporalValue {
    /// Canonical `(interval, value)` segments.
    segs: Vec<(Interval, Value)>,
}

impl TemporalValue {
    /// The nowhere-defined function (an attribute that never has a value).
    pub fn empty() -> TemporalValue {
        TemporalValue { segs: Vec::new() }
    }

    /// The constant function mapping every chronon of `span` to `value` —
    /// an inhabitant of the paper's constant subdomain `CD`.
    pub fn constant(span: &Lifespan, value: Value) -> TemporalValue {
        TemporalValue {
            segs: span
                .intervals()
                .iter()
                .map(|iv| (*iv, value.clone()))
                .collect(),
        }
    }

    /// Builds a function from arbitrary `(interval, value)` pairs.
    ///
    /// Overlapping pairs with equal values are merged; overlapping pairs with
    /// different values are rejected with
    /// [`HrdmError::ConflictingSegments`] — they would not describe a
    /// function.
    pub fn from_segments<I>(segments: I) -> Result<TemporalValue>
    where
        I: IntoIterator<Item = (Interval, Value)>,
    {
        let mut segs: Vec<(Interval, Value)> = segments.into_iter().collect();
        segs.sort_by_key(|(iv, _)| (iv.lo(), iv.hi()));
        let mut out: Vec<(Interval, Value)> = Vec::with_capacity(segs.len());
        for (iv, v) in segs {
            match out.last_mut() {
                Some((last_iv, last_v)) if last_iv.overlaps(&iv) => {
                    if *last_v != v {
                        return Err(HrdmError::ConflictingSegments);
                    }
                    *last_iv = last_iv.hull(&iv);
                }
                Some((last_iv, last_v)) if last_iv.adjacent(&iv) && *last_v == v => {
                    *last_iv = last_iv.hull(&iv);
                }
                _ => out.push((iv, v)),
            }
        }
        Ok(TemporalValue { segs: out })
    }

    /// Builds a function from `(lo, hi, value)` tick triples (test/example
    /// convenience). Panics on malformed input — use [`from_segments`] for
    /// fallible construction.
    ///
    /// [`from_segments`]: TemporalValue::from_segments
    pub fn of(triples: &[(i64, i64, Value)]) -> TemporalValue {
        TemporalValue::from_segments(
            triples
                .iter()
                .map(|(lo, hi, v)| (Interval::of(*lo, *hi), v.clone())),
        )
        // lint: no-panic-ok(documented contract of this literal-building convenience constructor)
        .expect("TemporalValue::of requires non-conflicting segments")
    }

    /// A function defined at a single chronon.
    pub fn at_point(t: impl Into<Chronon>, value: Value) -> TemporalValue {
        TemporalValue {
            segs: vec![(Interval::point(t.into()), value)],
        }
    }

    /// The canonical segments.
    pub fn segments(&self) -> &[(Interval, Value)] {
        &self.segs
    }

    /// Number of canonical segments (a size measure for benches).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// Is the function nowhere defined?
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// The function's domain of definition, as a lifespan.
    pub fn domain(&self) -> Lifespan {
        Lifespan::from_intervals(self.segs.iter().map(|(iv, _)| *iv))
    }

    /// `f(t)` — the value at chronon `t`, or `None` where undefined.
    ///
    /// The paper (§3): "the value of t(A)(s) is undefined for any s not in
    /// this time period. In this context undefined means that the attribute
    /// is not relevant at such times, and thus does not exist."
    pub fn at(&self, t: Chronon) -> Option<&Value> {
        self.segs
            .binary_search_by(|(iv, _)| {
                if iv.hi() < t {
                    std::cmp::Ordering::Less
                } else if iv.lo() > t {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok()
            .map(|i| &self.segs[i].1)
    }

    /// Is this a constant function (at most one distinct value) — i.e. an
    /// inhabitant of `CD`?
    pub fn is_constant(&self) -> bool {
        self.segs.windows(2).all(|w| w[0].1 == w[1].1)
    }

    /// The single value of a non-empty constant function.
    pub fn constant_value(&self) -> Option<&Value> {
        if self.is_constant() {
            self.segs.first().map(|(_, v)| v)
        } else {
            None
        }
    }

    /// The restriction `f|_L` (paper §3 notation) to lifespan `L`.
    pub fn restrict(&self, span: &Lifespan) -> TemporalValue {
        let mut out: Vec<(Interval, Value)> = Vec::new();
        for (iv, v) in &self.segs {
            let clipped = span.clamp(*iv);
            for run in clipped.intervals() {
                // Runs arrive sorted; merging with the previous output
                // segment keeps canonical maximality across segment borders.
                match out.last_mut() {
                    Some((last_iv, last_v)) if last_iv.adjacent(run) && last_v == v => {
                        *last_iv = last_iv.hull(run);
                    }
                    _ => out.push((*run, v.clone())),
                }
            }
        }
        TemporalValue { segs: out }
    }

    /// Do two partial functions agree wherever both are defined? (This is
    /// the function-level core of tuple *mergability*, paper §4.1 cond. 3.)
    pub fn compatible_with(&self, other: &TemporalValue) -> bool {
        // Two-pointer sweep over both canonical segment lists.
        let (mut i, mut j) = (0, 0);
        while i < self.segs.len() && j < other.segs.len() {
            let (a_iv, a_v) = &self.segs[i];
            let (b_iv, b_v) = &other.segs[j];
            if a_iv.overlaps(b_iv) && a_v != b_v {
                return false;
            }
            if a_iv.hi() < b_iv.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        true
    }

    /// The union `f ∪ g` of two compatible partial functions (used by tuple
    /// merge, paper §4.1: `(t1 + t2).v(A) = t1.v(A) ∪ t2.v(A)`).
    pub fn try_union(&self, other: &TemporalValue) -> Result<TemporalValue> {
        TemporalValue::from_segments(self.segs.iter().cloned().chain(other.segs.iter().cloned()))
    }

    /// The set of distinct values in the function's image.
    pub fn image(&self) -> BTreeSet<Value> {
        self.segs.iter().map(|(_, v)| v.clone()).collect()
    }

    /// For a time-valued function (`DOM ⊆ TT`): the image as a lifespan —
    /// "the set of times that t(A) maps to" (paper §4.4, dynamic TIME-SLICE).
    ///
    /// Errors if any value in the image is not a time value.
    pub fn image_lifespan(&self) -> Result<Lifespan> {
        let mut chronons = Vec::with_capacity(self.segs.len());
        for (_, v) in &self.segs {
            match v {
                Value::Time(t) => chronons.push(*t),
                other => {
                    return Err(HrdmError::IncomparableValues {
                        left: crate::domain::ValueKind::Time,
                        right: other.kind(),
                    })
                }
            }
        }
        Ok(Lifespan::from_chronons(chronons))
    }

    /// The set of times at which `pred` holds of the value — the engine
    /// behind SELECT-WHEN (paper §4.3).
    pub fn when<F>(&self, mut pred: F) -> Lifespan
    where
        F: FnMut(&Value) -> bool,
    {
        Lifespan::from_intervals(self.segs.iter().filter(|(_, v)| pred(v)).map(|(iv, _)| *iv))
    }

    /// The set of times at which both functions are defined and the ordering
    /// of their values satisfies `test` — the segment-wise engine behind
    /// θ-joins and attribute-to-attribute predicates. Runs over canonical
    /// segments (piecewise), never over individual chronons.
    pub fn when_compare<F>(&self, other: &TemporalValue, mut test: F) -> Result<Lifespan>
    where
        F: FnMut(std::cmp::Ordering) -> bool,
    {
        let mut hits = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.segs.len() && j < other.segs.len() {
            let (a_iv, a_v) = &self.segs[i];
            let (b_iv, b_v) = &other.segs[j];
            if let Some(piece) = a_iv.intersect(b_iv) {
                if test(a_v.try_cmp(b_v)?) {
                    hits.push(piece);
                }
            }
            if a_iv.hi() < b_iv.hi() {
                i += 1;
            } else {
                j += 1;
            }
        }
        Ok(Lifespan::from_intervals(hits))
    }

    /// Iterates `(chronon, value)` pairs over the whole domain. Intended for
    /// small functions (tests, figures, snapshot semantics).
    pub fn iter_points(&self) -> impl Iterator<Item = (Chronon, &Value)> + '_ {
        self.segs
            .iter()
            .flat_map(|(iv, v)| iv.chronons().map(move |t| (t, v)))
    }
}

impl fmt::Debug for TemporalValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for TemporalValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segs.is_empty() {
            return f.write_str("⊥");
        }
        f.write_str("{")?;
        for (i, (iv, v)) in self.segs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{iv}→{v}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn salary() -> TemporalValue {
        // John's salary history: 25K on [1,4], 30K on [5,9], back to 25K on [12,14].
        TemporalValue::of(&[
            (1, 4, Value::Int(25_000)),
            (5, 9, Value::Int(30_000)),
            (12, 14, Value::Int(25_000)),
        ])
    }

    #[test]
    fn canonical_merges_adjacent_equal_values() {
        let f = TemporalValue::of(&[(1, 3, Value::Int(7)), (4, 6, Value::Int(7))]);
        assert_eq!(f.segment_count(), 1);
        assert_eq!(f.segments()[0].0, Interval::of(1, 6));
    }

    #[test]
    fn adjacent_different_values_stay_separate() {
        let f = salary();
        assert_eq!(f.segment_count(), 3);
    }

    #[test]
    fn overlapping_equal_values_merge() {
        let f = TemporalValue::from_segments(vec![
            (Interval::of(1, 5), Value::Int(7)),
            (Interval::of(3, 9), Value::Int(7)),
        ])
        .unwrap();
        assert_eq!(f.segments(), &[(Interval::of(1, 9), Value::Int(7))]);
    }

    #[test]
    fn conflicting_overlap_rejected() {
        let err = TemporalValue::from_segments(vec![
            (Interval::of(1, 5), Value::Int(7)),
            (Interval::of(5, 9), Value::Int(8)),
        ])
        .unwrap_err();
        assert_eq!(err, HrdmError::ConflictingSegments);
    }

    #[test]
    fn at_looks_up_values_and_undefined_gaps() {
        let f = salary();
        assert_eq!(f.at(Chronon::new(1)), Some(&Value::Int(25_000)));
        assert_eq!(f.at(Chronon::new(7)), Some(&Value::Int(30_000)));
        assert_eq!(f.at(Chronon::new(10)), None); // gap: fired
        assert_eq!(f.at(Chronon::new(13)), Some(&Value::Int(25_000))); // rehired
        assert_eq!(f.at(Chronon::new(0)), None);
        assert_eq!(f.at(Chronon::new(15)), None);
    }

    #[test]
    fn domain_reflects_gaps() {
        assert_eq!(salary().domain(), Lifespan::of(&[(1, 9), (12, 14)]));
        assert!(TemporalValue::empty().domain().is_empty());
    }

    #[test]
    fn constant_functions() {
        let span = Lifespan::of(&[(1, 3), (8, 9)]);
        let f = TemporalValue::constant(&span, Value::str("Codd"));
        assert!(f.is_constant());
        assert_eq!(f.constant_value(), Some(&Value::str("Codd")));
        assert_eq!(f.domain(), span);
        assert!(!salary().is_constant());
        assert_eq!(salary().constant_value(), None);
        // Vacuously constant.
        assert!(TemporalValue::empty().is_constant());
        assert_eq!(TemporalValue::empty().constant_value(), None);
    }

    #[test]
    fn restrict_clips_domain() {
        let f = salary();
        let clipped = f.restrict(&Lifespan::of(&[(3, 6), (13, 20)]));
        assert_eq!(
            clipped.segments(),
            &[
                (Interval::of(3, 4), Value::Int(25_000)),
                (Interval::of(5, 6), Value::Int(30_000)),
                (Interval::of(13, 14), Value::Int(25_000)),
            ]
        );
        assert_eq!(f.restrict(&Lifespan::empty()), TemporalValue::empty());
        assert_eq!(f.restrict(&f.domain()), f);
    }

    #[test]
    fn restrict_remerges_across_run_borders() {
        // A single segment split by a fragmented lifespan must stay canonical.
        let f = TemporalValue::of(&[(1, 10, Value::Int(1))]);
        let r = f.restrict(&Lifespan::of(&[(2, 3), (4, 6)])); // adjacent runs merge in the lifespan
        assert_eq!(r.segments(), &[(Interval::of(2, 6), Value::Int(1))]);
    }

    #[test]
    fn compatibility_and_union() {
        let a = TemporalValue::of(&[(1, 5, Value::Int(1))]);
        let b = TemporalValue::of(&[(4, 8, Value::Int(1))]);
        let c = TemporalValue::of(&[(4, 8, Value::Int(2))]);
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
        assert_eq!(
            a.try_union(&b).unwrap(),
            TemporalValue::of(&[(1, 8, Value::Int(1))])
        );
        assert_eq!(a.try_union(&c).unwrap_err(), HrdmError::ConflictingSegments);
        // Disjoint domains always merge.
        let d = TemporalValue::of(&[(10, 12, Value::Int(9))]);
        assert_eq!(
            a.try_union(&d).unwrap().domain(),
            Lifespan::of(&[(1, 5), (10, 12)])
        );
    }

    #[test]
    fn image_and_when() {
        let f = salary();
        let img: Vec<Value> = f.image().into_iter().collect();
        assert_eq!(img, vec![Value::Int(25_000), Value::Int(30_000)]);
        // Paper §4.3's example: the times when John earned 30K.
        assert_eq!(
            f.when(|v| *v == Value::Int(30_000)),
            Lifespan::of(&[(5, 9)])
        );
        assert_eq!(f.when(|_| false), Lifespan::empty());
    }

    #[test]
    fn image_lifespan_for_time_valued_functions() {
        let f = TemporalValue::of(&[(1, 3, Value::time(10)), (4, 6, Value::time(12))]);
        assert_eq!(
            f.image_lifespan().unwrap(),
            Lifespan::of(&[(10, 10), (12, 12)])
        );
        let bad = TemporalValue::of(&[(1, 3, Value::Int(10))]);
        assert!(bad.image_lifespan().is_err());
    }

    #[test]
    fn iter_points_covers_domain() {
        let f = TemporalValue::of(&[(1, 2, Value::Int(5)), (4, 4, Value::Int(6))]);
        let pts: Vec<(i64, i64)> = f
            .iter_points()
            .map(|(t, v)| match v {
                Value::Int(i) => (t.tick(), *i),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pts, vec![(1, 5), (2, 5), (4, 6)]);
    }

    #[test]
    fn display_renders_segments() {
        let f = TemporalValue::of(&[(1, 4, Value::Int(25))]);
        assert_eq!(f.to_string(), "{[1,4]→25}");
        assert_eq!(TemporalValue::empty().to_string(), "⊥");
    }

    #[test]
    fn at_point_constructor() {
        let f = TemporalValue::at_point(5, Value::str("x"));
        assert_eq!(f.at(Chronon::new(5)), Some(&Value::str("x")));
        assert_eq!(f.domain().cardinality(), 1);
    }
}
