//! Tuples: the paper's pairs `t = <v, l>` of a value mapping and a lifespan.

use crate::attribute::Attribute;
use crate::errors::{HrdmError, Result};
use crate::scheme::Scheme;
use crate::temporal::TemporalValue;
use crate::value::Value;
use hrdm_time::{Chronon, Lifespan};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A tuple on a scheme `R`: an ordered pair `t = <v, l>` where `t.l` is the
/// tuple's lifespan and `t.v` maps each attribute `A ∈ R` to a partial
/// function in `t.l ∩ ALS(A, R) → DOM(A)` (paper §3).
///
/// The tuple lifespan and the attribute lifespans are *orthogonal* (paper
/// Fig. 7): "there is no value for an attribute in a tuple for any moment in
/// time not in the intersection of the lifespans of the tuple and the
/// attribute". That intersection is [`Tuple::vls`].
///
/// A `Tuple` does not carry its scheme; [`Tuple::validate`] (and the
/// insertion paths of [`crate::relation::Relation`]) check a tuple against
/// one.
///
/// Tuples are **immutable once built** and internally reference-counted:
/// [`Tuple::clone`] is an `Arc` bump, never a deep copy. This is what makes
/// relation snapshots (and the algebra operators, which clone tuples
/// liberally) cheap — a cloned relation of `n` tuples costs `n` pointer
/// copies, not `n` deep value-map copies.
#[derive(Clone, Eq)]
pub struct Tuple {
    repr: Arc<TupleRepr>,
}

/// The shared, immutable payload of a [`Tuple`].
#[derive(PartialEq, Eq, Hash, Debug)]
struct TupleRepr {
    lifespan: Lifespan,
    values: BTreeMap<Attribute, TemporalValue>,
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        // Clones share their repr, so identity decides most comparisons
        // (set-semantics dedup, `contains_tuple`) without a deep walk.
        Arc::ptr_eq(&self.repr, &other.repr) || self.repr == other.repr
    }
}

impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.repr.hash(state);
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tuple")
            .field("lifespan", &self.repr.lifespan)
            .field("values", &self.repr.values)
            .finish()
    }
}

impl Tuple {
    /// Wraps raw parts into the shared representation.
    fn new_raw(lifespan: Lifespan, values: BTreeMap<Attribute, TemporalValue>) -> Tuple {
        Tuple {
            repr: Arc::new(TupleRepr { lifespan, values }),
        }
    }

    /// Starts building a tuple with lifespan `l`.
    pub fn builder(lifespan: Lifespan) -> TupleBuilder {
        TupleBuilder {
            lifespan,
            values: Vec::new(),
        }
    }

    /// Assembles a tuple from raw parts without scheme validation.
    ///
    /// Intended for algebra internals and tests; user-facing construction
    /// goes through [`Tuple::builder`] + [`TupleBuilder::finish`].
    pub fn from_parts(lifespan: Lifespan, values: BTreeMap<Attribute, TemporalValue>) -> Tuple {
        Tuple::new_raw(lifespan, values)
    }

    /// `t.l` — the tuple's lifespan.
    pub fn lifespan(&self) -> &Lifespan {
        &self.repr.lifespan
    }

    /// `t.v(A)` — the temporal value of attribute `A`, if the tuple carries
    /// an entry for it. Validated tuples carry an entry (possibly the empty
    /// function) for every scheme attribute.
    pub fn value(&self, attr: &Attribute) -> Option<&TemporalValue> {
        self.repr.values.get(attr)
    }

    /// `t(A)(s)` — the value of attribute `A` at time `s`, or `None` where
    /// undefined ("the attribute is not relevant at such times", §3).
    pub fn at(&self, attr: &Attribute, s: Chronon) -> Option<&Value> {
        self.repr.values.get(attr).and_then(|tv| tv.at(s))
    }

    /// `vls(t, A, R) = t.l ∩ ALS(A, R)` — "the set of times over which the
    /// value is defined" (paper §3).
    pub fn vls(&self, scheme: &Scheme, attr: &Attribute) -> Result<Lifespan> {
        Ok(self.repr.lifespan.intersect(scheme.als(attr)?))
    }

    /// `vls(t, X, R)` for a set of attributes: the intersection of the
    /// individual value lifespans (paper §3's extension of `vls` to sets).
    pub fn vls_set(&self, scheme: &Scheme, attrs: &[Attribute]) -> Result<Lifespan> {
        let mut acc = self.repr.lifespan.clone();
        for a in attrs {
            acc = acc.intersect(scheme.als(a)?);
            if acc.is_empty() {
                break;
            }
        }
        Ok(acc)
    }

    /// The attributes for which this tuple carries entries.
    pub fn attributes(&self) -> impl Iterator<Item = &Attribute> + '_ {
        self.repr.values.keys()
    }

    /// The underlying value map.
    pub fn values(&self) -> &BTreeMap<Attribute, TemporalValue> {
        &self.repr.values
    }

    /// Validates the tuple against a scheme, enforcing the paper's
    /// restrictions:
    ///
    /// * every entry names a scheme attribute,
    /// * every value inhabits its attribute's value domain,
    /// * every value's domain of definition lies within
    ///   `vls(t, A, R) = t.l ∩ ALS(A, R)` (restriction (b)),
    /// * constant-domain (`CD`) attributes carry constant functions.
    pub fn validate(&self, scheme: &Scheme) -> Result<()> {
        for (attr, tv) in &self.repr.values {
            let def = scheme
                .attr(attr)
                .ok_or_else(|| HrdmError::UnknownAttribute(attr.clone()))?;
            for (_, v) in tv.segments() {
                if !def.domain().admits(v) {
                    return Err(HrdmError::DomainMismatch {
                        attribute: attr.clone(),
                        expected: def.domain().kind(),
                        found: v.kind(),
                    });
                }
            }
            let vls = self.repr.lifespan.intersect(def.lifespan());
            if !vls.contains_lifespan(&tv.domain()) {
                return Err(HrdmError::ValueOutsideLifespan {
                    attribute: attr.clone(),
                });
            }
            if def.domain().is_constant() && !tv.is_constant() {
                return Err(HrdmError::NotConstant(attr.clone()));
            }
        }
        Ok(())
    }

    /// The tuple's (constant) key value under `scheme`, as one atomic value
    /// per key attribute in key order.
    ///
    /// Key attributes draw from `CD`, so the value is time-invariant; a key
    /// attribute with an empty function has no key value, which is an error
    /// for tuples entering a keyed relation.
    pub fn key_values(&self, scheme: &Scheme) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(scheme.key().len());
        for k in scheme.key() {
            let tv = self
                .repr
                .values
                .get(k)
                .ok_or_else(|| HrdmError::MissingAttributeValue(k.clone()))?;
            match tv.constant_value() {
                Some(v) => out.push(v.clone()),
                None if tv.is_empty() => return Err(HrdmError::MissingKeyValue(k.clone())),
                None => return Err(HrdmError::NotConstant(k.clone())),
            }
        }
        Ok(out)
    }

    /// The restriction `t|_L`: lifespan clipped to `t.l ∩ L` and every value
    /// restricted accordingly. This is the tuple-level engine of TIME-SLICE
    /// and SELECT-WHEN.
    pub fn restrict(&self, span: &Lifespan) -> Tuple {
        let lifespan = self.repr.lifespan.intersect(span);
        let values = self
            .repr
            .values
            .iter()
            .map(|(a, tv)| (a.clone(), tv.restrict(&lifespan)))
            .collect();
        Tuple::new_raw(lifespan, values)
    }

    /// Clips every value to its `vls(t, A, R)` under `scheme` — the
    /// conforming view of a tuple after **schema evolution** shrank an
    /// attribute lifespan: values outside the new ALS become invisible
    /// rather than invalid (paper §2's reading of attribute lifespans).
    pub fn clipped_to_scheme(&self, scheme: &Scheme) -> Tuple {
        let values = self
            .repr
            .values
            .iter()
            .map(|(a, tv)| {
                let clipped = match scheme.als(a) {
                    Ok(als) => tv.restrict(&self.repr.lifespan.intersect(als)),
                    Err(_) => tv.clone(),
                };
                (a.clone(), clipped)
            })
            .collect();
        Tuple::new_raw(self.repr.lifespan.clone(), values)
    }

    /// Keeps only the entries for `attrs` (the tuple-level engine of
    /// PROJECT). The tuple lifespan is unchanged — the paper's PROJECT "does
    /// not change the values of any of the remaining attributes" (§4.2), and
    /// the tuple still describes the same object over the same span.
    pub fn project(&self, attrs: &[Attribute]) -> Tuple {
        let values = attrs
            .iter()
            .filter_map(|a| self.repr.values.get(a).map(|tv| (a.clone(), tv.clone())))
            .collect();
        Tuple::new_raw(self.repr.lifespan.clone(), values)
    }

    /// Concatenates two tuples over disjoint attribute sets, with the given
    /// result lifespan; each side's values are restricted to it. Engine of
    /// product and the joins, which differ only in how `l` is computed.
    pub(crate) fn concat_restricted(&self, other: &Tuple, lifespan: Lifespan) -> Tuple {
        let mut values: BTreeMap<Attribute, TemporalValue> = BTreeMap::new();
        for (a, tv) in self.repr.values.iter().chain(other.repr.values.iter()) {
            values.insert(a.clone(), tv.restrict(&lifespan));
        }
        Tuple::new_raw(lifespan, values)
    }

    /// Concatenates two tuples over disjoint attribute sets *without*
    /// restricting values: the paper's Cartesian product keeps each value on
    /// its own lifespan, leaving "null" (undefined) stretches inside the
    /// union lifespan (§5 discussion).
    pub(crate) fn concat_unrestricted(&self, other: &Tuple, lifespan: Lifespan) -> Tuple {
        let mut values: BTreeMap<Attribute, TemporalValue> = BTreeMap::new();
        for (a, tv) in self.repr.values.iter().chain(other.repr.values.iter()) {
            values.insert(a.clone(), tv.clone());
        }
        Tuple::new_raw(lifespan, values)
    }

    /// Mergability of two tuples on merge-compatible schemes (paper §4.1):
    ///
    /// 1. the schemes are merge-compatible (checked by the caller at the
    ///    relation level),
    /// 2. the tuples have the same key value,
    /// 3. "they do not contradict one another at any point in time": wherever
    ///    both tuples define a value for an attribute, the values agree (this
    ///    is precisely the condition making `t1.v(A) ∪ t2.v(A)` a function).
    pub fn mergable(&self, other: &Tuple, scheme: &Scheme) -> bool {
        match (self.key_values(scheme), other.key_values(scheme)) {
            (Ok(a), Ok(b)) if a == b => {}
            _ => return false,
        }
        self.repr
            .values
            .iter()
            .all(|(attr, tv)| match other.repr.values.get(attr) {
                Some(otv) => tv.compatible_with(otv),
                None => true,
            })
    }

    /// The merge `t1 + t2` (paper §4.1): `(t1+t2).l = t1.l ∪ t2.l` and
    /// `(t1+t2).v(A) = t1.v(A) ∪ t2.v(A)`.
    pub fn merge(&self, other: &Tuple) -> Result<Tuple> {
        let lifespan = self.repr.lifespan.union(&other.repr.lifespan);
        let mut values: BTreeMap<Attribute, TemporalValue> = self.repr.values.clone();
        for (attr, tv) in &other.repr.values {
            match values.get_mut(attr) {
                Some(mine) => {
                    *mine = mine
                        .try_union(tv)
                        .map_err(|_| HrdmError::ContradictoryValues {
                            attribute: attr.clone(),
                        })?;
                }
                None => {
                    values.insert(attr.clone(), tv.clone());
                }
            }
        }
        Ok(Tuple::new_raw(lifespan, values))
    }

    /// "Given a tuple t and a set of tuples S, t is *matched* in S if there
    /// is some tuple t' in S such that t is mergable with t'" (paper §4.1).
    pub fn matched_in<'a, I>(&self, tuples: I, scheme: &Scheme) -> bool
    where
        I: IntoIterator<Item = &'a Tuple>,
    {
        tuples.into_iter().any(|t| self.mergable(t, scheme))
    }

    /// Does the tuple carry any information at all (non-empty lifespan)?
    pub fn bears_information(&self) -> bool {
        !self.repr.lifespan.is_empty()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<l={}", self.repr.lifespan)?;
        for (a, tv) in &self.repr.values {
            write!(f, ", {a}={tv}")?;
        }
        f.write_str(">")
    }
}

/// Builder for validated tuples.
pub struct TupleBuilder {
    lifespan: Lifespan,
    values: Vec<(Attribute, Pending)>,
}

enum Pending {
    /// An explicit temporal function.
    Explicit(TemporalValue),
    /// A constant over the attribute's whole `vls(t, A, R)`, resolved when
    /// the scheme is known.
    ConstantOverVls(Value),
}

impl TupleBuilder {
    /// Sets an explicit temporal function for `attr`.
    pub fn value(mut self, attr: impl Into<Attribute>, tv: TemporalValue) -> TupleBuilder {
        self.values.push((attr.into(), Pending::Explicit(tv)));
        self
    }

    /// Sets `attr` to a constant over its entire value lifespan
    /// `t.l ∩ ALS(A, R)` — the natural way to populate key attributes.
    pub fn constant(mut self, attr: impl Into<Attribute>, v: impl Into<Value>) -> TupleBuilder {
        self.values
            .push((attr.into(), Pending::ConstantOverVls(v.into())));
        self
    }

    /// Resolves pending values against `scheme`, fills missing attributes
    /// with the empty function, and validates the result.
    pub fn finish(self, scheme: &Scheme) -> Result<Tuple> {
        let mut values: BTreeMap<Attribute, TemporalValue> = BTreeMap::new();
        for (attr, pending) in self.values {
            if values.contains_key(&attr) {
                return Err(HrdmError::DuplicateAttribute(attr));
            }
            let tv = match pending {
                Pending::Explicit(tv) => tv,
                Pending::ConstantOverVls(v) => {
                    let als = scheme.als(&attr)?;
                    TemporalValue::constant(&self.lifespan.intersect(als), v)
                }
            };
            values.insert(attr, tv);
        }
        for def in scheme.attrs() {
            values
                .entry(def.name().clone())
                .or_insert_with(TemporalValue::empty);
        }
        let tuple = Tuple::new_raw(self.lifespan, values);
        tuple.validate(scheme)?;
        Ok(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{HistoricalDomain, ValueKind};

    fn ls(lo: i64, hi: i64) -> Lifespan {
        Lifespan::interval(lo, hi)
    }

    fn emp_scheme() -> Scheme {
        Scheme::builder()
            .key_attr("NAME", ValueKind::Str, ls(0, 100))
            .attr("SALARY", HistoricalDomain::int(), ls(0, 100))
            .attr(
                "DEPT",
                HistoricalDomain::string(),
                Lifespan::of(&[(0, 49), (60, 100)]),
            )
            .build()
            .unwrap()
    }

    fn john() -> Tuple {
        Tuple::builder(Lifespan::of(&[(10, 30), (40, 70)]))
            .constant("NAME", "John")
            .value(
                "SALARY",
                TemporalValue::of(&[
                    (10, 20, Value::Int(25_000)),
                    (21, 30, Value::Int(30_000)),
                    (40, 70, Value::Int(30_000)),
                ]),
            )
            .value(
                "DEPT",
                TemporalValue::of(&[(10, 30, Value::str("Toys")), (40, 49, Value::str("Shoes"))]),
            )
            .finish(&emp_scheme())
            .unwrap()
    }

    #[test]
    fn builder_fills_constant_over_vls() {
        let t = john();
        let name = t.value(&Attribute::new("NAME")).unwrap();
        assert!(name.is_constant());
        // NAME's vls = t.l ∩ ALS(NAME) = t.l
        assert_eq!(name.domain(), Lifespan::of(&[(10, 30), (40, 70)]));
    }

    #[test]
    fn vls_is_intersection_of_tuple_and_attribute_lifespans() {
        // Paper Fig. 7: the value only exists on X ∩ Y.
        let t = john();
        let s = emp_scheme();
        assert_eq!(
            t.vls(&s, &Attribute::new("DEPT")).unwrap(),
            Lifespan::of(&[(10, 30), (40, 49), (60, 70)])
        );
        assert_eq!(
            t.vls(&s, &Attribute::new("SALARY")).unwrap(),
            Lifespan::of(&[(10, 30), (40, 70)])
        );
    }

    #[test]
    fn vls_set_intersects_across_attributes() {
        let t = john();
        let s = emp_scheme();
        let x = [Attribute::new("SALARY"), Attribute::new("DEPT")];
        assert_eq!(
            t.vls_set(&s, &x).unwrap(),
            Lifespan::of(&[(10, 30), (40, 49), (60, 70)])
        );
    }

    #[test]
    fn at_reads_point_values() {
        let t = john();
        assert_eq!(
            t.at(&Attribute::new("SALARY"), Chronon::new(15)),
            Some(&Value::Int(25_000))
        );
        assert_eq!(
            t.at(&Attribute::new("SALARY"), Chronon::new(35)),
            None // gap between incarnations
        );
        assert_eq!(t.at(&Attribute::new("DEPT"), Chronon::new(55)), None);
    }

    #[test]
    fn validate_rejects_value_outside_vls() {
        let s = emp_scheme();
        let err = Tuple::builder(ls(10, 20))
            .constant("NAME", "X")
            .value("SALARY", TemporalValue::of(&[(15, 25, Value::Int(1))]))
            .finish(&s)
            .unwrap_err();
        assert_eq!(
            err,
            HrdmError::ValueOutsideLifespan {
                attribute: Attribute::new("SALARY")
            }
        );
    }

    #[test]
    fn validate_rejects_domain_mismatch() {
        let s = emp_scheme();
        let err = Tuple::builder(ls(10, 20))
            .constant("NAME", "X")
            .value("SALARY", TemporalValue::of(&[(10, 12, Value::str("oops"))]))
            .finish(&s)
            .unwrap_err();
        assert!(matches!(err, HrdmError::DomainMismatch { .. }));
    }

    #[test]
    fn validate_rejects_nonconstant_key() {
        let s = emp_scheme();
        let err = Tuple::builder(ls(10, 20))
            .value(
                "NAME",
                TemporalValue::of(&[(10, 15, Value::str("A")), (16, 20, Value::str("B"))]),
            )
            .finish(&s)
            .unwrap_err();
        assert_eq!(err, HrdmError::NotConstant(Attribute::new("NAME")));
    }

    #[test]
    fn validate_rejects_unknown_attribute() {
        let s = emp_scheme();
        let err = Tuple::builder(ls(10, 20))
            .constant("BONUS", 5i64)
            .finish(&s)
            .unwrap_err();
        assert_eq!(err, HrdmError::UnknownAttribute(Attribute::new("BONUS")));
    }

    #[test]
    fn key_values_extraction() {
        let t = john();
        assert_eq!(
            t.key_values(&emp_scheme()).unwrap(),
            vec![Value::str("John")]
        );
    }

    #[test]
    fn key_values_error_when_empty() {
        let s = emp_scheme();
        let t = Tuple::builder(ls(10, 20)).finish(&s).unwrap();
        assert_eq!(
            t.key_values(&s).unwrap_err(),
            HrdmError::MissingKeyValue(Attribute::new("NAME"))
        );
    }

    #[test]
    fn restrict_clips_tuple_and_values() {
        let t = john().restrict(&ls(25, 45));
        assert_eq!(t.lifespan(), &Lifespan::of(&[(25, 30), (40, 45)]));
        let salary = t.value(&Attribute::new("SALARY")).unwrap();
        assert_eq!(salary.domain(), Lifespan::of(&[(25, 30), (40, 45)]));
        assert_eq!(salary.at(Chronon::new(26)), Some(&Value::Int(30_000)));
    }

    #[test]
    fn project_keeps_lifespan() {
        let t = john().project(&[Attribute::new("NAME")]);
        assert_eq!(t.lifespan(), john().lifespan());
        assert!(t.value(&Attribute::new("SALARY")).is_none());
        assert!(t.value(&Attribute::new("NAME")).is_some());
    }

    #[test]
    fn mergable_requires_same_key_and_no_contradiction() {
        let s = emp_scheme();
        let early = Tuple::builder(ls(0, 9))
            .constant("NAME", "Ann")
            .value("SALARY", TemporalValue::of(&[(0, 9, Value::Int(10))]))
            .finish(&s)
            .unwrap();
        let late = Tuple::builder(ls(20, 29))
            .constant("NAME", "Ann")
            .value("SALARY", TemporalValue::of(&[(20, 29, Value::Int(12))]))
            .finish(&s)
            .unwrap();
        let other_person = Tuple::builder(ls(0, 9))
            .constant("NAME", "Bob")
            .finish(&s)
            .unwrap();

        assert!(early.mergable(&late, &s));
        assert!(!early.mergable(&other_person, &s));

        // Contradiction: overlapping lifespans with different salaries.
        let contradicting = Tuple::builder(ls(5, 9))
            .constant("NAME", "Ann")
            .value("SALARY", TemporalValue::of(&[(5, 9, Value::Int(99))]))
            .finish(&s)
            .unwrap();
        assert!(!early.mergable(&contradicting, &s));

        // Agreement on the overlap is fine.
        let agreeing = Tuple::builder(ls(5, 12))
            .constant("NAME", "Ann")
            .value(
                "SALARY",
                TemporalValue::of(&[(5, 9, Value::Int(10)), (10, 12, Value::Int(11))]),
            )
            .finish(&s)
            .unwrap();
        assert!(early.mergable(&agreeing, &s));
    }

    #[test]
    fn merge_unions_lifespans_and_values() {
        let s = emp_scheme();
        let early = Tuple::builder(ls(0, 9))
            .constant("NAME", "Ann")
            .value("SALARY", TemporalValue::of(&[(0, 9, Value::Int(10))]))
            .finish(&s)
            .unwrap();
        let late = Tuple::builder(ls(20, 29))
            .constant("NAME", "Ann")
            .value("SALARY", TemporalValue::of(&[(20, 29, Value::Int(12))]))
            .finish(&s)
            .unwrap();
        let merged = early.merge(&late).unwrap();
        assert_eq!(merged.lifespan(), &Lifespan::of(&[(0, 9), (20, 29)]));
        let sal = merged.value(&Attribute::new("SALARY")).unwrap();
        assert_eq!(sal.at(Chronon::new(5)), Some(&Value::Int(10)));
        assert_eq!(sal.at(Chronon::new(25)), Some(&Value::Int(12)));
        assert_eq!(sal.at(Chronon::new(15)), None);
        // The merged NAME is the union of two constants over the two spans.
        let name = merged.value(&Attribute::new("NAME")).unwrap();
        assert!(name.is_constant());
        assert_eq!(name.domain(), Lifespan::of(&[(0, 9), (20, 29)]));
    }

    #[test]
    fn matched_in_scans_a_set() {
        let s = emp_scheme();
        let a = Tuple::builder(ls(0, 9))
            .constant("NAME", "Ann")
            .finish(&s)
            .unwrap();
        let b = Tuple::builder(ls(10, 19))
            .constant("NAME", "Ann")
            .finish(&s)
            .unwrap();
        let c = Tuple::builder(ls(0, 9))
            .constant("NAME", "Cy")
            .finish(&s)
            .unwrap();
        let set = [b.clone(), c.clone()];
        assert!(a.matched_in(set.iter(), &s));
        let set2 = [c];
        assert!(!a.matched_in(set2.iter(), &s));
    }

    #[test]
    fn display_renders() {
        let text = john().to_string();
        assert!(text.contains("NAME"));
        assert!(text.contains("John"));
    }
}
