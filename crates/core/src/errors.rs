//! Error types for the HRDM model and algebra.

use crate::attribute::Attribute;
use std::fmt;

/// Everything that can go wrong constructing or operating on historical
/// relations.
///
/// The library never panics on malformed user input; every fallible public
/// entry point returns `Result<_, HrdmError>`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HrdmError {
    /// A scheme was declared with no attributes.
    EmptyScheme,
    /// The same attribute name appears twice in one scheme.
    DuplicateAttribute(Attribute),
    /// A declared key attribute is not part of the scheme.
    KeyNotInScheme(Attribute),
    /// A scheme declared no key attributes.
    EmptyKey,
    /// A key attribute's lifespan differs from the scheme lifespan (the §2
    /// covenant "the lifespan of the key attributes must be the same as the
    /// lifespan of the entire relation schema").
    KeyLifespanCovenant(Attribute),
    /// Key attributes must draw from the constant subdomain `CD` (paper §3,
    /// scheme restriction (a)).
    KeyNotConstant(Attribute),
    /// An operation referenced an attribute the scheme does not contain.
    UnknownAttribute(Attribute),
    /// An operation referenced a relation the database does not contain.
    UnknownRelation(String),
    /// A relation was created under a name the catalog already holds.
    DuplicateRelation(String),
    /// A value's kind does not match the attribute's declared value domain.
    DomainMismatch {
        /// Attribute whose domain was violated.
        attribute: Attribute,
        /// Domain the scheme declares.
        expected: crate::domain::ValueKind,
        /// Kind of the offending value.
        found: crate::domain::ValueKind,
    },
    /// A temporal value strayed outside `vls(t, A, R) = t.l ∩ ALS(A, R)`.
    ValueOutsideLifespan {
        /// Attribute whose value was out of bounds.
        attribute: Attribute,
    },
    /// A constant-domain attribute was given a non-constant function.
    NotConstant(Attribute),
    /// Two values of incomparable kinds were compared by a θ predicate.
    IncomparableValues {
        /// Kind of the left operand.
        left: crate::domain::ValueKind,
        /// Kind of the right operand.
        right: crate::domain::ValueKind,
    },
    /// Two tuples with the same key value were inserted into one relation
    /// (violates the relation definition of paper §3).
    KeyViolation {
        /// Rendering of the duplicated key value.
        key: String,
    },
    /// A tuple presented for insertion has no defined key value anywhere in
    /// its lifespan.
    MissingKeyValue(Attribute),
    /// Operand schemes are not union-compatible (`A1 = A2 ∧ DOM1 = DOM2`).
    NotUnionCompatible,
    /// Operand schemes are not merge-compatible (union-compatible + same key).
    NotMergeCompatible,
    /// Operands of a product/θ-join must have disjoint attribute sets.
    AttributesNotDisjoint(Attribute),
    /// A dynamic TIME-SLICE or TIME-JOIN was applied at an attribute whose
    /// domain is not time-valued (`DOM(A) ⊄ TT`, paper §4.4).
    NotTimeValued(Attribute),
    /// Common attributes of a natural join disagree on their domains.
    CommonAttributeDomainMismatch(Attribute),
    /// A float value was constructed from a NaN.
    NanFloat,
    /// Two temporal functions being merged contradict each other at a time
    /// both are defined (mergability condition 3, paper §4.1).
    ContradictoryValues {
        /// Attribute where the contradiction occurred.
        attribute: Attribute,
    },
    /// Two segments of one temporal function overlap with different values —
    /// the pairs would not describe a (partial) *function* `T → D`.
    ConflictingSegments,
    /// A tuple is missing a value entry for a scheme attribute.
    ///
    /// An *empty* function is legal (the attribute is simply never defined for
    /// that object); an absent entry usually indicates builder misuse, so it
    /// is reported distinctly.
    MissingAttributeValue(Attribute),
}

impl fmt::Display for HrdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HrdmError::EmptyScheme => write!(f, "relation scheme has no attributes"),
            HrdmError::DuplicateAttribute(a) => {
                write!(f, "duplicate attribute `{a}` in scheme")
            }
            HrdmError::KeyNotInScheme(a) => {
                write!(f, "key attribute `{a}` is not in the scheme")
            }
            HrdmError::EmptyKey => write!(f, "relation scheme declares no key"),
            HrdmError::KeyLifespanCovenant(a) => {
                write!(f, "key attribute `{a}` must span the whole scheme lifespan")
            }
            HrdmError::KeyNotConstant(a) => write!(
                f,
                "key attribute `{a}` must be constant-valued (DOM(K) ⊆ CD)"
            ),
            HrdmError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            HrdmError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            HrdmError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` already exists")
            }
            HrdmError::DomainMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "attribute `{attribute}` expects {expected} values, found {found}"
            ),
            HrdmError::ValueOutsideLifespan { attribute } => write!(
                f,
                "value of `{attribute}` is defined outside t.l ∩ ALS({attribute})"
            ),
            HrdmError::NotConstant(a) => {
                write!(f, "attribute `{a}` requires a constant-valued function")
            }
            HrdmError::IncomparableValues { left, right } => {
                write!(f, "cannot compare {left} with {right}")
            }
            HrdmError::KeyViolation { key } => {
                write!(f, "key violation: key value {key} already present")
            }
            HrdmError::MissingKeyValue(a) => {
                write!(f, "tuple has no defined value for key attribute `{a}`")
            }
            HrdmError::NotUnionCompatible => {
                write!(f, "operand schemes are not union-compatible")
            }
            HrdmError::NotMergeCompatible => {
                write!(f, "operand schemes are not merge-compatible")
            }
            HrdmError::AttributesNotDisjoint(a) => write!(
                f,
                "operand schemes share attribute `{a}`; product/θ-join requires disjoint attributes"
            ),
            HrdmError::NotTimeValued(a) => {
                write!(f, "attribute `{a}` is not time-valued (DOM(A) ⊄ TT)")
            }
            HrdmError::CommonAttributeDomainMismatch(a) => write!(
                f,
                "common attribute `{a}` has different domains in the two schemes"
            ),
            HrdmError::NanFloat => write!(f, "NaN is not a valid HRDM float value"),
            HrdmError::ContradictoryValues { attribute } => write!(
                f,
                "tuples contradict each other on `{attribute}` at a shared time"
            ),
            HrdmError::ConflictingSegments => write!(
                f,
                "overlapping segments with different values do not form a function"
            ),
            HrdmError::MissingAttributeValue(a) => {
                write!(f, "tuple has no value entry for attribute `{a}`")
            }
        }
    }
}

impl std::error::Error for HrdmError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, HrdmError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::domain::ValueKind;

    #[test]
    fn display_is_informative() {
        let e = HrdmError::DomainMismatch {
            attribute: Attribute::new("SALARY"),
            expected: ValueKind::Int,
            found: ValueKind::Str,
        };
        let msg = e.to_string();
        assert!(msg.contains("SALARY"));
        assert!(msg.contains("int"));
        assert!(msg.contains("string"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(HrdmError::EmptyKey);
        assert_eq!(e.to_string(), "relation scheme declares no key");
    }
}
