//! Property tests for the normalization extension: BCNF decomposition is
//! attribute-preserving and always reaches BCNF fragments.

use hrdm_core::constraints::{candidate_keys, closure, decompose_bcnf, is_bcnf, is_superkey, Fd};
use hrdm_core::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

const NAMES: [&str; 4] = ["A", "B", "C", "D"];

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 10);
    Scheme::builder()
        .key_attr("A", ValueKind::Int, era.clone())
        .attr("B", HistoricalDomain::int(), era.clone())
        .attr("C", HistoricalDomain::int(), era.clone())
        .attr("D", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn subset(mask: u8) -> BTreeSet<Attribute> {
    (0..4)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| Attribute::new(NAMES[i]))
        .collect()
}

fn fds_strategy() -> impl Strategy<Value = Vec<Fd>> {
    prop::collection::vec((1u8..16, 1u8..16), 0..5).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(l, r)| Fd {
                lhs: subset(l),
                rhs: subset(r),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn closure_is_monotone_and_idempotent(fds in fds_strategy(), x in 0u8..16) {
        let x = subset(x);
        let c = closure(&x, &fds);
        prop_assert!(x.is_subset(&c));
        prop_assert_eq!(closure(&c, &fds), c);
    }

    #[test]
    fn decomposition_reaches_bcnf_and_preserves_attributes(fds in fds_strategy()) {
        let s = scheme();
        let fragments = decompose_bcnf(&s, &fds).unwrap();
        prop_assert!(!fragments.is_empty());
        // Every fragment is in BCNF (closure characterization).
        for frag in &fragments {
            prop_assert!(is_bcnf(frag, &fds), "fragment {frag} not BCNF");
        }
        // Attribute preservation: the fragments cover the original scheme,
        // with ALS intact.
        let mut covered: BTreeSet<Attribute> = BTreeSet::new();
        for frag in &fragments {
            for def in frag.attrs() {
                covered.insert(def.name().clone());
                prop_assert_eq!(
                    def.lifespan(),
                    s.als(def.name()).unwrap(),
                    "ALS changed for {}", def.name()
                );
            }
        }
        let all: BTreeSet<Attribute> = s.attr_names().cloned().collect();
        prop_assert_eq!(covered, all);
    }

    #[test]
    fn candidate_keys_are_minimal_superkeys(fds in fds_strategy()) {
        let s = scheme();
        let keys = candidate_keys(&s, &fds);
        prop_assert!(!keys.is_empty(), "every scheme has at least one key (all attrs)");
        for key in &keys {
            prop_assert!(is_superkey(&s, key, &fds));
            // Minimality: no proper subset is a superkey.
            for drop in key.iter() {
                let mut smaller = key.clone();
                smaller.remove(drop);
                if !smaller.is_empty() {
                    prop_assert!(!is_superkey(&s, &smaller, &fds));
                } else {
                    // The empty set is a superkey only if the closure of ∅
                    // covers everything; then no single attribute would be
                    // a candidate key, contradiction.
                    prop_assert!(!is_superkey(&s, &smaller, &fds));
                }
            }
        }
        // Keys are pairwise incomparable.
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                prop_assert!(!a.is_subset(b) && !b.is_subset(a));
            }
        }
    }
}
