//! Property tests for the model level: temporal values and tuples are
//! cross-checked against naive per-chronon models on a bounded universe.

use hrdm_core::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

const LO: i64 = 0;
const HI: i64 = 30;

/// Naive model of a partial function: chronon → value.
fn to_map(tv: &TemporalValue) -> BTreeMap<i64, Value> {
    tv.iter_points()
        .map(|(t, v)| (t.tick(), v.clone()))
        .collect()
}

/// Arbitrary temporal value over a small universe; segments kept disjoint by
/// construction.
fn temporal_strategy() -> impl Strategy<Value = TemporalValue> {
    prop::collection::vec((LO..=HI, 0i64..6, 0i64..4), 0..6).prop_map(|raw| {
        let mut segs = Vec::new();
        let mut cursor = LO;
        let mut sorted = raw;
        sorted.sort_by_key(|&(lo, _, _)| lo);
        for (lo, len, v) in sorted {
            let lo = lo.max(cursor);
            let hi = (lo + len).min(HI);
            if lo > HI || lo > hi {
                continue;
            }
            segs.push((Interval::of(lo, hi), Value::Int(v)));
            cursor = hi + 2;
        }
        TemporalValue::from_segments(segs).expect("disjoint by construction")
    })
}

fn lifespan_strategy() -> impl Strategy<Value = Lifespan> {
    prop::collection::vec((LO..=HI, 0i64..8), 0..4).prop_map(|pairs| {
        Lifespan::from_intervals(
            pairs
                .into_iter()
                .map(|(lo, len)| Interval::of(lo, (lo + len).min(HI))),
        )
    })
}

proptest! {
    #[test]
    fn at_matches_point_model(tv in temporal_strategy(), t in LO..=HI) {
        let model = to_map(&tv);
        prop_assert_eq!(tv.at(Chronon::new(t)), model.get(&t));
    }

    #[test]
    fn restrict_matches_point_model(tv in temporal_strategy(), ls in lifespan_strategy()) {
        let restricted = tv.restrict(&ls);
        let model: BTreeMap<i64, Value> = to_map(&tv)
            .into_iter()
            .filter(|(t, _)| ls.contains(Chronon::new(*t)))
            .collect();
        prop_assert_eq!(to_map(&restricted), model);
        // And the restriction is canonical: restricting again is identity.
        prop_assert_eq!(restricted.restrict(&ls), restricted);
    }

    #[test]
    fn domain_matches_point_model(tv in temporal_strategy()) {
        let model: Lifespan = to_map(&tv).keys().map(|&t| Chronon::new(t)).collect();
        prop_assert_eq!(tv.domain(), model);
    }

    #[test]
    fn try_union_agrees_with_map_union_when_compatible(
        a in temporal_strategy(),
        b in temporal_strategy(),
    ) {
        let (ma, mb) = (to_map(&a), to_map(&b));
        let compatible = ma
            .iter()
            .all(|(t, v)| mb.get(t).is_none_or(|w| w == v));
        prop_assert_eq!(a.compatible_with(&b), compatible);
        match a.try_union(&b) {
            Ok(u) => {
                prop_assert!(compatible);
                let mut merged = ma;
                merged.extend(mb);
                prop_assert_eq!(to_map(&u), merged);
            }
            Err(_) => prop_assert!(!compatible),
        }
    }

    #[test]
    fn when_matches_point_model(tv in temporal_strategy(), c in 0i64..4) {
        let want: Lifespan = to_map(&tv)
            .iter()
            .filter(|(_, v)| **v == Value::Int(c))
            .map(|(&t, _)| Chronon::new(t))
            .collect();
        prop_assert_eq!(tv.when(|v| *v == Value::Int(c)), want);
    }

    #[test]
    fn when_compare_matches_point_model(
        a in temporal_strategy(),
        b in temporal_strategy(),
    ) {
        let (ma, mb) = (to_map(&a), to_map(&b));
        let want: Lifespan = ma
            .iter()
            .filter_map(|(t, v)| {
                mb.get(t).and_then(|w| {
                    (v.try_cmp(w).unwrap() == std::cmp::Ordering::Less)
                        .then_some(Chronon::new(*t))
                })
            })
            .collect();
        let got = a
            .when_compare(&b, |ord| ord == std::cmp::Ordering::Less)
            .unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn segments_are_canonical(tv in temporal_strategy(), ls in lifespan_strategy()) {
        for f in [tv.clone(), tv.restrict(&ls)] {
            let segs = f.segments();
            for w in segs.windows(2) {
                let ((a, va), (b, vb)) = (&w[0], &w[1]);
                prop_assert!(a.hi() < b.lo(), "unsorted/overlap: {:?}", segs);
                // Maximality: adjacent segments must differ in value.
                if a.hi().succ() == Some(b.lo()) {
                    prop_assert_ne!(va, vb, "non-maximal: {:?}", segs);
                }
            }
        }
    }
}

// ---- tuple-level properties -------------------------------------------

fn scheme() -> Scheme {
    let era = Lifespan::interval(LO, HI);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn tuple_strategy(key: i64) -> impl Strategy<Value = Tuple> {
    (lifespan_strategy(), temporal_strategy()).prop_map(move |(life, v)| {
        let s = scheme();
        let vls = life.intersect(s.als(&"V".into()).unwrap());
        Tuple::builder(life)
            .constant("K", key)
            .value("V", v.restrict(&vls))
            .finish(&s)
            .unwrap()
    })
}

proptest! {
    #[test]
    fn tuple_restrict_matches_pointwise(t in tuple_strategy(1), ls in lifespan_strategy()) {
        let r = t.restrict(&ls);
        prop_assert_eq!(r.lifespan(), &t.lifespan().intersect(&ls));
        for s in LO..=HI {
            let s = Chronon::new(s);
            let want = if ls.contains(s) { t.at(&"V".into(), s) } else { None };
            prop_assert_eq!(r.at(&"V".into(), s), want);
        }
        // Restriction preserves validity.
        prop_assert!(r.validate(&scheme()).is_ok());
    }

    #[test]
    fn merge_roundtrips_restriction(t in tuple_strategy(1), ls in lifespan_strategy()) {
        // Splitting a tuple by a lifespan and merging the halves restores it.
        let inside = t.restrict(&ls);
        let outside = t.restrict(&t.lifespan().difference(&ls));
        prop_assert!(inside.mergable(&outside, &scheme()) ||
            inside.key_values(&scheme()).is_err() ||
            outside.key_values(&scheme()).is_err());
        if inside.key_values(&scheme()).is_ok() && outside.key_values(&scheme()).is_ok() {
            let back = inside.merge(&outside).unwrap();
            prop_assert_eq!(back.lifespan(), t.lifespan());
            for s in LO..=HI {
                let s = Chronon::new(s);
                prop_assert_eq!(back.at(&"V".into(), s), t.at(&"V".into(), s));
            }
        }
    }

    #[test]
    fn mergable_tuples_merge_without_error(a in tuple_strategy(1), b in tuple_strategy(1)) {
        let s = scheme();
        if a.mergable(&b, &s) {
            let m = a.merge(&b).unwrap();
            prop_assert_eq!(m.lifespan(), &a.lifespan().union(b.lifespan()));
            // The merge extends both contributors.
            for src in [&a, &b] {
                for s in LO..=HI {
                    let s = Chronon::new(s);
                    if let Some(v) = src.at(&"V".into(), s) {
                        prop_assert_eq!(m.at(&"V".into(), s), Some(v));
                    }
                }
            }
        }
    }

    #[test]
    fn clipping_to_scheme_is_idempotent_and_validating(t in tuple_strategy(1)) {
        let s = scheme();
        let clipped = t.clipped_to_scheme(&s);
        prop_assert_eq!(&clipped.clipped_to_scheme(&s), &clipped);
        prop_assert!(clipped.validate(&s).is_ok());
    }

    #[test]
    fn vls_bounds_every_value(t in tuple_strategy(1)) {
        let s = scheme();
        let vls = t.vls(&s, &"V".into()).unwrap();
        let dom = t.value(&"V".into()).unwrap().domain();
        prop_assert!(vls.contains_lifespan(&dom));
    }
}
