// The legacy materializing evaluator stays the reference oracle for the
// streaming executor, so this file uses it deliberately.
#![allow(deprecated)]

//! `bench-json` — run the tracked benches, emit `BENCH_8.json`, gate on
//! regressions.
//!
//! ```sh
//! cargo run --release -p hrdm-bench --bin bench-json            # measure + gate
//! cargo run --release -p hrdm-bench --bin bench-json -- --write-baseline
//! ```
//!
//! Flags:
//!
//! * `--out <path>` — where to write the artifact (default `BENCH_8.json`);
//! * `--baseline <path>` — baseline to gate against (default
//!   `bench/baseline.json`);
//! * `--write-baseline` — overwrite the baseline with this run's medians
//!   and skip the gate (run this on the CI runner class when the tracked
//!   set or the expected performance changes);
//! * `--no-gate` — measure and emit only.
//!
//! Environment:
//!
//! * `HRDM_BENCH_TOLERANCE` — allowed fractional regression (default
//!   `0.25`, i.e. fail above +25%);
//! * `HRDM_BENCH_INJECT_SLOWDOWN` — multiply every measured median by this
//!   factor before gating. **Test hook only**: injecting `2` must turn the
//!   gate red, which is how the gate's wiring is verified end to end.
//!
//! The tracked benches use fixed workload sizes regardless of
//! `HRDM_BENCH_FAST` (fast mode only shrinks sample time), so artifacts
//! stay comparable across CI smoke runs and full runs on the same
//! hardware class. Only the CPU-bound benches are **gated** (see
//! [`GATED`]): the fsync-bound ones appear in the artifact for trend
//! tracking but their absolute latency tracks the runner's storage, not
//! the code. Baselines are tied to a hardware class — refresh with
//! `--write-baseline` (ideally from a CI run's artifact) when the runner
//! class or expected performance changes.

use hrdm_bench::gate::{
    baseline_json, compare, measure_median_ns, parse_baseline, to_json_with_metrics, BenchResult,
};
use hrdm_core::prelude::*;
use hrdm_query::{evaluate, evaluate_planned, parse_query, Query};
use hrdm_storage::{ConcurrentDatabase, Database, WalRecord};
use std::path::PathBuf;
use std::time::Duration;

fn fast() -> bool {
    std::env::var_os("HRDM_BENCH_FAST").is_some_and(|v| v != "0")
}

fn sample_time() -> Duration {
    if fast() {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(120)
    }
}

const SAMPLES: usize = 5;
const MEM_SIZE: i64 = 10_000;
const WAL_SIZE: i64 = 1_000;

/// The benches the regression gate compares against the baseline — the
/// CPU-bound subset. fsync-bound benches are measured and land in the
/// artifact, but storage latency differs across runner classes by far more
/// than the gate tolerance, so they are excluded from the baseline.
const GATED: &[&str] = &[
    "timeslice_indexed_10k",
    "timeslice_seqscan_10k",
    "select_when_key_probe_10k",
    "snapshot_take_10k",
    "timeslice_pruned_100k",
    "exec_stream_timeslice_100k",
    "parallel_scan_8c",
    "checkpoint_dirty_partitions",
    // Buffer-pool read path: CPU-bound (hits) and OS-page-cache-bound
    // (misses) — no fsync in either loop.
    "pool_hit_timeslice_100k",
    "pool_miss_cold_partition",
    // Loopback TCP against a *detached* server: CPU/network-bound (no
    // fsync in the loop), so stable enough to gate on one runner class.
    "net_query_throughput_8c",
    "net_write_p99_8c",
];

/// Per-bench tolerance overrides written into the baseline. Tail-latency
/// benches under scheduler pressure (a p99 across 8 threads on a small
/// runner) legitimately swing several-fold run to run; a wide gate still
/// catches order-of-magnitude regressions (e.g. accidentally serializing
/// commits) without flaking, while the stable CPU-bound medians keep the
/// tight default.
const TOLERANCE_OVERRIDES: &[(&str, f64)] = &[
    ("net_query_throughput_8c", 1.0), // fail above 2× baseline
    ("net_write_p99_8c", 3.0),        // fail above 4× baseline
    // 8 scan workers on a small runner degrade to scheduling overhead;
    // the wide gate still catches a serialized-scan regression while the
    // 8-core class tracks the real ≥4× speedup over `parallel_scan_1c`.
    ("parallel_scan_8c", 3.0), // fail above 4× baseline
];

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 1_000_000);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn tup(k: i64) -> Tuple {
    let lo = k % 900_000;
    let life = Lifespan::interval(lo, lo + 50);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k)))
        .finish(&scheme())
        .unwrap()
}

fn populated(n: i64) -> ConcurrentDatabase {
    let db = ConcurrentDatabase::new();
    db.create_relation("r", scheme()).unwrap();
    for k in 0..n {
        db.insert("r", tup(k)).unwrap();
    }
    db
}

fn bench_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("hrdm-bench-json-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// Runs the tracked bench set. Names are the stable contract with
/// `bench/baseline.json` — change them only together with the baseline.
fn run_tracked() -> Vec<BenchResult> {
    let mut out = Vec::new();
    let mut track = |name: &str, median_ns: f64| {
        eprintln!("  {name:<40} median: {median_ns:>12.1} ns");
        out.push(BenchResult {
            name: name.to_string(),
            median_ns,
        });
    };

    let db = populated(MEM_SIZE);
    let snap = db.snapshot();
    let parse = |q: &str| -> Query { parse_query(q).unwrap() };

    // Planned (index) vs unplanned (seq) timeslice over the snapshot.
    let q = parse("TIMESLICE [100..140] (r)");
    track(
        "timeslice_indexed_10k",
        measure_median_ns(SAMPLES, sample_time(), || {
            std::hint::black_box(evaluate_planned(&q, &*snap).unwrap());
        }),
    );
    track(
        "timeslice_seqscan_10k",
        measure_median_ns(SAMPLES, sample_time(), || {
            std::hint::black_box(evaluate(&q, &*snap).unwrap());
        }),
    );
    let q = parse("SELECT-WHEN (K = 4217) (r)");
    track(
        "select_when_key_probe_10k",
        measure_median_ns(SAMPLES, sample_time(), || {
            std::hint::black_box(evaluate_planned(&q, &*snap).unwrap());
        }),
    );

    // Snapshot publication cost — the heart of the concurrency model:
    // O(relations), never O(tuples).
    track(
        "snapshot_take_10k",
        measure_median_ns(SAMPLES, sample_time(), || {
            std::hint::black_box(db.snapshot());
        }),
    );

    // Partition pruning: a selective TIME-SLICE over a 100k-tuple,
    // 64-partition relation, against the same data unpartitioned
    // (span = ∞) both *with* its relation-wide interval index
    // (`timeslice_flat_index_100k` — pruning matches it on CPU; the
    // partition win is locality: per-partition files and dirty-only
    // checkpoints) and *without* any index assist
    // (`timeslice_unpartitioned_100k` — the restrict-everything scan a
    // selective slice pays when nothing bounds it, ~3 orders slower).
    {
        use hrdm_bench::partition_fixture::{populated, SPAN_LOG2};
        use hrdm_storage::PartitionPolicy;
        let pruned = populated(PartitionPolicy::SpanLog2(SPAN_LOG2), 100_000).snapshot();
        let flat = populated(PartitionPolicy::Unpartitioned, 100_000).snapshot();
        let lo = 32i64 << SPAN_LOG2;
        let q = parse(&format!("TIMESLICE [{lo}..{}] (r)", lo + 50));
        track(
            "timeslice_pruned_100k",
            measure_median_ns(SAMPLES, sample_time(), || {
                std::hint::black_box(evaluate_planned(&q, &*pruned).unwrap());
            }),
        );
        track(
            "timeslice_flat_index_100k",
            measure_median_ns(SAMPLES, sample_time(), || {
                std::hint::black_box(evaluate_planned(&q, &*flat).unwrap());
            }),
        );
        track(
            "timeslice_unpartitioned_100k",
            measure_median_ns(SAMPLES, sample_time(), || {
                std::hint::black_box(evaluate(&q, &*flat).unwrap());
            }),
        );

        // The streaming executor over the same fixtures: the pruned
        // TIME-SLICE collected through the batch pipeline (the streaming
        // analogue of `timeslice_pruned_100k`, gated — it tracks executor
        // overhead on a selective scan), and the morsel-parallel full
        // scan at 1 vs 8 workers. `parallel_scan_8c / parallel_scan_1c`
        // is the tracked speedup; the ≥4× target assumes the 8-core
        // runner class — a smaller container measures scheduling overhead
        // instead, which is why `parallel_scan_8c` carries a wide
        // tolerance in the baseline.
        use hrdm_query::{stream_query_on_snapshot, ExecOptions, StreamedQuery};
        let stream_collect = |src: &hrdm_storage::DbSnapshot, text: &str, opts: &ExecOptions| {
            match stream_query_on_snapshot(text, src, opts).unwrap() {
                StreamedQuery::Rows(s) => std::hint::black_box(s.collect_relation().unwrap()),
                _ => unreachable!("relation-sorted query"),
            }
        };
        let slice = format!("TIMESLICE [{lo}..{}] (r)", lo + 50);
        track(
            "exec_stream_timeslice_100k",
            measure_median_ns(SAMPLES, sample_time(), || {
                stream_collect(&pruned, &slice, &ExecOptions::default());
            }),
        );
        let scan = "SELECT-WHEN (V >= 0) (r)";
        let serial = ExecOptions {
            workers: 1,
            ..ExecOptions::default()
        };
        track(
            "parallel_scan_1c",
            measure_median_ns(SAMPLES, sample_time(), || {
                stream_collect(&flat, scan, &serial);
            }),
        );
        let parallel = ExecOptions {
            workers: 8,
            parallel_min_rows: 1,
            ..ExecOptions::default()
        };
        track(
            "parallel_scan_8c",
            measure_median_ns(SAMPLES, sample_time(), || {
                stream_collect(&flat, scan, &parallel);
            }),
        );
    }

    // Dirty-only checkpoint: insert into one partition, checkpoint — the
    // rewrite covers one partition's heap file, the other 63 are hard
    // links. (Gated: the dominant cost is the catalog+heap write of a
    // single small partition, stable across runs on one runner class.)
    {
        use hrdm_bench::partition_fixture::{scheme as part_scheme, tup as part_tup, SPAN_LOG2};
        use hrdm_storage::PartitionPolicy;
        let dir = bench_dir("ckpt-dirty");
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(PartitionPolicy::SpanLog2(SPAN_LOG2));
        db.create_relation("r", part_scheme()).unwrap();
        let batch: Vec<WalRecord> = (0..20_000)
            .map(|k| WalRecord::Insert {
                relation: "r".to_string(),
                tuple: part_tup(k),
            })
            .collect();
        for r in db.commit_batch(batch) {
            r.unwrap();
        }
        db.checkpoint().unwrap();
        let mut k = 30_000_000i64;
        track(
            "checkpoint_dirty_partitions",
            measure_median_ns(SAMPLES, sample_time(), || {
                k += 1;
                db.insert("r", part_tup(k)).unwrap();
                db.checkpoint().unwrap();
            }),
        );
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    // The out-of-core read path: a windowed materialization over a
    // checkpointed 100k-tuple partitioned relation, through the buffer
    // pool. `pool_hit` runs against a pool large enough that the second
    // and later materializations are all frame hits (pure CPU: pruning +
    // B+tree probe + decode). `pool_miss` runs the same window through a
    // 2-frame pool, so every iteration re-faults its pages — reads come
    // from the OS page cache (no fsync), so both are gateable on one
    // runner class.
    {
        use hrdm_bench::partition_fixture::{scheme as part_scheme, tup as part_tup, SPAN_LOG2};
        use hrdm_query::paged_snapshot_for_query;
        use hrdm_storage::{BufferPool, PagedDatabase, PartitionPolicy};
        let dir = bench_dir("paged");
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(PartitionPolicy::SpanLog2(SPAN_LOG2));
        db.create_relation("r", part_scheme()).unwrap();
        for chunk in 0..10i64 {
            let batch: Vec<WalRecord> = (chunk * 10_000..(chunk + 1) * 10_000)
                .map(|k| WalRecord::Insert {
                    relation: "r".to_string(),
                    tuple: part_tup(k),
                })
                .collect();
            for r in db.commit_batch(batch) {
                r.unwrap();
            }
        }
        db.checkpoint().unwrap();
        drop(db);

        let lo = 32i64 << SPAN_LOG2;
        let q = format!("TIMESLICE [{lo}..{}] (r)", lo + 50);
        let warm = PagedDatabase::open_with_pool(&dir, BufferPool::new(4096)).unwrap();
        std::hint::black_box(paged_snapshot_for_query(&q, &warm).unwrap()); // fault once
        track(
            "pool_hit_timeslice_100k",
            measure_median_ns(SAMPLES, sample_time(), || {
                std::hint::black_box(paged_snapshot_for_query(&q, &warm).unwrap());
            }),
        );
        let cold = PagedDatabase::open_with_pool(&dir, BufferPool::new(2)).unwrap();
        track(
            "pool_miss_cold_partition",
            measure_median_ns(SAMPLES, sample_time(), || {
                std::hint::black_box(paged_snapshot_for_query(&q, &cold).unwrap());
            }),
        );
        drop(warm);
        drop(cold);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Durable single write (fsync per op) vs an 8-op group-commit batch
    // (one fsync), reported per op.
    {
        let dir = bench_dir("wal");
        let mut wal_db = Database::open(&dir).unwrap();
        wal_db.create_relation("r", scheme()).unwrap();
        for k in 0..WAL_SIZE {
            wal_db.insert("r", tup(k)).unwrap();
        }
        let mut k = 10_000_000i64;
        track(
            "wal_append_insert_1k",
            measure_median_ns(SAMPLES, sample_time(), || {
                k += 1;
                wal_db.insert("r", tup(k)).unwrap();
            }),
        );
        let mut k2 = 20_000_000i64;
        let per_batch = measure_median_ns(SAMPLES, sample_time(), || {
            let ops: Vec<WalRecord> = (0..8)
                .map(|_| {
                    k2 += 1;
                    WalRecord::Insert {
                        relation: "r".to_string(),
                        tuple: tup(k2),
                    }
                })
                .collect();
            for r in wal_db.commit_batch(ops) {
                r.unwrap();
            }
        });
        track("group_commit_per_op_batch8_1k", per_batch / 8.0);
        drop(wal_db);
        std::fs::remove_dir_all(&dir).ok();
    }

    // The network layer, over a detached server on a loopback socket so
    // the numbers are CPU/network-bound (gateable), not fsync-bound:
    // aggregate 8-client query throughput (stored as cluster-wide ns per
    // query, so `throughput_per_sec` is the aggregate rate) and the p99
    // per-op latency of 8 concurrent wire writers whose inserts form
    // group-commit batches.
    {
        use hrdm_bench::net_fixture::{
            percentile, query_throughput, spawn_query_server, write_latencies,
        };
        let window = if fast() {
            Duration::from_millis(150)
        } else {
            Duration::from_millis(1000)
        };
        let median3 = |mut xs: [f64; 3]| {
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            xs[1]
        };

        let server = spawn_query_server(MEM_SIZE);
        let per_query_ns = median3([(); 3].map(|()| {
            let qps = query_throughput(server.addr(), 8, window);
            if qps > 0.0 {
                1e9 / qps
            } else {
                f64::MAX
            }
        }));
        track("net_query_throughput_8c", per_query_ns);

        let mut sample = 0i64;
        let p99_ns = median3([(); 3].map(|()| {
            sample += 1;
            let lat = write_latencies(server.addr(), 8, window, sample * 100_000_000);
            percentile(&lat, 0.99) as f64
        }));
        track("net_write_p99_8c", p99_ns);
        server.shutdown();
    }

    out
}

/// Samples engine internals from the [`hrdm_obs`] global registry
/// *after* the tracked benches ran — the artifact's schema-2 `"metrics"`
/// object. Trend data only (batch sizes, prune ratios, WAL latencies);
/// the regression gate never reads it.
fn registry_metrics() -> Vec<(String, f64)> {
    let g = hrdm_obs::global();
    let mut out = Vec::new();
    for name in [
        "hrdm_query_partitions_probed_total",
        "hrdm_query_partitions_pruned_total",
        "hrdm_query_index_scans_total",
        "hrdm_query_seq_scans_total",
        "hrdm_snapshot_publish_total",
        "hrdm_checkpoint_dirty_partitions_total",
        "hrdm_checkpoint_linked_partitions_total",
        "hrdm_pool_hits_total",
        "hrdm_pool_misses_total",
        "hrdm_pool_evictions_total",
        "hrdm_pool_writebacks_total",
    ] {
        if let Some(v) = g.counter_value(name) {
            out.push((name.to_string(), v as f64));
        }
    }
    // Of the partitions the benches' bounded scans considered, what
    // fraction was pruned without being touched?
    if let (Some(probed), Some(pruned)) = (
        g.counter_value("hrdm_query_partitions_probed_total"),
        g.counter_value("hrdm_query_partitions_pruned_total"),
    ) {
        if probed + pruned > 0 {
            out.push((
                "hrdm_query_prune_ratio".to_string(),
                pruned as f64 / (probed + pruned) as f64,
            ));
        }
    }
    for name in [
        "hrdm_commit_batch_size",
        "hrdm_wal_append_ns",
        "hrdm_wal_fsync_ns",
        "hrdm_checkpoint_ns",
    ] {
        if let Some(snap) = g.histogram_snapshot(name) {
            out.push((format!("{name}_count"), snap.count() as f64));
            out.push((format!("{name}_p50"), snap.p50().unwrap_or(0) as f64));
            out.push((format!("{name}_p99"), snap.p99().unwrap_or(0) as f64));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = PathBuf::from("BENCH_8.json");
    let mut baseline_path = PathBuf::from("bench/baseline.json");
    let mut write_baseline = false;
    let mut no_gate = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = PathBuf::from(it.next().expect("--out needs a path")),
            "--baseline" => {
                baseline_path = PathBuf::from(it.next().expect("--baseline needs a path"))
            }
            "--write-baseline" => write_baseline = true,
            "--no-gate" => no_gate = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("bench-json: running tracked benches…");
    let mut results = run_tracked();

    if let Ok(factor) = std::env::var("HRDM_BENCH_INJECT_SLOWDOWN") {
        let factor: f64 = factor.parse().expect("HRDM_BENCH_INJECT_SLOWDOWN: number");
        eprintln!("bench-json: INJECTING a {factor}x slowdown (gate self-test)");
        for r in &mut results {
            r.median_ns *= factor;
        }
    }

    let metrics = registry_metrics();
    let json = to_json_with_metrics(&results, &metrics);
    std::fs::write(&out_path, &json).expect("write artifact");
    eprintln!(
        "bench-json: wrote {} ({} registry metric(s))",
        out_path.display(),
        metrics.len()
    );

    if write_baseline {
        if let Some(parent) = baseline_path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        // Only the CPU-bound benches enter the baseline: the fsync-bound
        // ones (`wal_…`, `group_commit_…`) vary with the runner's storage
        // far beyond any sensible tolerance, so they are reported in the
        // artifact but not gated.
        let gated: Vec<BenchResult> = results
            .iter()
            .filter(|r| GATED.contains(&r.name.as_str()))
            .cloned()
            .collect();
        std::fs::write(&baseline_path, baseline_json(&gated, TOLERANCE_OVERRIDES))
            .expect("write baseline");
        eprintln!(
            "bench-json: baseline refreshed at {} ({} gated bench(es))",
            baseline_path.display(),
            gated.len()
        );
        return;
    }
    if no_gate {
        return;
    }

    let tolerance: f64 = std::env::var("HRDM_BENCH_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.25);
    let baseline_json = match std::fs::read_to_string(&baseline_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!(
                "bench-json: no baseline at {} ({e}); gate skipped — \
                 run with --write-baseline to start the trajectory",
                baseline_path.display()
            );
            return;
        }
    };
    let baseline = parse_baseline(&baseline_json).expect("parse baseline");
    let outcome = compare(&results, &baseline, tolerance);
    eprintln!(
        "bench-json: compared {} bench(es) against {} (tolerance +{:.0}%)",
        outcome.compared,
        baseline_path.display(),
        tolerance * 100.0
    );
    for m in &outcome.missing {
        eprintln!("bench-json: MISSING tracked bench `{m}` (in baseline, not produced)");
    }
    for r in &outcome.regressions {
        eprintln!(
            "bench-json: REGRESSION `{}`: {:.1} ns vs baseline {:.1} ns ({:.2}x, tolerance +{:.0}%)",
            r.name,
            r.current_ns,
            r.baseline_ns,
            r.ratio(),
            r.tolerance * 100.0
        );
    }
    if !outcome.pass() {
        eprintln!(
            "bench-json: FAILED — if this PR knowingly changes performance (or the \
             runner class changed), refresh the baseline in the same PR: \
             cargo run --release -p hrdm-bench --bin bench-json -- --write-baseline"
        );
        std::process::exit(1);
    }
    eprintln!("bench-json: OK");
}
