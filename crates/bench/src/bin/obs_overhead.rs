//! `obs-overhead` — the observability overhead gate.
//!
//! Measures the `timeslice_pruned_100k` workload (the same fixture and
//! query the gated bench uses) with metric emission **enabled** and
//! **disabled** (`hrdm_obs::set_enabled`, the programmatic form of
//! `HRDM_OBS_OFF=1`), alternating enabled/disabled samples so clock
//! drift and cache warmth cancel, and **fails** (exit 1) when the
//! enabled median exceeds the disabled median by more than 5%.
//!
//! The measured closure mirrors a full served request, not just the
//! query: each iteration also feeds the per-second rate and latency
//! windows (the rolling 60s QPS/percentile gauges) and stamps one
//! flight-recorder event, so the gate covers the whole telemetry plane
//! — counters, windows, and recorder together stay under 5%.
//!
//! The budget holds because the per-query cost of observability is a
//! handful of relaxed atomic adds (scan/pruning counters), one
//! thread-local check per plan node (spans, collected only under
//! `EXPLAIN ANALYZE`), two stamped ring-slot updates (windows), and an
//! uncontended mutex push into a bounded ring (recorder), against a
//! query that probes a 64-partition map — nanoseconds against tens of
//! microseconds.
//!
//! `HRDM_BENCH_FAST=1` shrinks the sample windows, like `bench-json`.

use hrdm_bench::gate::measure_median_ns;
use hrdm_bench::partition_fixture::{populated, SPAN_LOG2};
use hrdm_query::{evaluate_planned, parse_query};
use hrdm_storage::PartitionPolicy;
use std::time::Duration;

const TOLERANCE: f64 = 0.05;
const SAMPLES: usize = 7;

fn sample_time() -> Duration {
    if std::env::var_os("HRDM_BENCH_FAST").is_some_and(|v| v != "0") {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(100)
    }
}

fn main() {
    let snap = populated(PartitionPolicy::SpanLog2(SPAN_LOG2), 100_000).snapshot();
    let lo = 32i64 << SPAN_LOG2;
    let q = parse_query(&format!("TIMESLICE [{lo}..{}] (r)", lo + 50)).unwrap();

    // The per-request window work the server does around every request.
    // These self-gate on the kill switch, so they no-op in the disabled
    // samples — exactly the delta this gate exists to bound.
    let requests = hrdm_obs::window::RateWindow::new();
    let latency = hrdm_obs::window::LatencyWindow::new();

    let sample = |on: bool| {
        hrdm_obs::set_enabled(on);
        measure_median_ns(1, sample_time(), || {
            let started = std::time::Instant::now();
            std::hint::black_box(evaluate_planned(&q, &*snap).unwrap());
            requests.add(1);
            latency.record(started.elapsed().as_nanos() as u64);
            if hrdm_obs::enabled() {
                hrdm_obs::recorder()
                    .record(hrdm_obs::EventKind::SlowQuery, String::from("gate sample"));
            }
        })
    };

    // Warm both paths, then alternate so slow drift hits both equally.
    sample(true);
    sample(false);
    let mut on_ns = Vec::with_capacity(SAMPLES);
    let mut off_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        on_ns.push(sample(true));
        off_ns.push(sample(false));
    }
    hrdm_obs::set_enabled(true);

    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        xs[xs.len() / 2]
    };
    let on = median(&mut on_ns);
    let off = median(&mut off_ns);
    let ratio = on / off;
    eprintln!(
        "obs-overhead: timeslice_pruned_100k — enabled {on:.1} ns, \
         disabled {off:.1} ns, ratio {ratio:.4} (tolerance {:.2})",
        1.0 + TOLERANCE
    );
    if ratio > 1.0 + TOLERANCE {
        eprintln!(
            "obs-overhead: FAILED — metric emission costs {:.1}% on the \
             pruned-timeslice hot path (budget: {:.0}%)",
            (ratio - 1.0) * 100.0,
            TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    eprintln!("obs-overhead: OK");
}
