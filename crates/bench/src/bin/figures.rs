//! Regenerates every figure of the paper from live model objects.
//!
//! The paper has no empirical tables; its eleven figures are conceptual
//! diagrams of the model. Each section below *builds the situation the
//! figure depicts* using the real implementation and renders the figure
//! from the data structures — so the diagrams are derived, not drawn.
//!
//! ```sh
//! cargo run -p hrdm-bench --bin figures
//! ```

use hrdm_baseline::hrdm_to_cube;
use hrdm_core::prelude::*;
use hrdm_interp::{Interpolation, Represented};
use hrdm_storage::{Catalog, Database};

const ERA: i64 = 40;

fn era() -> Lifespan {
    Lifespan::interval(0, ERA)
}

fn bar(ls: &Lifespan, width: i64) -> String {
    (0..=width)
        .map(|t| {
            if ls.contains(Chronon::new(t)) {
                'X'
            } else {
                '.'
            }
        })
        .collect()
}

fn heading(n: u32, caption: &str) {
    println!();
    println!("======================================================================");
    println!("Figure {n}: {caption}");
    println!("======================================================================");
}

fn emp_scheme() -> Scheme {
    Scheme::builder()
        .key_attr("NAME", ValueKind::Str, era())
        .attr("SALARY", HistoricalDomain::int(), era())
        .attr("DEPT", HistoricalDomain::string(), era())
        .build()
        .expect("well-formed scheme")
}

fn emp(name: &str, spans: &[(i64, i64)], salary: i64) -> Tuple {
    let life = Lifespan::of(spans);
    Tuple::builder(life.clone())
        .constant("NAME", name)
        .value("SALARY", TemporalValue::constant(&life, Value::Int(salary)))
        .value("DEPT", TemporalValue::constant(&life, Value::str("Toys")))
        .finish(&emp_scheme())
        .expect("valid tuple")
}

fn main() {
    figure_1();
    figure_2();
    figure_3();
    figure_4();
    figure_5();
    figure_6();
    figure_7();
    figure_8();
    figure_9();
    figure_10();
    figure_11();
    figure_12();
}

/// Fig. 1: the relational database instance hierarchy.
fn figure_1() {
    heading(
        1,
        "Relational database instance (database / relations / tuples)",
    );
    let mut db = Database::new();
    db.create_relation("emp", emp_scheme()).unwrap();
    db.insert("emp", emp("John", &[(0, 20)], 25_000)).unwrap();
    db.insert("emp", emp("Mary", &[(5, 30)], 30_000)).unwrap();
    let dept_scheme = Scheme::builder()
        .key_attr("DNAME", ValueKind::Str, era())
        .build()
        .unwrap();
    db.create_relation("dept", dept_scheme.clone()).unwrap();
    db.insert(
        "dept",
        Tuple::builder(era())
            .constant("DNAME", "Toys")
            .finish(&dept_scheme)
            .unwrap(),
    )
    .unwrap();

    println!("database");
    for name in db.relation_names() {
        let r = db.relation(name).unwrap();
        println!("├── relation `{name}`");
        for (i, t) in r.iter().enumerate() {
            println!("│     tuple{}: l = {}", i + 1, t.lifespan());
        }
    }
}

/// Fig. 2: one lifespan associated with the entire database.
fn figure_2() {
    heading(2, "One lifespan associated with entire database");
    let shared = Lifespan::interval(5, 30);
    println!("all relations share lifespan {shared}:");
    for rel in ["rel1", "rel2", "rel3"] {
        println!("  {rel:>5} |{}|", bar(&shared, ERA));
    }
    println!("        (time 0..{ERA}; every relation and tuple is temporally homogeneous)");
}

/// Fig. 3: different lifespans per relation (Gadia-style homogeneity).
fn figure_3() {
    heading(3, "Different lifespans associated with each relation");
    let spans = [
        ("rel1", Lifespan::interval(0, 15)),
        ("rel2", Lifespan::interval(10, 30)),
        ("rel3", Lifespan::of(&[(5, 12), (25, 40)])),
    ];
    for (name, ls) in &spans {
        println!("  {name:>5} |{}|  LS = {ls}", bar(ls, ERA));
    }
    println!("        (tuples inside one relation all share its lifespan)");
}

/// Fig. 4: lifespans per tuple within one relation.
fn figure_4() {
    heading(4, "Lifespans associated with each tuple in a relation");
    let r = Relation::with_tuples(
        emp_scheme(),
        vec![
            emp("t1", &[(0, 10)], 1),
            emp("t2", &[(8, 25)], 2),
            emp("t3", &[(3, 6), (18, 33)], 3), // reincarnated
        ],
    )
    .unwrap();
    println!("          A1 A2 A3  (attributes)");
    for t in r.iter() {
        let name = t
            .at(&"NAME".into(), t.lifespan().first().unwrap())
            .unwrap()
            .to_string();
        println!(
            "  {name:>5}  |{}|  t.l = {}",
            bar(t.lifespan(), ERA),
            t.lifespan()
        );
    }
    println!("  LS(r) = {}", r.lifespan());
}

/// Fig. 5: the relational database schema hierarchy.
fn figure_5() {
    heading(
        5,
        "Relational database schema (schema / relation schemas / attributes)",
    );
    let mut cat = Catalog::new();
    cat.create_relation("emp", emp_scheme()).unwrap();
    cat.create_relation(
        "dept",
        Scheme::builder()
            .key_attr("DNAME", ValueKind::Str, era())
            .attr("BUDGET", HistoricalDomain::int(), era())
            .build()
            .unwrap(),
    )
    .unwrap();
    println!("DATABASE SCHEMA");
    for name in cat.relations() {
        println!("├── REL.SCHEMA `{name}`");
        for def in cat.scheme(name).unwrap().attrs() {
            println!("│     ATTR {} : {}", def.name(), def.domain());
        }
    }
}

/// Fig. 6: the lifespan of attribute DAILY-TRADING-VOLUME.
fn figure_6() {
    heading(
        6,
        "Lifespan of attribute DAILY-TRADING-VOLUME (schema evolution)",
    );
    let mut cat = Catalog::new();
    cat.create_relation(
        "stocks",
        Scheme::builder()
            .key_attr("TICKER", ValueKind::Str, era())
            .build()
            .unwrap(),
    )
    .unwrap();
    let vol = Attribute::new("DAILY_TRADING_VOLUME");
    // Recorded over [t1,t2] = [5,15]; dropped (too expensive); re-added at
    // t3 = 28 through NOW (= 40).
    cat.add_attribute(
        "stocks",
        vol.clone(),
        HistoricalDomain::int(),
        Chronon::new(5),
        Chronon::new(ERA),
    )
    .unwrap();
    cat.drop_attribute("stocks", &vol, Chronon::new(16))
        .unwrap();
    cat.re_add_attribute("stocks", &vol, Chronon::new(28), Chronon::new(ERA))
        .unwrap();
    let als = cat.scheme("stocks").unwrap().als(&vol).unwrap().clone();
    println!("  ALS = {als}");
    println!("  |{}|", bar(&als, ERA));
    println!("   t1=5      t2=15       t3=28        NOW={ERA}");
    println!("  evolution log:");
    for ev in cat.log() {
        println!("    {ev}");
    }
}

/// Fig. 7: tuple lifespan × attribute lifespan interaction.
fn figure_7() {
    heading(
        7,
        "Tuple lifespan and attribute lifespan interaction (vls = X ∩ Y)",
    );
    let x = Lifespan::interval(20, 35); // ALS(An) = X
    let scheme = Scheme::builder()
        .key_attr("NAME", ValueKind::Str, era())
        .attr("An", HistoricalDomain::int(), x.clone())
        .build()
        .unwrap();
    let y = Lifespan::interval(10, 28); // tuple_m lifespan = Y
    let tuple_m = Tuple::builder(y.clone())
        .constant("NAME", "m")
        .value(
            "An",
            TemporalValue::constant(&y.intersect(&x), Value::Int(7)),
        )
        .finish(&scheme)
        .unwrap();
    let vls = tuple_m.vls(&scheme, &"An".into()).unwrap();
    println!("  ALS(An) = X  |{}|  {x}", bar(&x, ERA));
    println!("  t.l     = Y  |{}|  {y}", bar(&y, ERA));
    println!("  vls     = X∩Y|{}|  {vls}", bar(&vls, ERA));
    println!(
        "  value defined at 25? {}; at 15 (in Y only)? {}; at 32 (in X only)? {}",
        tuple_m.at(&"An".into(), Chronon::new(25)).is_some(),
        tuple_m.at(&"An".into(), Chronon::new(15)).is_some(),
        tuple_m.at(&"An".into(), Chronon::new(32)).is_some(),
    );
}

/// Fig. 8: lifespans associated with tuples *and* attributes —
/// heterogeneous tuples.
fn figure_8() {
    heading(8, "Lifespans associated with both tuples and attributes");
    let als_salary = Lifespan::of(&[(0, 18), (30, 40)]); // attribute dropped then re-added
    let scheme = Scheme::builder()
        .key_attr("NAME", ValueKind::Str, era())
        .attr("SALARY", HistoricalDomain::int(), als_salary.clone())
        .attr("DEPT", HistoricalDomain::string(), era())
        .build()
        .unwrap();
    let mk = |name: &str, spans: &[(i64, i64)]| {
        let life = Lifespan::of(spans);
        let s_vls = life.intersect(&als_salary);
        Tuple::builder(life.clone())
            .constant("NAME", name)
            .value("SALARY", TemporalValue::constant(&s_vls, Value::Int(9)))
            .value("DEPT", TemporalValue::constant(&life, Value::str("Toys")))
            .finish(&scheme)
            .unwrap()
    };
    let t = mk("t", &[(2, 24)]);
    let t2 = mk("u", &[(12, 38)]);
    println!("  ALS(SALARY)    |{}|", bar(&als_salary, ERA));
    for tup in [&t, &t2] {
        let name = tup
            .at(&"NAME".into(), tup.lifespan().first().unwrap())
            .unwrap();
        println!("  tuple {name:<3} t.l  |{}|", bar(tup.lifespan(), ERA));
        let sal = tup.value(&"SALARY".into()).unwrap().domain();
        println!(
            "        SALARY   |{}|  (heterogeneous: value only on t.l ∩ ALS)",
            bar(&sal, ERA)
        );
    }
}

/// Fig. 9: the three levels of HRDM.
fn figure_9() {
    heading(9, "Representation / model / physical levels");
    // Representation level: 3 samples + step interpolation.
    let repr = Represented::of(
        &[
            (0, Value::Int(100)),
            (12, Value::Int(140)),
            (30, Value::Int(90)),
        ],
        Interpolation::Step,
    );
    println!("  REPRESENTATION  {repr} (sparse)");
    // Model level: the total function over vls.
    let model = repr.materialize(&era()).unwrap();
    println!(
        "  MODEL           total function over {} chronons in {} segments: {}",
        model.domain().cardinality(),
        model.segment_count(),
        model
    );
    // Physical level: encoded bytes on a slotted page.
    let mut enc = hrdm_storage::Encoder::new();
    enc.put_temporal_value(&model);
    let bytes = enc.finish();
    let mut page = hrdm_storage::Page::new();
    let slot = page.insert(&bytes).unwrap();
    page.seal();
    println!(
        "  PHYSICAL        {} bytes in slot {slot} of an {}-byte page (checksum ok: {})",
        bytes.len(),
        hrdm_storage::PAGE_SIZE,
        page.verify()
    );
}

/// Fig. 10: the three dimensions of the historical data model.
fn figure_10() {
    heading(
        10,
        "Three dimensions: attributes × tuples × TIME (the cube)",
    );
    let r = Relation::with_tuples(
        emp_scheme(),
        vec![
            emp("John", &[(0, 3)], 25_000),
            emp("Mary", &[(2, 5)], 30_000),
        ],
    )
    .unwrap();
    let cube = hrdm_to_cube(&r, None).unwrap();
    println!("  one 2-D slice (attributes × tuples) per time point:");
    for t in 0..=5i64 {
        let slice = cube.timeslice(Chronon::new(t));
        let rows: Vec<String> = slice
            .iter()
            .map(|row| {
                row.iter()
                    .map(|v| v.as_ref().map(|v| v.to_string()).unwrap_or("⊥".into()))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        println!("   t={t}: [{}]", rows.join(" | "));
    }
    println!(
        "  cube storage: {} cells for {} model-level segments — the paper's argument in one line",
        cube.cells(),
        r.segment_cells()
    );
}

/// Fig. 11: r1 ∪ r2 (counter-intuitive) vs r1 + r2 (object merge).
fn figure_11() {
    heading(11, "Union vs object-based union (r1 ∪ r2 vs r1 + r2)");
    let scheme = emp_scheme();
    let r1 = Relation::with_tuples(scheme.clone(), vec![emp("a", &[(0, 9)], 1)]).unwrap();
    let r2 = Relation::with_tuples(scheme, vec![emp("a", &[(15, 24)], 2)]).unwrap();

    let plain = union(&r1, &r2).unwrap();
    println!("  r1: object `a` on {}", r1.tuples()[0].lifespan());
    println!("  r2: object `a` on {}", r2.tuples()[0].lifespan());
    println!("  r1 ∪ r2  — {} tuples (same object twice):", plain.len());
    for t in plain.iter() {
        println!("     |{}|", bar(t.lifespan(), ERA));
    }
    println!(
        "     key constraint audit: {}",
        plain
            .check_key_constraint()
            .err()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "ok".into())
    );

    let merged = union_o(&r1, &r2).unwrap();
    println!("  r1 + r2  — {} tuple (merged object):", merged.len());
    for t in merged.iter() {
        println!("     |{}|", bar(t.lifespan(), ERA));
    }
    println!(
        "     key constraint audit: {}",
        merged
            .check_key_constraint()
            .err()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "ok".into())
    );
}

/// Beyond the paper: the `hrdm-index` access methods and the planner's
/// access-path selection — Fig. 9's "file structures and access methods"
/// box made concrete.
fn figure_12() {
    heading(12, "Access paths: lifespan/key IndexScan vs SeqScan");
    let mut db = Database::new();
    db.create_relation("emp", emp_scheme()).unwrap();
    db.insert("emp", emp("John", &[(0, 20)], 25_000)).unwrap();
    db.insert("emp", emp("Mary", &[(5, 30)], 30_000)).unwrap();
    db.insert("emp", emp("Igor", &[(25, 40)], 27_000)).unwrap();
    db.build_indexes();

    let idx = db.indexes("emp").unwrap();
    println!(
        "  emp: {} tuples, {} lifespan-interval entries, {} distinct keys",
        idx.tuple_count(),
        idx.lifespan().entry_count(),
        idx.key().map(|k| k.distinct_keys()).unwrap_or(0),
    );
    for (caption, query) in [
        ("an indexable TIME-SLICE", "TIMESLICE [0..10] (emp)"),
        (
            "a key-equality SELECT-WHEN",
            "SELECT-WHEN (NAME = \"Mary\") (emp)",
        ),
        (
            "a non-key SELECT-WHEN (no index applies)",
            "SELECT-WHEN (SALARY = 25000) (emp)",
        ),
    ] {
        let e = hrdm_query::parse_expr(query).unwrap();
        let (optimized, _) = hrdm_query::optimize(&e);
        let plan = hrdm_query::plan(&optimized, &db);
        println!("  {caption}: {query}");
        for line in hrdm_query::explain_plan(&plan).lines() {
            println!("    {line}");
        }
    }
}
