//! Seeded workload generators.

use hrdm_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated historical relation.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Number of tuples (objects).
    pub tuples: usize,
    /// Time universe `[0, era]`.
    pub era: i64,
    /// Number of value changes per attribute over a tuple's lifespan
    /// (the paper's driver of tuple-timestamping blow-up).
    pub changes: usize,
    /// Number of disjoint pieces in each tuple lifespan (1 = no
    /// reincarnation; higher = fragmented histories).
    pub fragments: usize,
    /// RNG seed (generators are deterministic given the spec).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            tuples: 100,
            era: 1_000,
            changes: 8,
            fragments: 1,
            seed: 0x0C11_FF0D,
        }
    }
}

/// The benchmark scheme: `emp(K*: int, V: int, W: int)` over `[0, era]`.
pub fn emp_scheme(era: i64) -> Scheme {
    let span = Lifespan::interval(0, era);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, span.clone())
        .attr("V", HistoricalDomain::int(), span.clone())
        .attr("W", HistoricalDomain::int(), span)
        .build()
        .expect("bench scheme is well-formed")
}

/// A second, attribute-disjoint scheme for joins:
/// `grp(G*: int, X: int)`.
pub fn second_scheme(era: i64) -> Scheme {
    let span = Lifespan::interval(0, era);
    Scheme::builder()
        .key_attr("G", ValueKind::Int, span.clone())
        .attr("X", HistoricalDomain::int(), span)
        .build()
        .expect("bench scheme is well-formed")
}

/// A scheme with a time-valued attribute for dynamic TIME-SLICE / TIME-JOIN:
/// `evt(E*: int, AT: time)`.
pub fn tt_scheme(era: i64) -> Scheme {
    let span = Lifespan::interval(0, era);
    Scheme::builder()
        .key_attr("E", ValueKind::Int, span.clone())
        .attr("AT", HistoricalDomain::time(), span)
        .build()
        .expect("bench scheme is well-formed")
}

/// A fragmented lifespan with `fragments` pieces inside `[0, era]`.
fn gen_lifespan(rng: &mut StdRng, era: i64, fragments: usize) -> Lifespan {
    let fragments = fragments.max(1);
    // Partition the era into `fragments` live pieces separated by gaps.
    let piece = era / (2 * fragments as i64).max(1);
    let mut spans = Vec::with_capacity(fragments);
    for i in 0..fragments as i64 {
        let base = i * 2 * piece;
        let jitter = if piece > 2 {
            rng.random_range(0..piece / 2)
        } else {
            0
        };
        let lo = (base + jitter).min(era);
        let hi = (lo + piece.max(1) - 1).min(era);
        if lo <= hi {
            spans.push((lo, hi));
        }
    }
    Lifespan::of(&spans)
}

/// A piecewise-constant int history over `life` with ~`changes` changes.
fn gen_history(rng: &mut StdRng, life: &Lifespan, changes: usize) -> TemporalValue {
    let card = life.cardinality();
    if card == 0 {
        return TemporalValue::empty();
    }
    let changes = (changes.max(1) as u64).min(card) as usize;
    // Choose change points inside the lifespan by walking its chronon count.
    let step = (card / changes as u64).max(1);
    let mut segments = Vec::with_capacity(changes + 1);
    let chronons: Vec<Chronon> = life.iter().collect();
    let mut start_idx = 0usize;
    let mut value = rng.random_range(0..1_000i64);
    let mut idx = step as usize;
    while start_idx < chronons.len() {
        let end_idx = idx.min(chronons.len());
        // One value per [start, end) run of the lifespan's chronons; the
        // canonical form will merge across adjacent runs automatically.
        let lo = chronons[start_idx];
        let hi = chronons[end_idx - 1];
        for run in life
            .clamp(Interval::new(lo, hi).expect("ordered"))
            .intervals()
        {
            segments.push((*run, Value::Int(value)));
        }
        value = rng.random_range(0..1_000i64);
        start_idx = end_idx;
        idx += step as usize;
    }
    TemporalValue::from_segments(segments).expect("disjoint by construction")
}

/// Generates a relation on [`emp_scheme`] per the spec.
pub fn gen_relation(spec: &WorkloadSpec) -> Relation {
    let scheme = emp_scheme(spec.era);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut tuples = Vec::with_capacity(spec.tuples);
    for k in 0..spec.tuples {
        let life = gen_lifespan(&mut rng, spec.era, spec.fragments);
        if life.is_empty() {
            continue;
        }
        let v = gen_history(&mut rng, &life, spec.changes);
        let w = gen_history(&mut rng, &life, spec.changes);
        let t = Tuple::builder(life)
            .constant("K", k as i64)
            .value("V", v)
            .value("W", w)
            .finish(&scheme)
            .expect("generated tuple is valid");
        tuples.push(t);
    }
    Relation::with_tuples(scheme, tuples).expect("keys distinct by construction")
}

/// Generates a relation on [`second_scheme`]; `overlap` in `[0, 1]` controls
/// how much of each tuple's lifespan overlaps the first relation's era
/// prefix (drives the E7 null-volume sweep).
pub fn gen_second_relation(spec: &WorkloadSpec, overlap: f64) -> Relation {
    let scheme = second_scheme(spec.era);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x05EC_017D);
    let mut tuples = Vec::with_capacity(spec.tuples);
    let shift = ((1.0 - overlap.clamp(0.0, 1.0)) * (spec.era as f64 / 2.0)) as i64;
    for g in 0..spec.tuples {
        let lo = shift + rng.random_range(0..=(spec.era / 4).max(1));
        let hi = (lo + spec.era / 2).min(spec.era);
        if lo > hi {
            continue;
        }
        let life = Lifespan::interval(lo, hi);
        let x = gen_history(&mut rng, &life, spec.changes);
        let t = Tuple::builder(life)
            .constant("G", g as i64)
            .value("X", x)
            .finish(&scheme)
            .expect("generated tuple is valid");
        tuples.push(t);
    }
    Relation::with_tuples(scheme, tuples).expect("keys distinct by construction")
}

/// Generates a relation on [`tt_scheme`] whose `AT` values point at random
/// chronons within the era (for dynamic TIME-SLICE / TIME-JOIN).
pub fn gen_tt_relation(spec: &WorkloadSpec) -> Relation {
    let scheme = tt_scheme(spec.era);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x0077_AE11);
    let mut tuples = Vec::with_capacity(spec.tuples);
    for e in 0..spec.tuples {
        let life = gen_lifespan(&mut rng, spec.era, spec.fragments);
        if life.is_empty() {
            continue;
        }
        // AT: per lifespan run, point at a random chronon of the era.
        let segments: Vec<(Interval, Value)> = life
            .intervals()
            .iter()
            .map(|run| (*run, Value::time(rng.random_range(0..=spec.era))))
            .collect();
        let at = TemporalValue::from_segments(segments).expect("runs are disjoint");
        let t = Tuple::builder(life)
            .constant("E", e as i64)
            .value("AT", at)
            .finish(&scheme)
            .expect("generated tuple is valid");
        tuples.push(t);
    }
    Relation::with_tuples(scheme, tuples).expect("keys distinct by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(gen_relation(&spec), gen_relation(&spec));
        assert_eq!(
            gen_second_relation(&spec, 0.5),
            gen_second_relation(&spec, 0.5)
        );
        assert_eq!(gen_tt_relation(&spec), gen_tt_relation(&spec));
    }

    #[test]
    fn spec_controls_size() {
        let small = gen_relation(&WorkloadSpec {
            tuples: 10,
            ..Default::default()
        });
        let big = gen_relation(&WorkloadSpec {
            tuples: 100,
            ..Default::default()
        });
        assert_eq!(small.len(), 10);
        assert_eq!(big.len(), 100);
    }

    #[test]
    fn changes_drive_segment_counts() {
        let calm = gen_relation(&WorkloadSpec {
            changes: 1,
            ..Default::default()
        });
        let busy = gen_relation(&WorkloadSpec {
            changes: 64,
            ..Default::default()
        });
        assert!(busy.segment_cells() > calm.segment_cells());
    }

    #[test]
    fn fragments_create_gaps() {
        let frag = gen_relation(&WorkloadSpec {
            fragments: 4,
            ..Default::default()
        });
        assert!(frag.iter().any(|t| t.lifespan().interval_count() > 1));
    }

    #[test]
    fn generated_relations_validate() {
        let r = gen_relation(&WorkloadSpec::default());
        assert!(r.check_key_constraint().is_ok());
        for t in r.iter() {
            assert!(t.validate(r.scheme()).is_ok());
        }
        let tt = gen_tt_relation(&WorkloadSpec::default());
        for t in tt.iter() {
            assert!(t.validate(tt.scheme()).is_ok());
        }
    }

    #[test]
    fn overlap_parameter_shifts_lifespans() {
        let spec = WorkloadSpec::default();
        let near = gen_second_relation(&spec, 1.0);
        let far = gen_second_relation(&spec, 0.0);
        let near_start = near.lifespan().first().unwrap().tick();
        let far_start = far.lifespan().first().unwrap().tick();
        assert!(far_start > near_start);
    }
}
