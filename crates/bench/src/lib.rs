//! # hrdm-bench — workload generation for the HRDM experiments
//!
//! Deterministic, parameterized generators for the experiment matrix in
//! `DESIGN.md` (E1–E12): historical relations with controllable size,
//! change rate, lifespan fragmentation, and overlap. Every generator is
//! seeded, so benches and EXPERIMENTS.md numbers are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod gen;
pub mod net_fixture;
pub mod partition_fixture;

pub use gen::{
    emp_scheme, gen_relation, gen_second_relation, gen_tt_relation, second_scheme, tt_scheme,
    WorkloadSpec,
};
