//! The shared workload fixture of the network benches: one scheme, one
//! tuple generator, server spawners, and closed-loop client drivers —
//! used by both the standalone bench (`benches/net.rs`) and the gated
//! `bench-json` entries (`net_query_throughput_8c`, `net_write_p99_8c`),
//! so the two can never silently measure different workloads.
//!
//! The gated entries run against a **detached** (in-memory) server: that
//! keeps them CPU/network-bound — loopback TCP on one runner class is
//! stable enough to gate — while the fsync-bound attached variants are
//! reported by `benches/net.rs` for trend reading only, consistent with
//! the workspace's bench-gate policy.

use hrdm_core::prelude::*;
use hrdm_net::{Client, ServerConfig, ServerHandle};
use hrdm_query::QueryResult;
use hrdm_storage::{ConcurrentDatabase, Database};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fixture's relation scheme (`K: Int` key, `V: Int`).
pub fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 1_000_000);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

/// A 50-chronon tuple with key `k`, born at `k mod 900_000`.
pub fn tup(k: i64) -> Tuple {
    let lo = k % 900_000;
    let life = Lifespan::interval(lo, lo + 50);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k)))
        .finish(&scheme())
        .unwrap()
}

/// A detached (in-memory) server over relation `r` with keys `0..preload`,
/// bound to an ephemeral loopback port.
pub fn spawn_query_server(preload: i64) -> ServerHandle {
    let mut db = Database::new();
    db.create_relation("r", scheme()).unwrap();
    for k in 0..preload {
        db.insert("r", tup(k)).unwrap();
    }
    spawn_over(ConcurrentDatabase::from_database(db))
}

/// An attached (WAL-durable) server over `dir` with relation `r` and keys
/// `0..preload` — the fsync-bound variant for trend benches.
pub fn spawn_attached_server(dir: &Path, preload: i64) -> ServerHandle {
    let db = ConcurrentDatabase::open(dir).unwrap();
    db.create_relation("r", scheme()).unwrap();
    for k in 0..preload {
        db.insert("r", tup(k)).unwrap();
    }
    spawn_over(db)
}

fn spawn_over(db: ConcurrentDatabase) -> ServerHandle {
    hrdm_net::Server::bind("127.0.0.1:0", Arc::new(db), ServerConfig::default())
        .unwrap()
        .spawn()
        .unwrap()
}

/// Aggregate queries/sec over `clients` closed-loop connections for
/// `window`: each client cycles point lookups and selective timeslices —
/// the planned pipeline (key probes, lifespan-index scans) over the wire.
pub fn query_throughput(addr: SocketAddr, clients: usize, window: Duration) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut n = 0u64;
                let mut i = c as i64;
                while !stop.load(Ordering::Relaxed) {
                    let q = match i % 2 {
                        0 => format!("SELECT-WHEN (K = {}) (r)", i % 997),
                        _ => format!(
                            "TIMESLICE [{0}..{1}] (r)",
                            (i * 37) % 800,
                            (i * 37) % 800 + 40
                        ),
                    };
                    match client.query(&q).unwrap() {
                        QueryResult::Relation(r) => {
                            std::hint::black_box(r.len());
                        }
                        other => panic!("expected relation, got {other:?}"),
                    }
                    n += 1;
                    i += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    total.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
}

/// Per-op wall latencies (ns, sorted ascending) of `clients` closed-loop
/// writers inserting disjoint keys over the wire for `window`. Key ranges
/// start at `base_key` (give each run a fresh base — keys are never
/// reused) with 10M reserved per client. The writes funnel into the
/// server's group-commit queue, so concurrent clients form batches; read
/// the server's commit stats before/after for the amortization.
pub fn write_latencies(
    addr: SocketAddr,
    clients: usize,
    window: Duration,
    base_key: i64,
) -> Vec<u64> {
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut lat = Vec::new();
                let mut k = base_key + (c as i64) * 10_000_000;
                while !stop.load(Ordering::Relaxed) {
                    k += 1;
                    let t = tup(k);
                    let started = Instant::now();
                    client.insert("r", t).unwrap();
                    lat.push(started.elapsed().as_nanos() as u64);
                }
                lat
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        lat.extend(h.join().unwrap());
    }
    lat.sort_unstable();
    lat
}

/// The `p`-quantile of already-sorted nanosecond latencies.
pub fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx]
}
