//! The shared workload fixture of the partitioning benches: one scheme,
//! one tuple generator, one populate routine — used by both the criterion
//! bench (`benches/partition.rs`) and the gated `bench-json` entries, so
//! the two can never silently measure different datasets.

use hrdm_core::prelude::*;
use hrdm_storage::{ConcurrentDatabase, Database, PartitionPolicy};

/// Era exponent: chronons span `[0, 2^20]`.
pub const ERA_LOG2: u32 = 20;
/// Partition-span exponent: `2^20 / 2^14 = 64` partitions over the era.
pub const SPAN_LOG2: u32 = 14;

/// The fixture's relation scheme (`K: Int` key, `V: Int`).
pub fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 1 << ERA_LOG2);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

/// A tuple whose birth is spread pseudo-uniformly over the era by
/// multiplicative jitter, living for 50 chronons.
pub fn tup(k: i64) -> Tuple {
    tup_at(k, (k.wrapping_mul(10_487)).rem_euclid((1 << ERA_LOG2) - 64))
}

/// A tuple born at exactly `lo` — for workloads that must target one
/// specific partition (e.g. dirtying all 64 deterministically).
pub fn tup_at(k: i64, lo: i64) -> Tuple {
    let life = Lifespan::interval(lo, lo + 50);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k)))
        .finish(&scheme())
        .unwrap()
}

/// A populated engine under `policy` with keys `0..n`.
///
/// Populates a **detached** `Database` (unshared → in-place index and
/// partition-map maintenance), then wraps it: driving `n` inserts through
/// `ConcurrentDatabase` would publish a snapshot per op and pay the
/// copy-on-write toll `n` times.
pub fn populated(policy: PartitionPolicy, n: i64) -> ConcurrentDatabase {
    let mut db = Database::new();
    db.set_partition_policy(policy);
    db.create_relation("r", scheme()).unwrap();
    for k in 0..n {
        db.insert("r", tup(k)).unwrap();
    }
    ConcurrentDatabase::from_database(db)
}
