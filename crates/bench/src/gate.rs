//! The bench-regression gate: measure tracked benches, emit them as a JSON
//! artifact, and compare against a committed baseline.
//!
//! The `bench-json` binary drives this module in CI: it runs the tracked
//! benches, writes `BENCH_8.json`, and **fails** when any tracked bench's
//! median regresses more than the tolerance (default 25%, override with
//! `HRDM_BENCH_TOLERANCE`) against `bench/baseline.json`. The comparison
//! logic lives here, in library code, so the gate itself is unit-tested —
//! including the "a 2× slowdown must fail" property.
//!
//! No serde: the workspace is offline, so the (tiny, flat) JSON format is
//! written and read by hand. Schema 2 adds a `"metrics"` object of
//! engine internals sampled from the [`hrdm_obs`] global registry after
//! the benches ran (group-commit batch sizes, partition prune ratios,
//! WAL latencies) — artifact-only trend data, never gated:
//!
//! ```json
//! {
//!   "schema": 2,
//!   "benches": [
//!     { "name": "timeslice_indexed_10k", "median_ns": 1234.5,
//!       "throughput_per_sec": 810372.6 }
//!   ],
//!   "metrics": {
//!     "hrdm_commit_batch_size_p50": 8,
//!     "hrdm_query_prune_ratio": 0.9688
//!   }
//! }
//! ```
//!
//! The metrics keys deliberately avoid the `"name"` key so
//! [`parse_baseline`]'s scanner (paired `"name"`/`"median_ns"` keys)
//! stays oblivious to the section.

use std::time::{Duration, Instant};

/// One tracked bench's measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Stable bench name (the baseline is keyed on it).
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
}

impl BenchResult {
    /// Iterations per second implied by the median.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.median_ns > 0.0 {
            1e9 / self.median_ns
        } else {
            0.0
        }
    }
}

/// One committed baseline entry: the reference median, plus an optional
/// per-bench tolerance override. Wall-clock-tail benches (network p99s)
/// carry a wider tolerance than CPU-bound medians — one global knob would
/// either flake on tails or miss real regressions on the stable benches.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineEntry {
    /// The bench this entry gates.
    pub name: String,
    /// Its committed median.
    pub median_ns: f64,
    /// Per-bench tolerance override (fractional, e.g. `3.0` = fail above
    /// 4× baseline); `None` uses the gate-wide default.
    pub tolerance: Option<f64>,
}

impl BaselineEntry {
    /// An entry using the gate-wide default tolerance.
    pub fn new(name: impl Into<String>, median_ns: f64) -> BaselineEntry {
        BaselineEntry {
            name: name.into(),
            median_ns,
            tolerance: None,
        }
    }
}

/// One bench that got slower than the baseline allows.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// The offending bench.
    pub name: String,
    /// Its committed baseline median.
    pub baseline_ns: f64,
    /// Its measured median.
    pub current_ns: f64,
    /// The tolerance this bench was gated with.
    pub tolerance: f64,
}

impl Regression {
    /// current / baseline — e.g. `2.0` for a 2× slowdown.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

/// Outcome of comparing a run against the baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateOutcome {
    /// Benches slower than `baseline × (1 + tolerance)`.
    pub regressions: Vec<Regression>,
    /// How many benches were present in both run and baseline.
    pub compared: usize,
    /// Benches in the baseline that this run did not produce — a gate
    /// that silently compares nothing must not pass green.
    pub missing: Vec<String>,
}

impl GateOutcome {
    /// Does the gate pass?
    pub fn pass(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Compares measured results against the committed baseline. A bench
/// regresses when `current > baseline * (1 + tolerance)`, where the
/// tolerance is the entry's own override or `default_tolerance`. Benches
/// present only in the current run (newly added) are ignored; benches
/// present only in the baseline are reported as `missing`.
pub fn compare(
    current: &[BenchResult],
    baseline: &[BaselineEntry],
    default_tolerance: f64,
) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    for entry in baseline {
        match current.iter().find(|r| r.name == entry.name) {
            None => outcome.missing.push(entry.name.clone()),
            Some(r) => {
                outcome.compared += 1;
                let tolerance = entry.tolerance.unwrap_or(default_tolerance);
                if r.median_ns > entry.median_ns * (1.0 + tolerance) {
                    outcome.regressions.push(Regression {
                        name: entry.name.clone(),
                        baseline_ns: entry.median_ns,
                        current_ns: r.median_ns,
                        tolerance,
                    });
                }
            }
        }
    }
    outcome
}

/// Renders results as the artifact JSON (see the module docs).
pub fn to_json(results: &[BenchResult]) -> String {
    to_json_with_metrics(results, &[])
}

/// [`to_json`] plus the schema-2 `"metrics"` object: named samples of
/// engine internals (registry counters, histogram percentiles) riding
/// along in the artifact for trend tracking. Never parsed by the gate.
pub fn to_json_with_metrics(results: &[BenchResult], metrics: &[(String, f64)]) -> String {
    let mut out = String::from("{\n  \"schema\": 2,\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"median_ns\": {:.1}, \"throughput_per_sec\": {:.1} }}{sep}\n",
            r.name,
            r.median_ns,
            r.throughput_per_sec()
        ));
    }
    out.push_str("  ],\n  \"metrics\": {\n");
    for (i, (name, value)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        // Integers render bare so counters stay exact in the artifact.
        if value.fract() == 0.0 && value.abs() < 1e15 {
            out.push_str(&format!("    \"{name}\": {}{sep}\n", *value as i64));
        } else {
            out.push_str(&format!("    \"{name}\": {value:.4}{sep}\n"));
        }
    }
    out.push_str("  }\n}\n");
    out
}

/// Renders the committed baseline: like [`to_json`] but with a
/// `"tolerance"` field on the entries whose name appears in `overrides`,
/// and no metrics section (the baseline gates medians, nothing else).
pub fn baseline_json(results: &[BenchResult], overrides: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n  \"schema\": 2,\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let tol = overrides
            .iter()
            .find(|(name, _)| *name == r.name)
            .map(|(_, t)| format!(", \"tolerance\": {t:.2}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"median_ns\": {:.1}, \"throughput_per_sec\": {:.1}{tol} }}{sep}\n",
            r.name,
            r.median_ns,
            r.throughput_per_sec()
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses baseline entries back out of the artifact/baseline JSON.
/// Deliberately a scanner, not a JSON parser: it accepts exactly the flat
/// shape [`to_json`]/[`baseline_json`] write (and hand-edits of them),
/// pairing each `"name"` with the next `"median_ns"` and an optional
/// `"tolerance"` appearing before the following entry.
pub fn parse_baseline(json: &str) -> Result<Vec<BaselineEntry>, String> {
    fn number_after(rest: &str, key: &str, name: &str) -> Result<(f64, usize), String> {
        let at = rest
            .find(key)
            .ok_or_else(|| format!("no {key} after name \"{name}\""))?;
        let after_key = &rest[at + key.len()..];
        let colon = after_key
            .find(':')
            .ok_or_else(|| format!("no colon after {key} of \"{name}\""))?;
        let num_start = at + key.len() + colon + 1;
        let num = rest[num_start..].trim_start();
        let trimmed = rest[num_start..].len() - num.len();
        let end = num
            .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
            .unwrap_or(num.len());
        let value: f64 = num[..end]
            .trim()
            .parse()
            .map_err(|e| format!("bad {key} for \"{name}\": {e}"))?;
        Ok((value, num_start + trimmed + end))
    }

    let mut entries: Vec<BaselineEntry> = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\"") {
        rest = &rest[at + "\"name\"".len()..];
        let open = rest
            .find('"')
            .ok_or_else(|| "missing opening quote after \"name\":".to_string())?;
        let rest_after_open = &rest[open + 1..];
        let close = rest_after_open
            .find('"')
            .ok_or_else(|| "unterminated name string".to_string())?;
        let name = rest_after_open[..close].to_string();
        rest = &rest_after_open[close + 1..];

        let (median_ns, consumed) = number_after(rest, "\"median_ns\"", &name)?;
        rest = &rest[consumed..];

        // An optional tolerance belongs to this entry only if it appears
        // before the next entry's "name".
        let entry_end = rest.find("\"name\"").unwrap_or(rest.len());
        let tolerance = match rest[..entry_end].find("\"tolerance\"") {
            Some(_) => {
                let (t, consumed) = number_after(rest, "\"tolerance\"", &name)?;
                rest = &rest[consumed..];
                Some(t)
            }
            None => None,
        };
        entries.push(BaselineEntry {
            name,
            median_ns,
            tolerance,
        });
    }
    if entries.is_empty() {
        return Err("no benches found in baseline JSON".to_string());
    }
    Ok(entries)
}

/// Measures the median ns/iteration of `f`: one warm-up sample, then
/// `samples` timed samples of at least `min_sample` wall time each; the
/// median of the per-sample means is robust against one-off stalls.
pub fn measure_median_ns<F: FnMut()>(samples: usize, min_sample: Duration, mut f: F) -> f64 {
    fn one_sample<F: FnMut()>(min: Duration, f: &mut F) -> f64 {
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            f();
            iters += 1;
            if started.elapsed() >= min {
                break;
            }
        }
        started.elapsed().as_nanos() as f64 / iters as f64
    }
    let _ = one_sample(min_sample, &mut f); // warm-up
    let mut means: Vec<f64> = (0..samples.max(1))
        .map(|_| one_sample(min_sample, &mut f))
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    means[means.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<BenchResult> {
        vec![
            BenchResult {
                name: "a".into(),
                median_ns: 100.0,
            },
            BenchResult {
                name: "b".into(),
                median_ns: 2_000.0,
            },
        ]
    }

    #[test]
    fn json_round_trips() {
        let json = to_json(&results());
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(
            parsed,
            vec![
                BaselineEntry::new("a", 100.0),
                BaselineEntry::new("b", 2000.0)
            ]
        );
    }

    /// The schema-2 metrics section renders, and — because its keys are
    /// not `"name"` — the baseline scanner still sees only the benches.
    #[test]
    fn metrics_section_renders_and_stays_invisible_to_the_scanner() {
        let metrics = vec![
            ("hrdm_commit_batch_size_p50".to_string(), 8.0),
            ("hrdm_query_prune_ratio".to_string(), 0.96875),
        ];
        let json = to_json_with_metrics(&results(), &metrics);
        assert!(json.contains("\"schema\": 2"), "{json}");
        assert!(json.contains("\"hrdm_commit_batch_size_p50\": 8"), "{json}");
        assert!(
            json.contains("\"hrdm_query_prune_ratio\": 0.9688"),
            "{json}"
        );
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(
            parsed,
            vec![
                BaselineEntry::new("a", 100.0),
                BaselineEntry::new("b", 2000.0)
            ]
        );
    }

    /// `baseline_json` carries per-bench tolerance overrides through a
    /// parse round trip; entries without an override stay `None`.
    #[test]
    fn tolerance_overrides_round_trip() {
        let json = baseline_json(&results(), &[("b", 3.0)]);
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(parsed[0], BaselineEntry::new("a", 100.0));
        assert_eq!(
            parsed[1],
            BaselineEntry {
                name: "b".into(),
                median_ns: 2000.0,
                tolerance: Some(3.0),
            }
        );
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = vec![
            BaselineEntry::new("a", 90.0),
            BaselineEntry::new("b", 1_900.0),
        ];
        // 100 vs 90 is +11%, 2000 vs 1900 is +5.3% — both under 25%.
        let outcome = compare(&results(), &baseline, 0.25);
        assert!(outcome.pass(), "{outcome:?}");
        assert_eq!(outcome.compared, 2);
    }

    /// The acceptance property: an injected 2× slowdown must fail the gate.
    #[test]
    fn two_x_slowdown_fails() {
        let baseline = vec![
            BaselineEntry::new("a", 100.0),
            BaselineEntry::new("b", 2_000.0),
        ];
        let slowed: Vec<BenchResult> = results()
            .into_iter()
            .map(|mut r| {
                r.median_ns *= 2.0;
                r
            })
            .collect();
        let outcome = compare(&slowed, &baseline, 0.25);
        assert!(!outcome.pass());
        assert_eq!(outcome.regressions.len(), 2);
        assert!((outcome.regressions[0].ratio() - 2.0).abs() < 1e-9);
    }

    /// A per-bench tolerance override widens that bench's gate without
    /// loosening the others: under a 3.0 override, a 2× slowdown passes a
    /// tail bench while the same slowdown still fails a default bench —
    /// and a slowdown past the override still fails.
    #[test]
    fn tolerance_override_gates_per_bench() {
        let baseline = vec![
            BaselineEntry::new("a", 100.0),
            BaselineEntry {
                name: "b".into(),
                median_ns: 2_000.0,
                tolerance: Some(3.0),
            },
        ];
        let slowed: Vec<BenchResult> = results()
            .into_iter()
            .map(|mut r| {
                r.median_ns *= 2.0;
                r
            })
            .collect();
        let outcome = compare(&slowed, &baseline, 0.25);
        assert_eq!(outcome.regressions.len(), 1, "{outcome:?}");
        assert_eq!(outcome.regressions[0].name, "a");

        let way_slower: Vec<BenchResult> = results()
            .into_iter()
            .map(|mut r| {
                r.median_ns *= 5.0;
                r
            })
            .collect();
        let outcome = compare(&way_slower, &baseline, 0.25);
        assert_eq!(outcome.regressions.len(), 2, "5x must fail even the tail");
        assert_eq!(outcome.regressions[1].tolerance, 3.0);
    }

    /// A run that no longer produces a tracked bench must not pass green.
    #[test]
    fn missing_bench_fails() {
        let baseline = vec![
            BaselineEntry::new("a", 100.0),
            BaselineEntry::new("gone", 10.0),
        ];
        let outcome = compare(&results(), &baseline, 0.25);
        assert!(!outcome.pass());
        assert_eq!(outcome.missing, vec!["gone".to_string()]);
    }

    /// New benches without a baseline entry are allowed (the baseline is
    /// refreshed in the same PR that adds them).
    #[test]
    fn extra_current_bench_is_ignored() {
        let baseline = vec![BaselineEntry::new("a", 100.0)];
        let outcome = compare(&results(), &baseline, 0.25);
        assert!(outcome.pass());
        assert_eq!(outcome.compared, 1);
    }

    #[test]
    fn measure_produces_positive_medians() {
        let mut x = 0u64;
        let ns = measure_median_ns(3, Duration::from_millis(1), || {
            x = x.wrapping_add(1);
            std::hint::black_box(x);
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn garbage_baseline_is_an_error() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("not json at all").is_err());
    }
}
