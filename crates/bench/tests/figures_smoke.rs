//! The figure-regeneration binary must keep producing all eleven figures
//! with their load-bearing content (EXPERIMENTS.md §1 depends on it).

use std::process::Command;

#[test]
fn figures_binary_regenerates_all_figures() {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .output()
        .expect("figures binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8 output");

    for n in 1..=12 {
        assert!(
            text.contains(&format!("Figure {n}:")),
            "figure {n} missing from output"
        );
    }
    // Load-bearing content per figure:
    // Fig. 6's evolved attribute lifespan with a gap.
    assert!(text.contains("ALS = {[5,15], [28,40]}"), "Fig. 6 ALS wrong");
    // Fig. 7's vls = X ∩ Y probes.
    assert!(
        text.contains(
            "value defined at 25? true; at 15 (in Y only)? false; at 32 (in X only)? false"
        ),
        "Fig. 7 vls probes wrong"
    );
    // Fig. 9's three levels all present.
    for level in ["REPRESENTATION", "MODEL", "PHYSICAL"] {
        assert!(text.contains(level), "Fig. 9 missing {level} level");
    }
    assert!(
        text.contains("checksum ok: true"),
        "Fig. 9 page checksum failed"
    );
    // Fig. 11's union vs object-union contrast.
    assert!(
        text.contains("key constraint audit: key violation"),
        "Fig. 11 plain union should violate the key constraint"
    );
    assert!(
        text.contains("1 tuple (merged object)"),
        "Fig. 11 object union should merge"
    );
    // Fig. 12's access-path contrast: both index kinds chosen, and a
    // sequential fallback for the non-indexable predicate.
    assert!(
        text.contains("IndexScan(lifespan, [0..10])"),
        "Fig. 12 missing lifespan IndexScan"
    );
    assert!(
        text.contains("IndexScan(key, NAME = \"Mary\")"),
        "Fig. 12 missing key IndexScan"
    );
    assert!(
        text.contains("[SeqScan]"),
        "Fig. 12 missing SeqScan fallback"
    );
}
