//! E5 — plain vs object-based set operators across lifespan fragmentation.
//!
//! The object-based operators (paper §4.1) do strictly more work — key
//! matching plus merging — and this bench shows the factor, swept over the
//! fragmentation of tuple lifespans (reincarnation makes merging costlier).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::{gen_relation, WorkloadSpec};
use hrdm_core::algebra::{difference, difference_o, intersection, intersection_o, union, union_o};
use std::hint::black_box;

fn bench_setops(c: &mut Criterion) {
    let mut group = c.benchmark_group("setops");
    for &fragments in &[1usize, 4, 16] {
        let spec1 = WorkloadSpec {
            tuples: 200,
            fragments,
            seed: 1,
            ..Default::default()
        };
        let spec2 = WorkloadSpec {
            tuples: 200,
            fragments,
            seed: 2,
            ..Default::default()
        };
        let r1 = gen_relation(&spec1);
        let r2 = gen_relation(&spec2);

        group.bench_with_input(BenchmarkId::new("union", fragments), &fragments, |b, _| {
            b.iter(|| black_box(union(black_box(&r1), black_box(&r2)).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("union_o", fragments),
            &fragments,
            |b, _| b.iter(|| black_box(union_o(black_box(&r1), black_box(&r2)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("intersection", fragments),
            &fragments,
            |b, _| b.iter(|| black_box(intersection(black_box(&r1), black_box(&r2)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("intersection_o", fragments),
            &fragments,
            |b, _| b.iter(|| black_box(intersection_o(black_box(&r1), black_box(&r2)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("difference", fragments),
            &fragments,
            |b, _| b.iter(|| black_box(difference(black_box(&r1), black_box(&r2)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("difference_o", fragments),
            &fragments,
            |b, _| b.iter(|| black_box(difference_o(black_box(&r1), black_box(&r2)).unwrap())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_setops
}
criterion_main!(benches);
