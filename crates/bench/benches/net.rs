//! E16 — the network layer: multi-client query throughput, mixed
//! read/write latency over the wire, and group-commit batch formation
//! under network load.
//!
//! Three experiments against an in-process `hrdmd` on a loopback socket:
//!
//! * **Query throughput** — N closed-loop wire clients (N ∈ {1, 8})
//!   cycling point lookups and selective timeslices against a detached
//!   10k-tuple server. Each query rides the full stack: frame encode →
//!   TCP → per-request snapshot → planned pipeline → streamed chunks →
//!   frame decode.
//! * **Write latency** — 8 closed-loop clients inserting disjoint keys
//!   through an **attached** (WAL-durable) server: per-op p50/p99, plus
//!   the group-commit mean batch size the concurrent clients formed. The
//!   batch size is the point: independent TCP clients amortize fsyncs
//!   exactly like in-process writer threads.
//! * **Mixed workload** — 4 readers + 4 writers on one attached server;
//!   read and write p50/p99 under interference.
//!
//! Set `HRDM_BENCH_FAST=1` for the CI smoke mode.

use hrdm_bench::net_fixture::{
    percentile, query_throughput, spawn_attached_server, spawn_query_server, tup, write_latencies,
};
use hrdm_net::Client;
use hrdm_query::QueryResult;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast() -> bool {
    std::env::var_os("HRDM_BENCH_FAST").is_some_and(|v| v != "0")
}

fn measure_window() -> Duration {
    if fast() {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(1500)
    }
}

fn preload() -> i64 {
    if fast() {
        1_000
    } else {
        10_000
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("hrdm-bench-net-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("benchmarking group `net` (cores: {cores})");

    // --- Query throughput ---------------------------------------------------
    let server = spawn_query_server(preload());
    let q1 = query_throughput(server.addr(), 1, measure_window());
    let q8 = query_throughput(server.addr(), 8, measure_window());
    server.shutdown();
    let scaling = if q1 > 0.0 { q8 / q1 } else { 0.0 };
    println!("net/query_throughput_1c                          throughput: {q1:>12.0} queries/sec");
    println!("net/query_throughput_8c                          throughput: {q8:>12.0} queries/sec");
    println!(
        "net/query_scaling_8c_over_1c                     factor: {scaling:>10.2}x (cores: {cores})"
    );

    // --- Durable write latency over the wire --------------------------------
    let dir = bench_dir("writes");
    let server = spawn_attached_server(&dir, preload());
    let before = server.stats();
    let lat = write_latencies(server.addr(), 8, measure_window(), 100_000_000);
    let after = server.stats();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    let batches = after.commit_batches - before.commit_batches;
    let ops = after.commit_ops - before.commit_ops;
    let mean_batch = if batches == 0 {
        0.0
    } else {
        ops as f64 / batches as f64
    };
    println!(
        "net/write_p50_8c_attached                        time: {:>12} ns/write",
        percentile(&lat, 0.50)
    );
    println!(
        "net/write_p99_8c_attached                        time: {:>12} ns/write",
        percentile(&lat, 0.99)
    );
    println!(
        "net/group_commit_mean_batch_8c                   factor: {mean_batch:>10.2} ops/fsync"
    );

    // --- Mixed read/write workload ------------------------------------------
    let dir = bench_dir("mixed");
    let server = spawn_attached_server(&dir, preload());
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut lat = Vec::new();
                let mut i = c as i64;
                while !stop.load(Ordering::Relaxed) {
                    let q = format!("SELECT-WHEN (K = {}) (r)", i % 997);
                    let started = Instant::now();
                    match client.query(&q).unwrap() {
                        QueryResult::Relation(r) => {
                            std::hint::black_box(r.len());
                        }
                        other => panic!("expected relation, got {other:?}"),
                    }
                    lat.push(started.elapsed().as_nanos() as u64);
                    i += 1;
                }
                lat
            })
        })
        .collect();
    let writers: Vec<_> = (0..4)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut lat = Vec::new();
                let mut k = 50_000_000i64 + (c as i64) * 10_000_000;
                while !stop.load(Ordering::Relaxed) {
                    k += 1;
                    let t = tup(k);
                    let started = Instant::now();
                    client.insert("r", t).unwrap();
                    lat.push(started.elapsed().as_nanos() as u64);
                }
                lat
            })
        })
        .collect();
    std::thread::sleep(measure_window());
    stop.store(true, Ordering::Relaxed);
    let mut read_lat: Vec<u64> = Vec::new();
    for h in readers {
        read_lat.extend(h.join().unwrap());
    }
    let mut write_lat: Vec<u64> = Vec::new();
    for h in writers {
        write_lat.extend(h.join().unwrap());
    }
    read_lat.sort_unstable();
    write_lat.sort_unstable();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "net/mixed_read_p50_4r4w                          time: {:>12} ns/query",
        percentile(&read_lat, 0.50)
    );
    println!(
        "net/mixed_read_p99_4r4w                          time: {:>12} ns/query",
        percentile(&read_lat, 0.99)
    );
    println!(
        "net/mixed_write_p50_4r4w                         time: {:>12} ns/write",
        percentile(&write_lat, 0.50)
    );
    println!(
        "net/mixed_write_p99_4r4w                         time: {:>12} ns/write",
        percentile(&write_lat, 0.99)
    );
}
