//! E7 — the §5 null-vs-lifespan trade-off, swept over lifespan overlap.
//!
//! The product pairs tuples over the **union** of lifespans (nulls inside);
//! the equijoin pairs over the **intersection** (null-free). As operand
//! overlap shrinks, the product's null volume grows while the join simply
//! returns less — the two ends of the paper's stated trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::{gen_relation, gen_second_relation, WorkloadSpec};
use hrdm_core::algebra::{
    cartesian_product, null_volume, theta_join, theta_join_union, Comparator,
};
use std::hint::black_box;

fn bench_product_nulls(c: &mut Criterion) {
    let mut group = c.benchmark_group("product_nulls");
    let spec = WorkloadSpec {
        tuples: 64,
        changes: 4,
        ..Default::default()
    };
    let r = gen_relation(&spec);
    for &overlap in &[0.0f64, 0.5, 1.0] {
        let s = gen_second_relation(&spec, overlap);
        let label = format!("{overlap:.1}");

        // Null volume per operator, printed for EXPERIMENTS.md.
        let product = cartesian_product(&r, &s).unwrap();
        let join = theta_join(&r, &s, &"V".into(), Comparator::Le, &"X".into()).unwrap();
        let union_join =
            theta_join_union(&r, &s, &"V".into(), Comparator::Le, &"X".into()).unwrap();
        println!(
            "[product_nulls] overlap={label}: product_nulls={} join_nulls={} \
             union_join_nulls={} join_tuples={} product_tuples={}",
            null_volume(&product),
            null_volume(&join),
            null_volume(&union_join),
            join.len(),
            product.len()
        );

        group.bench_with_input(
            BenchmarkId::new("cartesian_product", &label),
            &overlap,
            |b, _| b.iter(|| black_box(cartesian_product(black_box(&r), black_box(&s)).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("theta_join_intersection", &label),
            &overlap,
            |b, _| {
                b.iter(|| {
                    black_box(
                        theta_join(
                            black_box(&r),
                            black_box(&s),
                            &"V".into(),
                            Comparator::Le,
                            &"X".into(),
                        )
                        .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("theta_join_union", &label),
            &overlap,
            |b, _| {
                b.iter(|| {
                    black_box(
                        theta_join_union(
                            black_box(&r),
                            black_box(&s),
                            &"V".into(),
                            Comparator::Le,
                            &"X".into(),
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_product_nulls
}
criterion_main!(benches);
