//! E11 — lifespan set-algebra microcosts across interval counts.
//!
//! The paper's §2 trade-off discussion assumes lifespan bookkeeping is
//! cheap; this bench quantifies the primitive costs: union / intersection /
//! difference of lifespans with 1 … 1000 maximal intervals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_time::Lifespan;
use std::hint::black_box;

fn fragmented(n: usize, offset: i64) -> Lifespan {
    Lifespan::of(
        &(0..n)
            .map(|i| {
                let lo = offset + (i as i64) * 10;
                (lo, lo + 4)
            })
            .collect::<Vec<_>>(),
    )
}

fn bench_lifespan(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifespan_setops");
    for &n in &[1usize, 10, 100, 1000] {
        let a = fragmented(n, 0);
        let b = fragmented(n, 5); // interleaved: worst-case overlap pattern
        group.bench_with_input(BenchmarkId::new("union", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).union(black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("intersect", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).intersect(black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("difference", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).difference(black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("contains", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).contains(hrdm_time::Chronon::new(n as i64 * 5))))
        });
    }
    group.finish();
}

/// Ablation for DESIGN.md choice #1: canonical interval runs vs a naive
/// `BTreeSet<i64>` chronon-set representation ("lifespans are just sets").
/// Same semantics — the property tests prove it — wildly different cost.
fn bench_ablation(c: &mut Criterion) {
    use std::collections::BTreeSet;
    let mut group = c.benchmark_group("lifespan_ablation");
    for &n in &[10usize, 100] {
        let a = fragmented(n, 0);
        let b = fragmented(n, 5);
        let sa: BTreeSet<i64> = a.iter().map(|c| c.tick()).collect();
        let sb: BTreeSet<i64> = b.iter().map(|c| c.tick()).collect();
        println!(
            "[lifespan_ablation] runs={n}: interval_repr={} runs, set_repr={} chronons",
            a.interval_count(),
            sa.len()
        );
        group.bench_with_input(BenchmarkId::new("interval_union", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).union(black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("btreeset_union", n), &n, |bench, _| {
            bench.iter(|| {
                let u: BTreeSet<i64> = black_box(&sa).union(black_box(&sb)).copied().collect();
                black_box(u)
            })
        });
        group.bench_with_input(BenchmarkId::new("interval_intersect", n), &n, |bench, _| {
            bench.iter(|| black_box(black_box(&a).intersect(black_box(&b))))
        });
        group.bench_with_input(BenchmarkId::new("btreeset_intersect", n), &n, |bench, _| {
            bench.iter(|| {
                let u: BTreeSet<i64> = black_box(&sa)
                    .intersection(black_box(&sb))
                    .copied()
                    .collect();
                black_box(u)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_lifespan, bench_ablation
}
criterion_main!(benches);
