//! E15 — concurrency: snapshot-isolated read scaling and group-commit
//! write latency.
//!
//! Two experiments against [`hrdm_storage::ConcurrentDatabase`]:
//!
//! * **Read scaling** — N reader threads (N ∈ {1, 8}), each repeatedly
//!   taking a snapshot and running a planned query pipeline against it,
//!   while one writer thread keeps committing. Reported as aggregate
//!   reads/sec; on a machine with ≥ 8 cores the 8-reader aggregate should
//!   be ≥ 4× the 1-reader aggregate (snapshot reads take no locks beyond
//!   one `Arc` clone). The core count is printed so CI numbers from
//!   1-core runners are not misread.
//! * **Write latency** — per-write wall latency, p50/p99: one writer
//!   through the plain fsync-per-op path (the `write_path.rs` baseline),
//!   then 8 concurrent writers through the group-commit writer. Group
//!   commit batches the 8 writers' ops into ~1 fsync, so the concurrent
//!   p50 should sit **below** the single-writer fsync-per-op latency, and
//!   the mean commit batch size is reported as the amortization factor.
//!
//! Set `HRDM_BENCH_FAST=1` for the CI smoke mode.

use hrdm_core::prelude::*;
use hrdm_query::{evaluate_planned, parse_query, Query};
use hrdm_storage::{ConcurrentDatabase, Database};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fast() -> bool {
    std::env::var_os("HRDM_BENCH_FAST").is_some_and(|v| v != "0")
}

fn measure_window() -> Duration {
    if fast() {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(1500)
    }
}

fn preload() -> i64 {
    if fast() {
        1_000
    } else {
        10_000
    }
}

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 1_000_000);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn tup(k: i64) -> Tuple {
    let lo = k % 900_000;
    let life = Lifespan::interval(lo, lo + 50);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k)))
        .finish(&scheme())
        .unwrap()
}

fn bench_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("hrdm-bench-conc-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn populated_concurrent(n: i64) -> ConcurrentDatabase {
    let db = ConcurrentDatabase::new();
    db.create_relation("r", scheme()).unwrap();
    for k in 0..n {
        db.insert("r", tup(k)).unwrap();
    }
    db
}

/// Aggregate reads/sec with `readers` reader threads and one background
/// writer. Each read = snapshot + optimize + plan + evaluate.
fn read_throughput(readers: usize) -> f64 {
    let db = Arc::new(populated_concurrent(preload()));
    let queries: Vec<Query> = [
        "TIMESLICE [100..140] (r)",
        "SELECT-WHEN (K = 17) (r)",
        "SELECT-IF (V >= 500, EXISTS) (TIMESLICE [0..50] (r))",
    ]
    .iter()
    .map(|q| parse_query(q).unwrap())
    .collect();
    let queries = Arc::new(queries);

    let stop = Arc::new(AtomicBool::new(false));
    let total_reads = Arc::new(AtomicU64::new(0));

    // One writer keeps the published snapshot churning.
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut k = 10_000_000i64;
            while !stop.load(Ordering::Relaxed) {
                k += 1;
                db.insert("r", tup(k)).unwrap();
            }
        })
    };

    let window = measure_window();
    let handles: Vec<_> = (0..readers)
        .map(|i| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            let total_reads = Arc::clone(&total_reads);
            std::thread::spawn(move || {
                let mut n = 0u64;
                let mut qi = i; // stagger query mix across readers
                while !stop.load(Ordering::Relaxed) {
                    let snap = db.snapshot();
                    let q = &queries[qi % queries.len()];
                    qi += 1;
                    std::hint::black_box(evaluate_planned(q, &*snap).unwrap());
                    n += 1;
                }
                total_reads.fetch_add(n, Ordering::Relaxed);
            })
        })
        .collect();

    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    writer.join().unwrap();
    total_reads.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx]
}

/// Per-write latency of a single writer on the fsync-per-op path — the
/// `write_path.rs` baseline, measured per op so percentiles are honest.
fn single_writer_latencies() -> Vec<u64> {
    let dir = bench_dir("single");
    let mut db = Database::open(&dir).unwrap();
    db.create_relation("r", scheme()).unwrap();
    for k in 0..preload() {
        db.insert("r", tup(k)).unwrap();
    }
    let deadline = Instant::now() + measure_window();
    let mut lat = Vec::new();
    let mut k = 20_000_000i64;
    while Instant::now() < deadline {
        k += 1;
        let t = tup(k);
        let started = Instant::now();
        db.insert("r", t).unwrap();
        lat.push(started.elapsed().as_nanos() as u64);
    }
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
    lat.sort_unstable();
    lat
}

/// Per-write latency with `writers` concurrent writers through the
/// group-commit path, plus the mean commit batch size.
fn group_commit_latencies(writers: usize) -> (Vec<u64>, f64) {
    let dir = bench_dir(&format!("group-{writers}"));
    let db = Arc::new(ConcurrentDatabase::open(&dir).unwrap());
    db.create_relation("r", scheme()).unwrap();
    for k in 0..preload() {
        db.insert("r", tup(k)).unwrap();
    }
    let before = db.stats();

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                let mut k = 30_000_000i64 + (w as i64) * 10_000_000;
                while !stop.load(Ordering::Relaxed) {
                    k += 1;
                    let t = tup(k);
                    let started = Instant::now();
                    db.insert("r", t).unwrap();
                    lat.push(started.elapsed().as_nanos() as u64);
                }
                lat
            })
        })
        .collect();
    std::thread::sleep(measure_window());
    stop.store(true, Ordering::Relaxed);
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        lat.extend(h.join().unwrap());
    }
    let after = db.stats();
    let batches = after.batches - before.batches;
    let ops = after.ops - before.ops;
    let mean_batch = if batches == 0 {
        0.0
    } else {
        ops as f64 / batches as f64
    };
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
    lat.sort_unstable();
    (lat, mean_batch)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("benchmarking group `concurrency` (cores: {cores})");

    // --- Read scaling -----------------------------------------------------
    let r1 = read_throughput(1);
    let r8 = read_throughput(8);
    let scaling = if r1 > 0.0 { r8 / r1 } else { 0.0 };
    println!("concurrency/reads_1r                             throughput: {r1:>12.0} reads/sec");
    println!("concurrency/reads_8r                             throughput: {r8:>12.0} reads/sec");
    println!(
        "concurrency/read_scaling_8r_over_1r              factor: {scaling:>10.2}x (cores: {cores})"
    );

    // --- Write latency ----------------------------------------------------
    let single = single_writer_latencies();
    let (group, mean_batch) = group_commit_latencies(8);
    let s_p50 = percentile(&single, 0.50);
    let s_p99 = percentile(&single, 0.99);
    let g_p50 = percentile(&group, 0.50);
    let g_p99 = percentile(&group, 0.99);
    // Amortized cost of one durable write = measurement window over writes
    // acknowledged in it. This is the number group commit moves: k writes
    // share one fsync, so the per-op cost drops well below one fsync even
    // though each individual write still *waits* for (at least) one fsync
    // wall-clock — closed-loop p50 can never beat the fsync floor.
    let window_ns = measure_window().as_nanos() as f64;
    let s_per_op = window_ns / single.len().max(1) as f64;
    let g_per_op = window_ns / group.len().max(1) as f64;
    println!("concurrency/write_p50_single_writer              time: {s_p50:>12} ns/write");
    println!("concurrency/write_p99_single_writer              time: {s_p99:>12} ns/write");
    println!("concurrency/write_p50_8_writers_grouped          time: {g_p50:>12} ns/write");
    println!("concurrency/write_p99_8_writers_grouped          time: {g_p99:>12} ns/write");
    println!("concurrency/write_per_op_single_writer           time: {s_per_op:>12.0} ns/op");
    println!("concurrency/write_per_op_8_writers_grouped       time: {g_per_op:>12.0} ns/op");
    println!(
        "concurrency/group_commit_mean_batch              factor: {mean_batch:>10.2} ops/fsync"
    );
    let verdict = if g_per_op <= s_per_op { "yes" } else { "no" };
    println!(
        "concurrency/grouped_per_op_below_single          {verdict} ({g_per_op:.0} vs {s_per_op:.0} ns)"
    );
}
