//! E6 — the cost of generality: HRDM operators on `T = {now}` snapshots vs
//! the purpose-built classical implementation on the same data.
//!
//! The §5 consistency claim says the *answers* coincide (machine-checked in
//! `tests/consistency.rs`); this bench measures the overhead the historical
//! machinery pays to compute them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_baseline::snapshot::{SnapshotRelation, SnapshotScheme};
use hrdm_core::consistency::lift_snapshot;
use hrdm_core::prelude::*;
use std::collections::BTreeMap;
use std::hint::black_box;

const NOW: Chronon = Chronon::new(0);

fn snap_scheme() -> Scheme {
    let now = Lifespan::point(NOW);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, now.clone())
        .attr("V", HistoricalDomain::int(), now)
        .build()
        .unwrap()
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction");
    for &n in &[100usize, 1000] {
        // The same rows, in both worlds.
        let rows: Vec<BTreeMap<Attribute, Value>> = (0..n)
            .map(|k| {
                BTreeMap::from([
                    (Attribute::new("K"), Value::Int(k as i64)),
                    (Attribute::new("V"), Value::Int((k % 97) as i64)),
                ])
            })
            .collect();
        let hist = lift_snapshot(&snap_scheme(), &rows, NOW).unwrap();
        let classic = SnapshotRelation::with_rows(
            SnapshotScheme::new(
                vec![
                    (Attribute::new("K"), ValueKind::Int),
                    (Attribute::new("V"), ValueKind::Int),
                ],
                vec![Attribute::new("K")],
            )
            .unwrap(),
            (0..n)
                .map(|k| vec![Value::Int(k as i64), Value::Int((k % 97) as i64)])
                .collect(),
        )
        .unwrap();

        let pred = Predicate::attr_op_value("V", Comparator::Lt, 50i64);
        group.bench_with_input(BenchmarkId::new("select_hrdm", n), &n, |b, _| {
            b.iter(|| {
                black_box(select_if(black_box(&hist), &pred, Quantifier::Exists, None).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("select_classical", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    classic
                        .select_value(&"V".into(), Comparator::Lt, &Value::Int(50))
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("project_hrdm", n), &n, |b, _| {
            b.iter(|| black_box(project(black_box(&hist), &["V".into()]).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("project_classical", n), &n, |b, _| {
            b.iter(|| black_box(classic.project(&["V".into()]).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_reduction
}
criterion_main!(benches);
