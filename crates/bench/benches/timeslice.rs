//! E3 — static vs dynamic TIME-SLICE.
//!
//! Static `τ_L` restricts every tuple to a shared window (cost grows with
//! window width and segment counts); dynamic `τ@A` reads each tuple's own
//! time-valued attribute image first (paper §4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::{gen_relation, gen_tt_relation, WorkloadSpec};
use hrdm_core::algebra::{timeslice, timeslice_dynamic};
use hrdm_time::Lifespan;
use std::hint::black_box;

fn bench_timeslice(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeslice");
    let spec = WorkloadSpec {
        tuples: 500,
        changes: 16,
        era: 10_000,
        ..Default::default()
    };
    let r = gen_relation(&spec);

    // Static slices of increasing width.
    for &width in &[10i64, 100, 1_000, 10_000] {
        let window = Lifespan::interval(1_000, (1_000 + width).min(10_000));
        group.bench_with_input(BenchmarkId::new("static", width), &width, |b, _| {
            b.iter(|| black_box(timeslice(black_box(&r), black_box(&window))))
        });
    }

    // Fragmented slice window (reincarnation-shaped queries).
    let fragmented = Lifespan::of(&[(100, 400), (2_000, 2_300), (7_000, 7_300)]);
    group.bench_function("static_fragmented", |b| {
        b.iter(|| black_box(timeslice(black_box(&r), black_box(&fragmented))))
    });

    // Dynamic slice at a TT attribute.
    let tt = gen_tt_relation(&spec);
    group.bench_function("dynamic_at_tt_attr", |b| {
        b.iter(|| black_box(timeslice_dynamic(black_box(&tt), &"AT".into()).unwrap()))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_timeslice
}
criterion_main!(benches);
