//! E14 — write-path durability: what one durable write costs.
//!
//! Three measurements at 1k / 10k pre-loaded tuples:
//!
//! * `wal_append_insert/*` — one insert through an **attached** database:
//!   pre-validate, append one fsync'd WAL record, apply in memory with
//!   incremental index maintenance. Cost is O(tuple), independent of the
//!   relation size.
//! * `rewrite_on_save/*` — the only durable write the seed supported: one
//!   insert followed by `save`, which re-encodes and rewrites **every**
//!   heap file plus the catalog. Cost is O(database).
//! * `recovery_open/*` — `Database::open` on a directory whose state lives
//!   entirely in the WAL (no checkpoint): replay throughput.
//!
//! Set `HRDM_BENCH_FAST=1` for the CI smoke mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_core::prelude::*;
use hrdm_storage::Database;
use std::hint::black_box;
use std::path::PathBuf;

fn fast() -> bool {
    std::env::var_os("HRDM_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Pre-load sizes. The acceptance point is ≥10k tuples; the smoke mode
/// keeps CI quick.
fn sizes() -> Vec<usize> {
    if fast() {
        vec![1_000]
    } else {
        vec![1_000, 10_000]
    }
}

fn scheme() -> Scheme {
    let era = Lifespan::interval(0, 1_000_000);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn tup(k: i64) -> Tuple {
    let lo = k % 900_000;
    let life = Lifespan::interval(lo, lo + 50);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(k)))
        .finish(&scheme())
        .unwrap()
}

fn bench_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("hrdm-bench-write-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

/// A detached database holding `n` tuples (keys `0..n`).
fn populated(n: usize) -> Database {
    let mut db = Database::new();
    db.create_relation("r", scheme()).unwrap();
    for k in 0..n as i64 {
        db.insert("r", tup(k)).unwrap();
    }
    db
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_path");
    for &n in &sizes() {
        // --- WAL-append insert (attached, durable) -----------------------
        {
            let dir = bench_dir(&format!("wal-{n}"));
            populated(n).save(&dir).unwrap();
            let mut db = Database::open(&dir).unwrap();
            let mut next_key = 1_000_000i64;
            group.bench_with_input(BenchmarkId::new("wal_append_insert", n), &n, |b, _| {
                b.iter(|| {
                    next_key += 1;
                    db.insert("r", tup(black_box(next_key))).unwrap();
                })
            });
            drop(db);
            std::fs::remove_dir_all(&dir).ok();
        }

        // --- Full-rewrite save per write (the pre-WAL durability) --------
        {
            let dir = bench_dir(&format!("save-{n}"));
            let mut db = populated(n);
            let mut next_key = 1_000_000i64;
            group.bench_with_input(BenchmarkId::new("rewrite_on_save", n), &n, |b, _| {
                b.iter(|| {
                    next_key += 1;
                    db.insert("r", tup(black_box(next_key))).unwrap();
                    db.save(&dir).unwrap();
                })
            });
            std::fs::remove_dir_all(&dir).ok();
        }

        // --- Recovery: open a database living entirely in its WAL --------
        {
            let dir = bench_dir(&format!("recover-{n}"));
            {
                let mut db = Database::open(&dir).unwrap();
                db.create_relation("r", scheme()).unwrap();
                for k in 0..n as i64 {
                    db.insert("r", tup(k)).unwrap();
                }
                // Dropped without a checkpoint: recovery must replay all n.
            }
            group.bench_with_input(BenchmarkId::new("recovery_open", n), &n, |b, _| {
                b.iter(|| {
                    let db = Database::open(&dir).unwrap();
                    black_box(db.relation("r").unwrap().len())
                })
            });
            std::fs::remove_dir_all(&dir).ok();
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_write_path
}
criterion_main!(benches);
