//! E8 — the paper's §1 comparison: attribute-level (HRDM) vs
//! tuple-timestamped vs cube, on the same information.
//!
//! Three workload queries per model, swept over per-object change count:
//!
//! * `snapshot`  — the full relation at one instant (cube's home turf),
//! * `history`   — one object's full history (HRDM's home turf),
//! * storage     — printed once per configuration (cells per model).
//!
//! Expected shape (recorded in EXPERIMENTS.md): HRDM storage is flat in the
//! era and linear in changes; tuple-TS multiplies versions by changes; the
//! cube multiplies by era regardless of change rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_baseline::{hrdm_to_cube, hrdm_to_ts};
use hrdm_bench::{gen_relation, WorkloadSpec};
use hrdm_core::Value;
use hrdm_time::Chronon;
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("models");
    for &changes in &[1usize, 8, 32] {
        let spec = WorkloadSpec {
            tuples: 50,
            era: 2_000,
            changes,
            ..Default::default()
        };
        let hrdm = gen_relation(&spec);
        let ts = hrdm_to_ts(&hrdm).unwrap();
        let cube = hrdm_to_cube(&hrdm, None).unwrap();
        let at = Chronon::new(spec.era / 2);
        let key = [Value::Int(spec.tuples as i64 / 2)];

        // Storage cells per model, printed once for EXPERIMENTS.md.
        println!(
            "[models/storage] changes={changes}: hrdm_cells={} ts_cells={} cube_cells={}",
            hrdm.segment_cells(),
            ts.cells(),
            cube.cells()
        );

        group.bench_with_input(
            BenchmarkId::new("snapshot_hrdm", changes),
            &changes,
            |b, _| b.iter(|| black_box(black_box(&hrdm).snapshot_at(at))),
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot_ts", changes),
            &changes,
            |b, _| b.iter(|| black_box(black_box(&ts).timeslice(at))),
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot_cube", changes),
            &changes,
            |b, _| b.iter(|| black_box(black_box(&cube).timeslice(at))),
        );

        group.bench_with_input(
            BenchmarkId::new("history_hrdm", changes),
            &changes,
            |b, _| b.iter(|| black_box(black_box(&hrdm).find_by_key(&key))),
        );
        group.bench_with_input(BenchmarkId::new("history_ts", changes), &changes, |b, _| {
            b.iter(|| black_box(black_box(&ts).object_history(&key).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("history_cube", changes),
            &changes,
            |b, _| b.iter(|| black_box(black_box(&cube).object_history(&key).unwrap())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_models
}
criterion_main!(benches);
