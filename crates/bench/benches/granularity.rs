//! E1 — the §2 lifespan-granularity trade-off, quantified.
//!
//! "The overhead for the database or relation approach is quite small, and
//! is proportional to the size of the schema. The cost of the tuple lifespan
//! approach is proportional to the size of the database instance." We count
//! distinct lifespan objects under each policy while sweeping instance size,
//! and time the maintenance op each policy implies on insert.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::{gen_relation, WorkloadSpec};
use hrdm_time::Lifespan;
use std::hint::black_box;

fn bench_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("granularity");
    for &tuples in &[10usize, 100, 1000] {
        let spec = WorkloadSpec {
            tuples,
            changes: 4,
            fragments: 2,
            ..Default::default()
        };
        let r = gen_relation(&spec);

        // Static accounting, printed for EXPERIMENTS.md:
        //   relation-level policy: 1 lifespan; schema-level: arity lifespans;
        //   tuple-level: |instance| lifespans; value-level: one per cell.
        let schema_level = r.scheme().arity();
        let tuple_level = r.len();
        let value_level = r.segment_cells();
        println!(
            "[granularity/objects] tuples={tuples}: relation=1 schema={schema_level} \
             tuple={tuple_level} value={value_level}"
        );

        // Maintenance cost on insert under each policy:
        // relation/schema-level: update one shared lifespan (union).
        group.bench_with_input(
            BenchmarkId::new("maintain_relation_level", tuples),
            &tuples,
            |b, _| {
                b.iter(|| {
                    let mut shared = Lifespan::empty();
                    for t in r.iter() {
                        shared = shared.union(t.lifespan());
                    }
                    black_box(shared)
                })
            },
        );
        // tuple-level: each tuple keeps its own lifespan (clone/normalize).
        group.bench_with_input(
            BenchmarkId::new("maintain_tuple_level", tuples),
            &tuples,
            |b, _| {
                b.iter(|| {
                    let spans: Vec<Lifespan> = r.iter().map(|t| t.lifespan().clone()).collect();
                    black_box(spans)
                })
            },
        );
        // Deriving LS(r) from tuple lifespans (the paper's LS definition).
        group.bench_with_input(BenchmarkId::new("derive_LS", tuples), &tuples, |b, _| {
            b.iter(|| black_box(black_box(&r).lifespan()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_granularity
}
criterion_main!(benches);
