//! E12 — physical-level throughput: codec and heap-file round trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hrdm_bench::{gen_relation, WorkloadSpec};
use hrdm_storage::{Decoder, Encoder, HeapFile};
use std::hint::black_box;

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");
    for &tuples in &[10usize, 100, 1000] {
        let r = gen_relation(&WorkloadSpec {
            tuples,
            changes: 8,
            ..Default::default()
        });
        let mut enc = Encoder::new();
        enc.put_relation(&r);
        let bytes = enc.finish();
        group.throughput(Throughput::Bytes(bytes.len() as u64));

        group.bench_with_input(BenchmarkId::new("encode", tuples), &tuples, |b, _| {
            b.iter(|| {
                let mut e = Encoder::new();
                e.put_relation(black_box(&r));
                black_box(e.finish())
            })
        });
        group.bench_with_input(BenchmarkId::new("decode", tuples), &tuples, |b, _| {
            b.iter(|| black_box(Decoder::new(black_box(&bytes)).get_relation().unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("heap_write_sync", tuples),
            &tuples,
            |b, _| {
                let path = std::env::temp_dir()
                    .join(format!("hrdm-bench-heap-{}-{tuples}", std::process::id()));
                b.iter(|| {
                    let mut heap = HeapFile::create(&path).unwrap();
                    for t in r.iter() {
                        let mut e = Encoder::new();
                        e.put_tuple(t);
                        heap.insert(&e.finish()).unwrap();
                    }
                    heap.sync().unwrap();
                    black_box(heap.page_count())
                });
                std::fs::remove_file(&path).ok();
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_storage
}
criterion_main!(benches);
