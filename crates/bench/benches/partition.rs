//! E15 — lifespan-partitioned storage: pruning and dirty-only checkpoints.
//!
//! A 100k-tuple relation cut into 64 chronon-range partitions
//! (`PartitionPolicy::SpanLog2(14)` over an era of 2^20 chronons) against
//! the unpartitioned reference (`span = ∞`):
//!
//! * `partition_timeslice/*` — planned TIME-SLICE at selectivities of 1,
//!   4, 16, and 64 partitions: latency should track the number of touched
//!   partitions, not the relation size;
//! * `partition_checkpoint/*` — checkpoint after dirtying a single
//!   partition vs after dirtying all 64: the dirty-only rewrite plus
//!   hard links vs a full rewrite.
//!
//! The workload (scheme, jittered tuples, populate) is the shared
//! [`hrdm_bench::partition_fixture`], the same dataset the gated
//! `bench-json` entries measure. Set `HRDM_BENCH_FAST=1` for the CI smoke
//! mode (smaller relation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::partition_fixture::{populated, scheme, tup, tup_at, SPAN_LOG2};
use hrdm_query::{evaluate_planned, parse_query, Query};
use hrdm_storage::{Database, PartitionPolicy};
use std::hint::black_box;
use std::path::PathBuf;

fn fast() -> bool {
    std::env::var_os("HRDM_BENCH_FAST").is_some_and(|v| v != "0")
}

fn tuples() -> i64 {
    if fast() {
        10_000
    } else {
        100_000
    }
}

/// A window starting at partition 0 and covering exactly `parts` nominal
/// partition spans — `parts = 64` covers the whole populated era.
fn window_query(parts: u32) -> Query {
    let hi = (i64::from(parts) << SPAN_LOG2) - 1;
    parse_query(&format!("TIMESLICE [0..{hi}] (r)")).unwrap()
}

fn bench_pruned_timeslice(c: &mut Criterion) {
    let part = populated(PartitionPolicy::SpanLog2(SPAN_LOG2), tuples());
    let flat = populated(PartitionPolicy::Unpartitioned, tuples());
    let (psnap, fsnap) = (part.snapshot(), flat.snapshot());
    let mut group = c.benchmark_group("partition_timeslice");
    for parts in [1u32, 4, 16, 64] {
        let q = window_query(parts);
        group.bench_with_input(BenchmarkId::new("pruned", parts), &parts, |b, _| {
            b.iter(|| black_box(evaluate_planned(black_box(&q), &*psnap).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("unpartitioned", parts), &parts, |b, _| {
            b.iter(|| black_box(evaluate_planned(black_box(&q), &*fsnap).unwrap()))
        });
    }
    group.finish();
}

fn bench_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("hrdm-bench-part-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn bench_dirty_checkpoint(c: &mut Criterion) {
    let n = tuples() / 5; // keep the setup WAL workload reasonable
    let mut group = c.benchmark_group("partition_checkpoint");
    group.sample_size(10);
    for (label, dirty_all) in [("one_dirty_partition", false), ("all_dirty", true)] {
        let dir = bench_dir(label);
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(PartitionPolicy::SpanLog2(SPAN_LOG2));
        db.create_relation("r", scheme()).unwrap();
        let batch: Vec<hrdm_storage::WalRecord> = (0..n)
            .map(|k| hrdm_storage::WalRecord::Insert {
                relation: "r".to_string(),
                tuple: tup(k),
            })
            .collect();
        for r in db.commit_batch(batch) {
            r.unwrap();
        }
        db.checkpoint().unwrap();
        let mut k = 10_000_000i64;
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| {
                if dirty_all {
                    // One insert born in each of the 64 partitions: every
                    // partition is dirty, the checkpoint rewrites all.
                    let batch: Vec<hrdm_storage::WalRecord> = (0i64..64)
                        .map(|p| {
                            k += 1;
                            hrdm_storage::WalRecord::Insert {
                                relation: "r".to_string(),
                                tuple: tup_at(k, p << SPAN_LOG2),
                            }
                        })
                        .collect();
                    for r in db.commit_batch(batch) {
                        r.unwrap();
                    }
                } else {
                    // A single insert dirties exactly one partition.
                    k += 1;
                    db.insert("r", tup(k)).unwrap();
                }
                db.checkpoint().unwrap();
            })
        });
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

criterion_group!(benches, bench_pruned_timeslice, bench_dirty_checkpoint);
criterion_main!(benches);
