//! E13 — indexed vs sequential access paths.
//!
//! The first physical access methods (`hrdm-index`): a lifespan interval
//! index and a constant-key index. Each benchmark pairs a sequential-scan
//! operator with its index-driven counterpart at 1k / 10k / 100k tuples:
//!
//! * `timeslice/*` — `τ_L` over a narrow window: full scan restrict vs
//!   lifespan-index candidates then restrict;
//! * `select/*` — key-equality `σIF(K = k, EXISTS)`: full scan vs key-index
//!   probe (via the query planner's access-path selection);
//! * `join/*` — NATURAL-JOIN with a keyed probe side: nested loop vs index
//!   nested loop.
//!
//! Set `HRDM_BENCH_FAST=1` for the CI smoke mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::{gen_relation, WorkloadSpec};
use hrdm_core::algebra::{natural_join, select_if, timeslice, Predicate, Quantifier};
use hrdm_core::prelude::*;
use hrdm_index::RelationIndexes;
use hrdm_query::{eval_plan, optimize, parse_expr, plan, IndexedRelations};
use std::collections::BTreeMap;
use std::hint::black_box;

/// Tuple counts for the scan-vs-index comparison. `HRDM_BENCH_FAST` drops
/// the 100k point to keep CI smoke runs quick.
fn sizes() -> Vec<usize> {
    if std::env::var_os("HRDM_BENCH_FAST").is_some_and(|v| v != "0") {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000]
    }
}

fn spec(tuples: usize) -> WorkloadSpec {
    WorkloadSpec {
        tuples,
        era: 1_000,
        changes: 4,
        fragments: 2,
        ..Default::default()
    }
}

/// A narrow early window: tuple lifespans start at jittered offsets, so
/// only a small fraction overlaps `[0, 10]` — the selective case an index
/// exists for.
fn window() -> Lifespan {
    Lifespan::interval(0, 10)
}

fn bench_indexed_timeslice(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_timeslice");
    for &n in &sizes() {
        let r = gen_relation(&spec(n));
        let idx = RelationIndexes::build(&r);
        let w = window();
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| black_box(timeslice(black_box(&r), black_box(&w))))
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| {
                let candidates = idx.lifespan().overlapping(black_box(&w));
                black_box(timeslice(&r.subset_at_positions(&candidates), &w))
            })
        });
    }
    group.finish();
}

fn bench_indexed_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_select");
    for &n in &sizes() {
        let r = gen_relation(&spec(n));
        let probe = (n / 2) as i64;
        let pred = Predicate::eq_value("K", probe);
        let mut map = BTreeMap::new();
        map.insert("emp".to_string(), r.clone());
        let src = IndexedRelations::new(map);
        let planned = {
            let e = parse_expr(&format!("SELECT-IF (K = {probe}, EXISTS) (emp)")).unwrap();
            plan(&optimize(&e).0, &src)
        };
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| black_box(select_if(black_box(&r), &pred, Quantifier::Exists, None).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(eval_plan(black_box(&planned), &src).unwrap()))
        });
    }
    group.finish();
}

/// A small probe-side relation joined against a large keyed build side:
/// the shape where an index nested loop beats the quadratic scan.
fn bench_indexed_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_join");
    for &n in &sizes() {
        // Right: n keyed employees. Left: 64 tuples sharing the key
        // attribute K (constant-valued), each matching one employee.
        let right = gen_relation(&spec(n));
        let left_scheme = Scheme::builder()
            .key_attr("K", ValueKind::Int, Lifespan::interval(0, 1_000))
            .build()
            .unwrap();
        let left = Relation::with_tuples(
            left_scheme.clone(),
            (0..64).map(|i| {
                Tuple::builder(Lifespan::interval(0, 1_000))
                    .constant("K", (i * (n as i64 / 64)).min(n as i64 - 1))
                    .finish(&left_scheme)
                    .unwrap()
            }),
        )
        .unwrap();

        let mut map = BTreeMap::new();
        map.insert("probe".to_string(), left.clone());
        map.insert("emp".to_string(), right.clone());
        let src = IndexedRelations::new(map);
        let planned = {
            let e = parse_expr("probe NATJOIN emp").unwrap();
            plan(&optimize(&e).0, &src)
        };

        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| black_box(natural_join(black_box(&left), black_box(&right)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(eval_plan(black_box(&planned), &src).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(600));
    targets = bench_indexed_timeslice, bench_indexed_select, bench_indexed_join
}
criterion_main!(benches);
