//! E4 — the JOIN family across relation sizes.
//!
//! All four joins are nested-loop with segment-wise lifespan computation;
//! the sweep confirms the O(n·m) shape and the relative constant factors
//! (θ < equi ≈ natural < time-join, which must also build images).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::{gen_relation, gen_second_relation, gen_tt_relation, WorkloadSpec};
use hrdm_core::algebra::{equijoin, natural_join, theta_join, time_join, Comparator};
use std::hint::black_box;

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    for &n in &[16usize, 64, 256] {
        let spec = WorkloadSpec {
            tuples: n,
            changes: 8,
            ..Default::default()
        };
        let r = gen_relation(&spec);
        let s = gen_second_relation(&spec, 0.8);
        let tt = gen_tt_relation(&spec);

        group.bench_with_input(BenchmarkId::new("theta_lt", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    theta_join(
                        black_box(&r),
                        black_box(&s),
                        &"V".into(),
                        Comparator::Lt,
                        &"X".into(),
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("equijoin", n), &n, |b, _| {
            b.iter(|| {
                black_box(equijoin(black_box(&r), black_box(&s), &"V".into(), &"X".into()).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("natural_join", n), &n, |b, _| {
            // No common attributes: degenerates to product-over-intersection,
            // the paper's base case.
            b.iter(|| black_box(natural_join(black_box(&r), black_box(&s)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("time_join", n), &n, |b, _| {
            b.iter(|| black_box(time_join(black_box(&tt), black_box(&s), &"AT".into()).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_join
}
criterion_main!(benches);
