//! E9 — interpolation strategies across sample density (paper Fig. 9).
//!
//! Step/nearest materialize segment-wise (cost ∝ samples); linear is
//! inherently per-chronon between samples (cost ∝ target width) — the sweep
//! exposes exactly that asymmetry.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_core::Value;
use hrdm_interp::{Interpolation, Represented};
use hrdm_time::Lifespan;
use std::hint::black_box;

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp");
    let era = 10_000i64;
    let target = Lifespan::interval(0, era);
    for &samples in &[4usize, 32, 256, 2048] {
        let step = era / samples as i64;
        let repr: Vec<(i64, Value)> = (0..samples)
            .map(|i| (i as i64 * step, Value::Int(i as i64)))
            .collect();
        for strat in [
            Interpolation::Discrete,
            Interpolation::Step,
            Interpolation::Nearest,
        ] {
            let r = Represented::of(&repr, strat);
            group.bench_with_input(
                BenchmarkId::new(strat.to_string(), samples),
                &samples,
                |b, _| b.iter(|| black_box(r.materialize(black_box(&target)).unwrap())),
            );
        }
        // Linear over a narrower window (it is per-chronon by nature).
        let window = Lifespan::interval(0, 2_000);
        let r = Represented::of(&repr, Interpolation::Linear);
        group.bench_with_input(
            BenchmarkId::new("linear_2k_window", samples),
            &samples,
            |b, _| b.iter(|| black_box(r.materialize(black_box(&window)).unwrap())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_interp
}
criterion_main!(benches);
