//! E2 — the two flavors of SELECT across history length.
//!
//! SELECT-IF returns whole tuples (quantifier test only); SELECT-WHEN also
//! rebuilds each selected tuple restricted to its truth span. Both are
//! segment-wise, so cost scales with changes-per-attribute, not with
//! chronon counts — the sweep verifies that shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::{gen_relation, WorkloadSpec};
use hrdm_core::algebra::{select_if, select_when, Comparator, Predicate, Quantifier};
use hrdm_time::Lifespan;
use std::hint::black_box;

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("select");
    for &changes in &[2usize, 8, 32, 128] {
        let r = gen_relation(&WorkloadSpec {
            tuples: 200,
            changes,
            era: 10_000,
            ..Default::default()
        });
        let pred = Predicate::attr_op_value("V", Comparator::Lt, 500i64);
        let window = Lifespan::interval(2_000, 4_000);

        group.bench_with_input(
            BenchmarkId::new("select_if_exists", changes),
            &changes,
            |b, _| {
                b.iter(|| {
                    black_box(select_if(black_box(&r), &pred, Quantifier::Exists, None).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("select_if_forall", changes),
            &changes,
            |b, _| {
                b.iter(|| {
                    black_box(select_if(black_box(&r), &pred, Quantifier::Forall, None).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("select_if_bounded", changes),
            &changes,
            |b, _| {
                b.iter(|| {
                    black_box(
                        select_if(black_box(&r), &pred, Quantifier::Exists, Some(&window)).unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("select_when", changes),
            &changes,
            |b, _| b.iter(|| black_box(select_when(black_box(&r), &pred).unwrap())),
        );
    }
    group.finish();
}

/// E13 (extension) — time-varying aggregation scales with segment counts,
/// not chronons, like the selects above.
fn bench_aggregate(c: &mut Criterion) {
    use hrdm_core::algebra::{aggregate_over_time, AggregateOp};
    let mut group = c.benchmark_group("aggregate");
    for &changes in &[2usize, 8, 32] {
        let r = gen_relation(&WorkloadSpec {
            tuples: 100,
            changes,
            era: 10_000,
            ..Default::default()
        });
        for op in [AggregateOp::Count, AggregateOp::Sum, AggregateOp::Avg] {
            group.bench_with_input(
                BenchmarkId::new(op.to_string(), changes),
                &changes,
                |b, _| {
                    b.iter(|| {
                        black_box(aggregate_over_time(black_box(&r), &"V".into(), op).unwrap())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_select, bench_aggregate
}
criterion_main!(benches);
