// The legacy materializing evaluator stays the reference oracle for the
// streaming executor, so this file uses it deliberately.
#![allow(deprecated)]

//! E10 — the §5 algebraic identities as an optimizer, measured.
//!
//! The canonical win: `τ_L(σ-WHEN(p)(π_X(r)))` rewritten so the slice runs
//! first. Evaluation time of naive vs optimized plans, swept over slice
//! selectivity (narrow slices gain most).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrdm_bench::{gen_relation, WorkloadSpec};
use hrdm_query::{eval_expr, optimize, parse_expr};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    let r = gen_relation(&WorkloadSpec {
        tuples: 300,
        changes: 32,
        era: 10_000,
        ..Default::default()
    });
    let mut src = BTreeMap::new();
    src.insert("r".to_string(), r);

    for &(label, width) in &[("narrow", 100i64), ("medium", 2_000), ("wide", 10_000)] {
        let text = format!("TIMESLICE [0..{width}] (SELECT-WHEN (V < 500) (PROJECT [K, V] (r)))");
        let naive = parse_expr(&text).unwrap();
        let (optimized, trace) = optimize(&naive);
        assert!(!trace.is_empty());

        group.bench_with_input(BenchmarkId::new("naive", label), &width, |b, _| {
            b.iter(|| black_box(eval_expr(black_box(&naive), &src).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("optimized", label), &width, |b, _| {
            b.iter(|| black_box(eval_expr(black_box(&optimized), &src).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_optimizer
}
criterion_main!(benches);
