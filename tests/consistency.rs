//! The §5 consistent-extension theorem, machine-checked.
//!
//! "Each component C of the relational model has a corresponding component
//! Cᴴ in the historical relational model with the property that the
//! definitions of C and Cᴴ become equivalent in the absence of a temporal
//! dimension." The paper leaves the proof "to a subsequent paper"; here it
//! is checked operator by operator: random classical relations are lifted
//! into HRDM with `T = {now}`, each HRDM operator runs against its
//! independently-implemented classical counterpart (`hrdm-baseline`), and
//! the results are compared through the snapshot projection.

mod common;

use hrdm_baseline::snapshot::{SnapshotRelation, SnapshotScheme};
use hrdm_baseline::snapshot_of_hrdm;
use hrdm_core::consistency::{is_snapshot_relation, lift_snapshot};
use hrdm_core::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

const NOW: Chronon = Chronon::new(7);

fn snap_scheme() -> Scheme {
    let now = Lifespan::point(NOW);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, now.clone())
        .attr("V", HistoricalDomain::int(), now.clone())
        .attr("W", HistoricalDomain::int(), now)
        .build()
        .unwrap()
}

fn snap_scheme2() -> Scheme {
    let now = Lifespan::point(NOW);
    Scheme::builder()
        .key_attr("K2", ValueKind::Int, now.clone())
        .attr("X", HistoricalDomain::int(), now)
        .build()
        .unwrap()
}

/// Strategy: random classical rows (distinct keys) for `snap_scheme`.
fn rows_strategy() -> impl Strategy<Value = Vec<BTreeMap<Attribute, Value>>> {
    prop::collection::vec((0i64..5, 0i64..5), 0..6).prop_map(|vals| {
        vals.into_iter()
            .enumerate()
            .map(|(k, (v, w))| {
                BTreeMap::from([
                    (Attribute::new("K"), Value::Int(k as i64)),
                    (Attribute::new("V"), Value::Int(v)),
                    (Attribute::new("W"), Value::Int(w)),
                ])
            })
            .collect()
    })
}

fn rows2_strategy() -> impl Strategy<Value = Vec<BTreeMap<Attribute, Value>>> {
    prop::collection::vec(0i64..5, 0..4).prop_map(|vals| {
        vals.into_iter()
            .enumerate()
            .map(|(k, x)| {
                BTreeMap::from([
                    (Attribute::new("K2"), Value::Int(k as i64)),
                    (Attribute::new("X"), Value::Int(x)),
                ])
            })
            .collect()
    })
}

/// The classical twin of a lifted relation, built independently.
fn classical(scheme: &Scheme, rows: &[BTreeMap<Attribute, Value>]) -> SnapshotRelation {
    let attrs = scheme
        .attrs()
        .iter()
        .map(|d| (d.name().clone(), d.domain().kind()))
        .collect();
    let s = SnapshotScheme::new(attrs, scheme.key().to_vec()).unwrap();
    let positional: Vec<Vec<Value>> = rows
        .iter()
        .map(|row| {
            scheme
                .attr_names()
                .map(|a| row.get(a).cloned().expect("classical rows are total"))
                .collect()
        })
        .collect();
    SnapshotRelation::with_rows(s, positional).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn select_reduces_to_classical(rows in rows_strategy(), c in 0i64..5) {
        let hist = lift_snapshot(&snap_scheme(), &rows, NOW).unwrap();
        let classic = classical(&snap_scheme(), &rows);

        // SELECT-IF (∃), SELECT-IF (∀), and SELECT-WHEN all reduce to σ.
        let pred = Predicate::eq_value("V", c);
        let via_exists = select_if(&hist, &pred, Quantifier::Exists, None).unwrap();
        let via_forall = select_if(&hist, &pred, Quantifier::Forall, None).unwrap();
        let via_when = select_when(&hist, &pred).unwrap();
        let classical_sel = classic
            .select_value(&"V".into(), Comparator::Eq, &Value::Int(c))
            .unwrap();

        prop_assert_eq!(&via_exists, &via_forall);
        prop_assert_eq!(&via_exists, &via_when);
        prop_assert_eq!(
            snapshot_of_hrdm(&via_exists, NOW).unwrap(),
            classical_sel
        );
        prop_assert!(is_snapshot_relation(&via_exists, NOW));
    }

    #[test]
    fn project_reduces_to_classical(rows in rows_strategy()) {
        let hist = lift_snapshot(&snap_scheme(), &rows, NOW).unwrap();
        let classic = classical(&snap_scheme(), &rows);
        let x = [Attribute::new("K"), Attribute::new("V")];
        let h = project(&hist, &x).unwrap();
        let c = classic.project(&x).unwrap();
        prop_assert_eq!(snapshot_of_hrdm(&h, NOW).unwrap(), c);
    }

    #[test]
    fn set_ops_reduce_to_classical(rows1 in rows_strategy(), rows2 in rows_strategy()) {
        let h1 = lift_snapshot(&snap_scheme(), &rows1, NOW).unwrap();
        let h2 = lift_snapshot(&snap_scheme(), &rows2, NOW).unwrap();
        let c1 = classical(&snap_scheme(), &rows1);
        let c2 = classical(&snap_scheme(), &rows2);

        prop_assert_eq!(
            snapshot_of_hrdm(&union(&h1, &h2).unwrap(), NOW).unwrap(),
            c1.union(&c2).unwrap()
        );
        prop_assert_eq!(
            snapshot_of_hrdm(&intersection(&h1, &h2).unwrap(), NOW).unwrap(),
            c1.intersection(&c2).unwrap()
        );
        prop_assert_eq!(
            snapshot_of_hrdm(&difference(&h1, &h2).unwrap(), NOW).unwrap(),
            c1.difference(&c2).unwrap()
        );
    }

    #[test]
    fn product_reduces_to_classical(rows1 in rows_strategy(), rows2 in rows2_strategy()) {
        let h1 = lift_snapshot(&snap_scheme(), &rows1, NOW).unwrap();
        let h2 = lift_snapshot(&snap_scheme2(), &rows2, NOW).unwrap();
        let c1 = classical(&snap_scheme(), &rows1);
        let c2 = classical(&snap_scheme2(), &rows2);
        prop_assert_eq!(
            snapshot_of_hrdm(&cartesian_product(&h1, &h2).unwrap(), NOW).unwrap(),
            c1.product(&c2).unwrap()
        );
    }

    #[test]
    fn theta_join_reduces_to_classical(rows1 in rows_strategy(), rows2 in rows2_strategy()) {
        let h1 = lift_snapshot(&snap_scheme(), &rows1, NOW).unwrap();
        let h2 = lift_snapshot(&snap_scheme2(), &rows2, NOW).unwrap();
        let c1 = classical(&snap_scheme(), &rows1);
        let c2 = classical(&snap_scheme2(), &rows2);
        for op in [Comparator::Eq, Comparator::Lt, Comparator::Ge] {
            let h = theta_join(&h1, &h2, &"V".into(), op, &"X".into()).unwrap();
            let c = c1.theta_join(&c2, &"V".into(), op, &"X".into()).unwrap();
            prop_assert_eq!(snapshot_of_hrdm(&h, NOW).unwrap(), c);
        }
    }

    #[test]
    fn timeslice_is_identity_at_now_and_when_is_now_or_never(rows in rows_strategy()) {
        // Paper §5: "TIME-SLICE can be viewed as the identity function
        // defined only for time now, and WHEN maps a relation either to now
        // or to the empty set".
        let hist = lift_snapshot(&snap_scheme(), &rows, NOW).unwrap();
        prop_assert_eq!(&timeslice(&hist, &Lifespan::point(NOW)), &hist);
        let w = when(&hist);
        if rows.is_empty() {
            prop_assert_eq!(w, Lifespan::empty()); // "never"
        } else {
            prop_assert_eq!(w, Lifespan::point(NOW)); // "always"
        }
    }

    #[test]
    fn every_operator_preserves_snapshot_shape(rows in rows_strategy(), c in 0i64..5) {
        let hist = lift_snapshot(&snap_scheme(), &rows, NOW).unwrap();
        let pred = Predicate::attr_op_value("V", Comparator::Le, c);
        for result in [
            select_if(&hist, &pred, Quantifier::Exists, None).unwrap(),
            select_when(&hist, &pred).unwrap(),
            project(&hist, &["K".into(), "W".into()]).unwrap(),
            timeslice(&hist, &Lifespan::point(NOW)),
            union(&hist, &hist).unwrap(),
            intersection(&hist, &hist).unwrap(),
            difference(&hist, &hist).unwrap(),
        ] {
            prop_assert!(is_snapshot_relation(&result, NOW));
        }
    }
}

#[test]
fn natural_join_reduces_to_classical_fixed_case() {
    // grade(V, G): classical natural join on the shared V column.
    let now = Lifespan::point(NOW);
    let grade_scheme = Scheme::builder()
        .attr("V", HistoricalDomain::int(), now.clone())
        .attr("G", HistoricalDomain::int(), now)
        .build()
        .unwrap();
    let grade_rows: Vec<BTreeMap<Attribute, Value>> = (0..3)
        .map(|v| {
            BTreeMap::from([
                (Attribute::new("V"), Value::Int(v)),
                (Attribute::new("G"), Value::Int(v * 10)),
            ])
        })
        .collect();
    let emp_rows: Vec<BTreeMap<Attribute, Value>> = (0..4)
        .map(|k| {
            BTreeMap::from([
                (Attribute::new("K"), Value::Int(k)),
                (Attribute::new("V"), Value::Int(k % 3)),
                (Attribute::new("W"), Value::Int(0)),
            ])
        })
        .collect();

    let h1 = lift_snapshot(&snap_scheme(), &emp_rows, NOW).unwrap();
    let h2 = lift_snapshot(&grade_scheme, &grade_rows, NOW).unwrap();
    let hj = natural_join(&h1, &h2).unwrap();

    let c1 = classical(&snap_scheme(), &emp_rows);
    let c2 = classical(&grade_scheme, &grade_rows);
    let cj = c1.natural_join(&c2).unwrap();

    assert_eq!(snapshot_of_hrdm(&hj, NOW).unwrap(), cj);
    assert_eq!(hj.len(), 4);
}
