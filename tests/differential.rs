// The legacy materializing evaluator stays the reference oracle for the
// streaming executor, so this file uses it deliberately.
#![allow(deprecated)]

//! Differential oracle: the **partitioned** engine must be observationally
//! identical to an **unpartitioned** reference (`partition span = ∞`).
//!
//! Identical random op/query sequences drive two attached engines that
//! differ only in [`PartitionPolicy`]; after every phase the suite asserts
//!
//! * byte-equal query results for a battery of planned queries
//!   (TIME-SLICEs, selects, joins, set ops, WHEN, aggregates),
//! * EXPLAIN-pruning **soundness**: on the partitioned engine, the pruned
//!   plan evaluates to exactly what the unplanned evaluator produces,
//! * equal `\stats` op counts (the group-commit layer is unaffected),
//! * byte-equal WALs (partitioning is physical — the log format must not
//!   know about it), and
//! * equal recovered states after a crash with an identically torn WAL
//!   tail.
//!
//! Run with `PROPTEST_CASES=256` (the CI `partition-tests` leg) for the
//! acceptance-level case count; the default here is already 256.

use hrdm_core::prelude::*;
use hrdm_query::{
    eval_plan, evaluate, evaluate_planned, explain_with_access, optimize, parse_expr, parse_query,
    plan, Query, QueryResult,
};
use hrdm_storage::{ConcurrentDatabase, Database, DbSnapshot, PartitionPolicy};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hrdm-diff-{}-{name}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn r_scheme() -> Scheme {
    let era = Lifespan::interval(0, 4096);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn evt_scheme() -> Scheme {
    let era = Lifespan::interval(0, 4096);
    Scheme::builder()
        .key_attr("E", ValueKind::Int, era.clone())
        .attr("AT", HistoricalDomain::time(), era)
        .build()
        .unwrap()
}

fn r_tup(k: i64, lo: i64, len: i64, v: i64) -> Tuple {
    let life = Lifespan::interval(lo, lo + len);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(v)))
        .finish(&r_scheme())
        .unwrap()
}

fn evt_tup(e: i64, lo: i64, len: i64, at: i64) -> Tuple {
    let life = Lifespan::interval(lo, lo + len);
    Tuple::builder(life.clone())
        .constant("E", e)
        .value("AT", TemporalValue::constant(&life, Value::time(at)))
        .finish(&evt_scheme())
        .unwrap()
}

/// The query battery both engines answer after every phase: lifespan
/// bounds that prune, predicates that probe, operators that combine, plus
/// the lifespan and aggregate sorts.
const QUERIES: &[&str] = &[
    "r",
    "TIMESLICE [40..70] (r)",
    "TIMESLICE [0..3, 130..150] (r)",
    "TIMESLICE [4000..4090] (r)",
    "SELECT-WHEN (K = 5) (r)",
    "SELECT-WHEN (V >= 50) (r)",
    "TIMESLICE [10..90] (SELECT-WHEN (V >= 20) (r))",
    "PROJECT [V] (TIMESLICE [5..120] (r))",
    "TIMESLICE [0..80] (r UNION r)",
    "(TIMESLICE [0..100] (r)) MINUS (TIMESLICE [50..200] (r))",
    "(TIMESLICE [0..128] (r)) INTERSECT-O (TIMESLICE [64..256] (r))",
    "SELECT-IF (V >= 10, FORALL, [16..48]) (r)",
    "evt TIMEJOIN@AT r",
    "TIMESLICE [8..40] (evt TIMEJOIN@AT r)",
    "SLICE@AT (evt)",
    "WHEN (TIMESLICE [5..95] (r))",
    "COUNT V (r)",
];

/// Canonical byte serialization of a query result: tuple renderings sorted,
/// so physically different tuple orders (partition-major after a reopen vs
/// insertion order) compare byte-for-byte.
fn canonical(result: &QueryResult) -> String {
    match result {
        QueryResult::Relation(r) => {
            let mut lines: Vec<String> = r.iter().map(|t| t.to_string()).collect();
            lines.sort();
            format!("scheme {}\n{}", r.scheme(), lines.join("\n"))
        }
        QueryResult::Lifespan(l) => l.to_string(),
        QueryResult::Function(f) => f.to_string(),
    }
}

/// Both engines answer every battery query identically, and on the
/// partitioned side the pruned plan ≡ the unplanned evaluator.
fn assert_engines_agree(part: &DbSnapshot, reference: &DbSnapshot, ctx: &str) {
    for q in QUERIES {
        let parsed = parse_query(q).unwrap();
        let a = evaluate_planned(&parsed, part);
        let b = evaluate_planned(&parsed, reference);
        match (&a, &b) {
            (Ok(ra), Ok(rb)) => {
                assert_eq!(canonical(ra), canonical(rb), "{ctx}: `{q}` diverged");
            }
            (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string(), "{ctx}: `{q}`"),
            _ => panic!("{ctx}: `{q}` succeeded on one engine only: {a:?} vs {b:?}"),
        }
        assert_pruned_plan_sound(part, q, ctx);
    }
}

/// EXPLAIN-pruning soundness: the partitioned engine's *planned* (pruned)
/// evaluation equals its own *unplanned* evaluation, query for query.
fn assert_pruned_plan_sound(snap: &DbSnapshot, q: &str, ctx: &str) {
    if let Ok(Query::Relation(e)) = parse_query(q) {
        let (optimized, _) = optimize(&e);
        let p = plan(&optimized, snap);
        let pruned = eval_plan(&p, snap);
        let unpruned = match evaluate(&parse_query(q).unwrap(), snap) {
            Ok(QueryResult::Relation(r)) => Ok(r),
            Ok(_) => unreachable!("relation-sorted query"),
            Err(e) => Err(e),
        };
        match (pruned, unpruned) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{ctx}: pruned ≢ unpruned for `{q}`"),
            (Err(x), Err(y)) => assert_eq!(x.to_string(), y.to_string(), "{ctx}: `{q}`"),
            (x, y) => panic!("{ctx}: `{q}`: pruned {x:?} vs unpruned {y:?}"),
        }
    }
}

/// The single WAL file of a directory.
fn wal_file(dir: &std::path::Path) -> PathBuf {
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            name.starts_with("wal.") && name.ends_with(".log")
        })
        .collect();
    assert_eq!(found.len(), 1, "exactly one WAL per epoch in {dir:?}");
    found.pop().unwrap()
}

/// One scripted mutation, applied identically to both engines.
#[derive(Clone, Debug)]
enum Op {
    InsertR { k: i64, lo: i64, len: i64, v: i64 },
    InsertEvt { e: i64, lo: i64, len: i64, at: i64 },
    Put { keys: Vec<i64> },
    Checkpoint,
    Repartition { span_log2: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0i64..40), (0i64..900), (1i64..60), (0i64..100))
            .prop_map(|(k, lo, len, v)| Op::InsertR { k, lo, len, v }),
        ((0i64..20), (0i64..900), (1i64..40), (0i64..950))
            .prop_map(|(e, lo, len, at)| Op::InsertEvt { e, lo, len, at }),
        prop::collection::vec(0i64..40, 0..6).prop_map(|keys| Op::Put { keys }),
        Just(Op::Checkpoint),
        (2u32..9).prop_map(|span_log2| Op::Repartition { span_log2 }),
    ]
}

/// Applies `op` to one engine; results must match the sibling call on the
/// other engine (checked by the caller via returned ack).
fn apply(db: &ConcurrentDatabase, op: &Op) -> std::result::Result<(), String> {
    match op {
        Op::InsertR { k, lo, len, v } => db
            .insert("r", r_tup(*k, *lo, *len, *v))
            .map_err(|e| e.to_string()),
        Op::InsertEvt { e, lo, len, at } => db
            .insert("evt", evt_tup(*e, *lo, *len, *at))
            .map_err(|e| e.to_string()),
        Op::Put { keys } => {
            let mut uniq = keys.clone();
            uniq.sort_unstable();
            uniq.dedup();
            let tuples: Vec<Tuple> = uniq.iter().map(|&k| r_tup(k, k * 7, 10, k)).collect();
            let contents = Relation::with_tuples(r_scheme(), tuples).unwrap();
            db.put_relation("r", contents).map_err(|e| e.to_string())
        }
        Op::Checkpoint => db.checkpoint().map_err(|e| e.to_string()),
        Op::Repartition { span_log2 } => {
            // Only the partitioned engine's cut changes; the reference
            // keeps span = ∞. The caller repartitions the right side.
            db.set_partition_policy(PartitionPolicy::SpanLog2(*span_log2));
            Ok(())
        }
    }
}

fn open_pair(tag: &str) -> (ConcurrentDatabase, ConcurrentDatabase, PathBuf, PathBuf) {
    let dir_p = tmp(&format!("{tag}-part"));
    let dir_r = tmp(&format!("{tag}-ref"));
    let part = ConcurrentDatabase::open(&dir_p).unwrap();
    part.set_partition_policy(PartitionPolicy::SpanLog2(4)); // span 16
    let reference = ConcurrentDatabase::open(&dir_r).unwrap();
    reference.set_partition_policy(PartitionPolicy::Unpartitioned);
    for db in [&part, &reference] {
        db.create_relation("r", r_scheme()).unwrap();
        db.create_relation("evt", evt_scheme()).unwrap();
    }
    (part, reference, dir_p, dir_r)
}

proptest! {
    #![proptest_config(ProptestConfig::from_env_or(256))]

    /// The oracle: random op sequences, equal answers, equal stats, equal
    /// WAL bytes, equal recovery after an identically torn crash.
    #[test]
    fn partitioned_engine_is_observationally_identical(
        ops in prop::collection::vec(op_strategy(), 1..12),
        cut_back in 0u64..64,
    ) {
        let (part, reference, dir_p, dir_r) = open_pair("prop");
        for (i, op) in ops.iter().enumerate() {
            let a = apply(&part, op);
            let b = match op {
                // The reference engine never repartitions.
                Op::Repartition { .. } => Ok(()),
                _ => apply(&reference, op),
            };
            prop_assert_eq!(a, b, "op {} acked differently", i);
        }
        assert_engines_agree(&part.snapshot(), &reference.snapshot(), "post-ops");

        // Equal `\stats` op counts: partitioning must not change what the
        // group-commit layer acknowledges.
        prop_assert_eq!(part.stats().ops, reference.stats().ops);

        // The WAL knows nothing of partitioning: byte-identical logs.
        let (wal_p, wal_r) = (wal_file(&dir_p), wal_file(&dir_r));
        prop_assert_eq!(wal_p.file_name(), wal_r.file_name(), "same epoch");
        prop_assert_eq!(
            std::fs::read(&wal_p).unwrap(),
            std::fs::read(&wal_r).unwrap(),
            "WAL bytes diverged"
        );

        // Crash both engines with an identically torn WAL tail; both must
        // recover the same state (prefix consistency is engine-agnostic).
        drop(part);
        drop(reference);
        for wal in [&wal_p, &wal_r] {
            let len = std::fs::metadata(wal).unwrap().len();
            std::fs::OpenOptions::new()
                .write(true)
                .open(wal)
                .unwrap()
                .set_len(len.saturating_sub(cut_back))
                .unwrap();
        }
        let part = Database::open(&dir_p).unwrap();
        let reference = Database::open(&dir_r).unwrap();
        let names_p: Vec<&str> = part.relation_names().collect();
        let names_r: Vec<&str> = reference.relation_names().collect();
        prop_assert_eq!(&names_p, &names_r, "recovered relation sets differ");
        for name in names_p {
            prop_assert_eq!(
                part.relation(name).unwrap(),
                reference.relation(name).unwrap(),
                "recovered `{}` differs", name
            );
        }
        assert_engines_agree(&part.snapshot(), &reference.snapshot(), "post-crash");
        std::fs::remove_dir_all(&dir_p).ok();
        std::fs::remove_dir_all(&dir_r).ok();
    }
}

/// Concurrency interleaving: racing writers feed both engines the same
/// (disjoint-key) workload while readers snapshot mid-flight; the engines
/// converge to identical answers and identical op counts.
#[test]
fn concurrent_writers_leave_identical_engines() {
    let (part, reference, dir_p, dir_r) = open_pair("conc");
    let part = Arc::new(part);
    let reference = Arc::new(reference);
    for db in [Arc::clone(&part), Arc::clone(&reference)] {
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..40i64 {
                        let k = w * 1000 + i;
                        db.insert("r", r_tup(k, (k * 13) % 900, 25, k)).unwrap();
                        if i % 16 == 0 {
                            // Mid-flight reader: pruned ≡ unpruned on
                            // whatever prefix this snapshot caught.
                            let snap = db.snapshot();
                            for q in ["TIMESLICE [50..120] (r)", "SELECT-WHEN (V >= 10) (r)"] {
                                assert_pruned_plan_sound(&snap, q, "mid-flight");
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    assert_engines_agree(&part.snapshot(), &reference.snapshot(), "post-race");
    assert_eq!(part.stats().ops, reference.stats().ops);
    std::fs::remove_dir_all(&dir_p).ok();
    std::fs::remove_dir_all(&dir_r).ok();
}

/// The acceptance scenario: a selective TIME-SLICE on a 64-partition,
/// densely populated relation plans `partitions: k/N pruned` with `k < N`,
/// and the pruned result is exact.
#[test]
fn explain_prunes_selective_timeslice_on_64_partitions() {
    let db = ConcurrentDatabase::new();
    db.set_partition_policy(PartitionPolicy::SpanLog2(4)); // span 16
    db.create_relation("r", r_scheme()).unwrap();
    // One tuple per 16-chronon range over [0, 1024): exactly 64 partitions,
    // each summary confined to its own range.
    for k in 0..64i64 {
        db.insert("r", r_tup(k, k * 16, 10, k)).unwrap();
    }
    let snap = db.snapshot();
    assert_eq!(snap.partitions("r").unwrap().partition_count(), 64);

    let e = parse_expr("TIMESLICE [100..120] (r)").unwrap();
    let text = explain_with_access(&e, &*snap);
    assert!(
        text.contains("partitions: 62/64 pruned"),
        "EXPLAIN missing pruning line:\n{text}"
    );
    assert_pruned_plan_sound(&snap, "TIMESLICE [100..120] (r)", "64-partition");

    // The pruned evaluation returns exactly the two overlapping tuples.
    let parsed = parse_query("TIMESLICE [100..120] (r)").unwrap();
    match evaluate_planned(&parsed, &*snap).unwrap() {
        QueryResult::Relation(r) => assert_eq!(r.len(), 2),
        other => panic!("unexpected result {other:?}"),
    }

    // Pruning also composes under a select (the optimizer pushes the
    // slice down; the bound reaches the scan).
    let e = parse_expr("TIMESLICE [100..120] (SELECT-WHEN (V >= 0) (r))").unwrap();
    let text = explain_with_access(&e, &*snap);
    assert!(
        text.contains("partitions: 62/64 pruned"),
        "bound did not reach the scan under the select:\n{text}"
    );
}
