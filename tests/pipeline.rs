// The legacy materializing evaluator stays the reference oracle for the
// streaming executor, so this file uses it deliberately.
#![allow(deprecated)]

//! End-to-end pipeline tests across all crates: generate → persist →
//! reload → query (optimized) → compare against the baseline models.

mod common;

use common::{build_tuple, test_scheme};
use hrdm_baseline::{hrdm_to_cube, hrdm_to_ts, snapshot_of_hrdm, ts_to_hrdm};
use hrdm_core::prelude::*;
use hrdm_query::{evaluate, optimize, parse_expr, parse_query, QueryResult};
use hrdm_storage::Database;
use proptest::prelude::*;

fn sample_relation() -> Relation {
    let scheme = test_scheme();
    let tuples = vec![
        build_tuple(
            &scheme,
            "K",
            1,
            &Lifespan::of(&[(0, 14), (25, 40)]), // reincarnated object
            &[
                ("V", vec![(0, 9, 10), (10, 14, 20), (25, 40, 30)]),
                ("W", vec![(0, 14, 5), (25, 40, 5)]),
            ],
        ),
        build_tuple(
            &scheme,
            "K",
            2,
            &Lifespan::interval(5, 30),
            &[("V", vec![(5, 30, 20)]), ("W", vec![(5, 30, 7)])],
        ),
    ];
    Relation::with_tuples(scheme, tuples).unwrap()
}

#[test]
fn persist_reload_query_pipeline() {
    let dir = std::env::temp_dir().join(format!("hrdm-pipeline-{}", std::process::id()));
    let r = sample_relation();

    // Persist through the physical level.
    let mut db = Database::new();
    db.create_relation("r", r.scheme().clone()).unwrap();
    db.put_relation("r", r.clone()).unwrap();
    db.save(&dir).unwrap();

    // Reload and compare.
    let db = Database::load(&dir).unwrap();
    assert_eq!(db.relation("r").unwrap(), &r);

    // Query through the language, optimized, against the reloaded DB.
    let e = parse_expr("TIMESLICE [0..20] (SELECT-WHEN (V >= 20) (r))").unwrap();
    let (optimized, trace) = optimize(&e);
    assert!(!trace.is_empty());
    let direct = hrdm_query::eval_expr(&e, &db).unwrap();
    let opt = hrdm_query::eval_expr(&optimized, &db).unwrap();
    assert_eq!(direct, opt);

    // Expected: object 1 matches on [10,14] (V=20), object 2 on [5,20]∩[5,30].
    assert_eq!(direct.len(), 2);
    assert_eq!(direct.lifespan(), Lifespan::interval(5, 20));

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn all_models_agree_on_snapshots_of_the_pipeline_relation() {
    let r = sample_relation();
    let ts = hrdm_to_ts(&r).unwrap();
    let cube = hrdm_to_cube(&r, None).unwrap();

    for t in [0i64, 7, 14, 20, 27, 40] {
        let t = Chronon::new(t);
        let snap = snapshot_of_hrdm(&r, t).unwrap();
        let ts_rows: std::collections::BTreeSet<Vec<Value>> = ts
            .timeslice(t)
            .into_iter()
            .map(|v| v.values.clone())
            .collect();
        let snap_rows: std::collections::BTreeSet<Vec<Value>> =
            snap.rows().iter().cloned().collect();
        assert_eq!(snap_rows, ts_rows, "tuple-timestamped disagrees at {t:?}");

        let cube_rows: std::collections::BTreeSet<Vec<Value>> = cube
            .timeslice(t)
            .iter()
            .map(|row| row.iter().map(|v| v.clone().unwrap()).collect())
            .collect();
        assert_eq!(snap_rows, cube_rows, "cube disagrees at {t:?}");
    }
}

#[test]
fn ts_round_trip_preserves_the_relation() {
    let r = sample_relation();
    let ts = hrdm_to_ts(&r).unwrap();
    let back = ts_to_hrdm(&ts, r.scheme()).unwrap();
    assert_eq!(back, r);
}

#[test]
fn language_queries_match_direct_algebra_on_the_pipeline_relation() {
    let mut src = std::collections::BTreeMap::new();
    src.insert("r".to_string(), sample_relation());

    // WHEN through the language == Ω over select-when directly.
    let q = parse_query("WHEN (SELECT-WHEN (V = 30) (r))").unwrap();
    match evaluate(&q, &src).unwrap() {
        QueryResult::Lifespan(l) => assert_eq!(l, Lifespan::interval(25, 40)),
        other => panic!("unexpected {other:?}"),
    }

    // Dynamic behaviors compose with storage-independent equality.
    let q = parse_query("PROJECT [K] (SELECT-IF (V = 20, FORALL, [10..14]) (r))").unwrap();
    match evaluate(&q, &src).unwrap() {
        QueryResult::Relation(rel) => {
            // Object 1 earns V=20 throughout [10,14]; object 2 holds V=20
            // everywhere, so both pass the bounded ∀.
            assert_eq!(rel.len(), 2);
        }
        other => panic!("unexpected {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn storage_round_trip_is_identity(r in common::relation_strategy()) {
        let dir = std::env::temp_dir().join(format!(
            "hrdm-prop-{}-{}",
            std::process::id(),
            rand_suffix(&r)
        ));
        let mut db = Database::new();
        db.create_relation("r", r.scheme().clone()).unwrap();
        db.put_relation("r", r.clone()).unwrap();
        db.save(&dir).unwrap();
        let back = Database::load(&dir).unwrap();
        prop_assert_eq!(back.relation("r").unwrap(), &r);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn ts_conversion_round_trips_total_relations(r in common::relation_strategy()) {
        // Restrict to the fully-defined parts first (the information the 1NF
        // model can carry), then the round trip must be exact.
        let total: Vec<Tuple> = r
            .iter()
            .map(|t| {
                let mut defined = t.lifespan().clone();
                for tv in t.values().values() {
                    defined = defined.intersect(&tv.domain());
                }
                t.restrict(&defined)
            })
            .filter(|t| t.bears_information())
            .collect();
        let total_rel = Relation::with_tuples(r.scheme().clone(), total).unwrap();
        let ts = hrdm_to_ts(&total_rel).unwrap();
        let back = ts_to_hrdm(&ts, total_rel.scheme()).unwrap();
        prop_assert_eq!(back, total_rel);
    }
}

/// Deterministic per-input suffix so parallel proptest cases do not collide
/// on a shared temp directory.
fn rand_suffix(r: &Relation) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    for t in r.iter() {
        t.hash(&mut h);
    }
    h.finish()
}
