// The legacy materializing evaluator stays the reference oracle for the
// streaming executor, so this file uses it deliberately.
#![allow(deprecated)]

//! Streaming differential oracle: the pull-based executor
//! ([`hrdm_query::stream_query_on_snapshot`]) must be observationally
//! identical to the materializing evaluator (`eval.rs`) — same battery of
//! queries, same random database states, same answers — under
//!
//! * the default execution options,
//! * tiny batch sizes (1..64 rows, exercising every batch boundary), and
//! * forced morsel-parallel scans (`workers: 4, parallel_min_rows: 1`),
//!   where batch *order* is nondeterministic but set semantics make the
//!   collected relation identical.
//!
//! A live-writer interleaving test additionally streams against snapshots
//! taken mid-write: snapshot isolation means the stream and the evaluator
//! must agree on whatever prefix each snapshot caught.
//!
//! Run with `PROPTEST_CASES=256` (the CI acceptance leg); the default here
//! is already 256.

use hrdm_core::prelude::*;
use hrdm_query::{
    evaluate, parse_query, stream_query_on_snapshot, ExecError, ExecOptions, QueryResult,
    StreamedQuery,
};
use hrdm_storage::{ConcurrentDatabase, PartitionPolicy};
use proptest::prelude::*;
use std::sync::Arc;

fn r_scheme() -> Scheme {
    let era = Lifespan::interval(0, 4096);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn evt_scheme() -> Scheme {
    let era = Lifespan::interval(0, 4096);
    Scheme::builder()
        .key_attr("E", ValueKind::Int, era.clone())
        .attr("AT", HistoricalDomain::time(), era)
        .build()
        .unwrap()
}

fn r_tup(k: i64, lo: i64, len: i64, v: i64) -> Tuple {
    let life = Lifespan::interval(lo, lo + len);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(v)))
        .finish(&r_scheme())
        .unwrap()
}

fn evt_tup(e: i64, lo: i64, len: i64, at: i64) -> Tuple {
    let life = Lifespan::interval(lo, lo + len);
    Tuple::builder(life.clone())
        .constant("E", e)
        .value("AT", TemporalValue::constant(&life, Value::time(at)))
        .finish(&evt_scheme())
        .unwrap()
}

/// The same battery the engine-level differential oracle answers: lifespan
/// bounds that prune, predicates that probe, operators that combine, plus
/// the lifespan and aggregate sorts (which take the scalar stream path).
const QUERIES: &[&str] = &[
    "r",
    "TIMESLICE [40..70] (r)",
    "TIMESLICE [0..3, 130..150] (r)",
    "TIMESLICE [4000..4090] (r)",
    "SELECT-WHEN (K = 5) (r)",
    "SELECT-WHEN (V >= 50) (r)",
    "TIMESLICE [10..90] (SELECT-WHEN (V >= 20) (r))",
    "PROJECT [V] (TIMESLICE [5..120] (r))",
    "TIMESLICE [0..80] (r UNION r)",
    "(TIMESLICE [0..100] (r)) MINUS (TIMESLICE [50..200] (r))",
    "(TIMESLICE [0..128] (r)) INTERSECT-O (TIMESLICE [64..256] (r))",
    "SELECT-IF (V >= 10, FORALL, [16..48]) (r)",
    "evt TIMEJOIN@AT r",
    "TIMESLICE [8..40] (evt TIMEJOIN@AT r)",
    "SLICE@AT (evt)",
    "WHEN (TIMESLICE [5..95] (r))",
    "COUNT V (r)",
];

/// Canonical byte serialization of a query result: tuple renderings
/// sorted, so the nondeterministic batch order of parallel scans compares
/// byte-for-byte against the evaluator's insertion order.
fn canonical(result: &QueryResult) -> String {
    match result {
        QueryResult::Relation(r) => {
            let mut lines: Vec<String> = r.iter().map(|t| t.to_string()).collect();
            lines.sort();
            format!("scheme {}\n{}", r.scheme(), lines.join("\n"))
        }
        QueryResult::Lifespan(l) => l.to_string(),
        QueryResult::Function(f) => f.to_string(),
    }
}

/// Drains a streamed query to a [`QueryResult`], checking the per-batch
/// invariants on the way: no batch exceeds the configured size, no empty
/// batches are surfaced, and the stream's own row/batch accounting matches
/// what the caller observed.
fn drain(sq: StreamedQuery<'_>, batch_cap: usize) -> Result<QueryResult, ExecError> {
    match sq {
        StreamedQuery::Rows(mut stream) => {
            let scheme = stream.scheme().clone();
            let mut rows = Vec::new();
            let mut batches = 0u64;
            while let Some(batch) = stream.next_batch()? {
                assert!(
                    !batch.is_empty(),
                    "executors must not surface empty batches"
                );
                assert!(
                    batch.len() <= batch_cap,
                    "batch of {} rows exceeds the {batch_cap}-row cap",
                    batch.len()
                );
                batches += 1;
                rows.extend(batch.into_rows());
            }
            assert_eq!(stream.rows_streamed(), rows.len() as u64, "row accounting");
            assert_eq!(stream.batches_streamed(), batches, "batch accounting");
            Ok(QueryResult::Relation(Relation::from_parts_unchecked(
                scheme, rows,
            )))
        }
        StreamedQuery::Lifespan { value, .. } => Ok(QueryResult::Lifespan(value)),
        StreamedQuery::Function { value, .. } => Ok(QueryResult::Function(value)),
    }
}

/// The oracle step: for one query and one option set, streaming ≡ eval.
fn assert_stream_matches_eval(
    snap: &hrdm_storage::DbSnapshot,
    q: &str,
    opts: &ExecOptions,
    ctx: &str,
) {
    let parsed = parse_query(q).unwrap();
    let reference = evaluate(&parsed, snap);
    let batch_cap = opts.batch_rows.max(1);
    let streamed = match stream_query_on_snapshot(q, snap, opts) {
        Ok(sq) => drain(sq, batch_cap),
        Err(e) => {
            assert!(
                reference.is_err(),
                "{ctx}: `{q}` failed streaming ({e}) but evaluated fine"
            );
            return;
        }
    };
    match (streamed, reference) {
        (Ok(a), Ok(b)) => assert_eq!(canonical(&a), canonical(&b), "{ctx}: `{q}` diverged"),
        (Err(_), Err(_)) => {}
        (a, b) => panic!("{ctx}: `{q}` succeeded on one path only: {a:?} vs {b:?}"),
    }
}

/// Every battery query, under serial defaults, tiny batches, and forced
/// morsel parallelism.
fn assert_battery_agrees(snap: &hrdm_storage::DbSnapshot, batch_rows: usize, ctx: &str) {
    let serial = ExecOptions {
        batch_rows,
        ..ExecOptions::default()
    };
    let parallel = ExecOptions {
        batch_rows,
        workers: 4,
        parallel_min_rows: 1,
        ..ExecOptions::default()
    };
    for q in QUERIES {
        assert_stream_matches_eval(snap, q, &serial, &format!("{ctx}/serial"));
        assert_stream_matches_eval(snap, q, &parallel, &format!("{ctx}/parallel"));
    }
}

fn populated(span_log2: u32) -> ConcurrentDatabase {
    let db = ConcurrentDatabase::new();
    db.set_partition_policy(PartitionPolicy::SpanLog2(span_log2));
    db.create_relation("r", r_scheme()).unwrap();
    db.create_relation("evt", evt_scheme()).unwrap();
    db
}

/// Deterministic acceptance case: a dense 64-partition relation answers
/// the full battery identically through both paths, including with forced
/// parallel scans and 1-row batches.
#[test]
fn streaming_matches_the_evaluator_on_the_battery() {
    let db = populated(4);
    for k in 0..64i64 {
        db.insert("r", r_tup(k, k * 16, 10, k)).unwrap();
    }
    for e in 0..16i64 {
        db.insert("evt", evt_tup(e, e * 50, 30, e * 60)).unwrap();
    }
    let snap = db.snapshot();
    assert_battery_agrees(&snap, 1, "dense-64/batch=1");
    assert_battery_agrees(&snap, 7, "dense-64/batch=7");
    assert_battery_agrees(&snap, 1024, "dense-64/batch=1024");
}

/// The row cap cuts a stream off with [`ExecError::RowLimit`] — and the
/// uncapped prefix it did deliver is a subset of the evaluator's answer.
#[test]
fn row_cap_truncates_the_stream() {
    let db = populated(4);
    for k in 0..64i64 {
        db.insert("r", r_tup(k, k * 16, 10, k)).unwrap();
    }
    let snap = db.snapshot();
    let opts = ExecOptions {
        batch_rows: 8,
        max_rows: Some(10),
        ..ExecOptions::default()
    };
    match stream_query_on_snapshot("r", &*snap, &opts).unwrap() {
        StreamedQuery::Rows(mut stream) => {
            let mut seen = 0u64;
            let err = loop {
                match stream.next_batch() {
                    Ok(Some(b)) => seen += b.len() as u64,
                    Ok(None) => panic!("64-row scan must trip the 10-row cap"),
                    Err(e) => break e,
                }
            };
            assert!(matches!(err, ExecError::RowLimit(10)), "{err}");
            assert!(seen <= 10, "cap overshot: {seen} rows escaped");
        }
        _ => panic!("relation-sorted query"),
    };
}

/// A cancel probe flipping true mid-stream aborts within one batch
/// boundary: at most one more batch surfaces after the flip.
#[test]
fn cancel_aborts_within_one_batch() {
    let db = populated(4);
    for k in 0..64i64 {
        db.insert("r", r_tup(k, k * 16, 10, k)).unwrap();
    }
    let snap = db.snapshot();
    let cancelled = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let probe = Arc::clone(&cancelled);
    let opts = ExecOptions {
        batch_rows: 4,
        cancel: Some(Arc::new(move || {
            probe.load(std::sync::atomic::Ordering::SeqCst)
        })),
        ..ExecOptions::default()
    };
    match stream_query_on_snapshot("SELECT-WHEN (V >= 0) (r)", &*snap, &opts).unwrap() {
        StreamedQuery::Rows(mut stream) => {
            let first = stream
                .next_batch()
                .unwrap()
                .expect("one batch before cancel");
            assert!(first.len() <= 4);
            cancelled.store(true, std::sync::atomic::Ordering::SeqCst);
            match stream.next_batch() {
                Err(ExecError::Cancelled) => {}
                other => panic!("expected Cancelled right after the flip, got {other:?}"),
            }
            // After the terminal error the stream is fused.
            assert!(matches!(stream.next_batch(), Ok(None)));
        }
        _ => panic!("relation-sorted query"),
    };
}

proptest! {
    #![proptest_config(ProptestConfig::from_env_or(256))]

    /// The oracle: random database states, random partition cuts, random
    /// batch sizes — streaming (serial and forced-parallel) ≡ eval on the
    /// full battery.
    #[test]
    fn streaming_matches_the_evaluator_on_random_states(
        rs in prop::collection::vec(
            ((0i64..40), (0i64..900), (1i64..60), (0i64..100)), 0..24),
        evts in prop::collection::vec(
            ((0i64..20), (0i64..900), (1i64..40), (0i64..950)), 0..12),
        span_log2 in 2u32..9,
        batch_rows in 1usize..64,
    ) {
        let db = populated(span_log2);
        // Duplicate-key inserts are rejected by the engine; that rejection
        // is itself deterministic, so simply skip them.
        for (k, lo, len, v) in rs {
            let _ = db.insert("r", r_tup(k, lo, len, v));
        }
        for (e, lo, len, at) in evts {
            let _ = db.insert("evt", evt_tup(e, lo, len, at));
        }
        let snap = db.snapshot();
        assert_battery_agrees(&snap, batch_rows, "random-state");
    }

    /// Live-writer interleavings: a writer races the reader; every
    /// snapshot the reader takes mid-flight must answer identically
    /// through the streaming and materializing paths (snapshot isolation
    /// makes each comparison well-defined regardless of the interleaving).
    #[test]
    fn streaming_agrees_with_the_evaluator_under_a_live_writer(
        writes in prop::collection::vec(
            ((0i64..60), (0i64..900), (1i64..60), (0i64..100)), 8..32),
        batch_rows in 1usize..32,
    ) {
        let db = Arc::new(populated(4));
        // Seed state so the first snapshots are non-trivial.
        for k in 0..8i64 {
            db.insert("r", r_tup(k, k * 40, 20, k)).unwrap();
        }
        let writer_db = Arc::clone(&db);
        let writer = std::thread::spawn(move || {
            for (k, lo, len, v) in writes {
                // Duplicate keys are rejected; the race is the point here.
                let _ = writer_db.insert("r", r_tup(k, lo, len, v));
            }
        });
        let subset = [
            "TIMESLICE [10..90] (SELECT-WHEN (V >= 20) (r))",
            "SELECT-WHEN (K = 5) (r)",
            "WHEN (TIMESLICE [5..95] (r))",
        ];
        let parallel = ExecOptions {
            batch_rows,
            workers: 4,
            parallel_min_rows: 1,
            ..ExecOptions::default()
        };
        for _ in 0..4 {
            let snap = db.snapshot();
            for q in subset {
                assert_stream_matches_eval(&snap, q, &parallel, "live-writer");
            }
        }
        writer.join().unwrap();
        // Post-race: the settled state agrees on the full battery.
        assert_battery_agrees(&db.snapshot(), batch_rows, "post-race");
    }
}
