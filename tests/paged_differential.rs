//! Differential oracle for the out-of-core read path: the **paged**
//! pipeline (windowed materialization through the buffer pool, pruned
//! partitions never faulted) must answer every query byte-identically to
//! the eager snapshot pipeline over the same directory.
//!
//! The suite drives random insert/checkpoint schedules, then compares
//! the full query battery both ways — including under a deliberately
//! tiny pool that forces eviction mid-materialization. The CI
//! `partition-tests` leg additionally runs this file with
//! `HRDM_POOL_PAGES=4`, so the process-global pool thrashes too.

use hrdm_core::prelude::*;
use hrdm_query::{
    paged_snapshot_for_query, parse_query, run_query_on_paged, run_query_on_snapshot, QueryResult,
};
use hrdm_storage::{BufferPool, Database, PagedDatabase, PartitionPolicy, WalRecord};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "hrdm-paged-diff-{}-{name}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn r_scheme() -> Scheme {
    let era = Lifespan::interval(0, 4096);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era)
        .build()
        .unwrap()
}

fn evt_scheme() -> Scheme {
    let era = Lifespan::interval(0, 4096);
    Scheme::builder()
        .key_attr("E", ValueKind::Int, era.clone())
        .attr("AT", HistoricalDomain::time(), era)
        .build()
        .unwrap()
}

fn r_tup(k: i64, lo: i64, len: i64, v: i64) -> Tuple {
    let life = Lifespan::interval(lo, lo + len);
    Tuple::builder(life.clone())
        .constant("K", k)
        .value("V", TemporalValue::constant(&life, Value::Int(v)))
        .finish(&r_scheme())
        .unwrap()
}

fn evt_tup(e: i64, lo: i64, len: i64, at: i64) -> Tuple {
    let life = Lifespan::interval(lo, lo + len);
    Tuple::builder(life.clone())
        .constant("E", e)
        .value("AT", TemporalValue::constant(&life, Value::time(at)))
        .finish(&evt_scheme())
        .unwrap()
}

/// The same battery the partitioned-vs-unpartitioned oracle runs, plus
/// paged-specific shapes: windows that prune almost everything, computed
/// (`WHEN`) slice windows that must *disable* windowing, and joins whose
/// leaves sit under different literal slices.
const QUERIES: &[&str] = &[
    "r",
    "TIMESLICE [40..70] (r)",
    "TIMESLICE [0..3, 130..150] (r)",
    "TIMESLICE [4000..4090] (r)",
    "SELECT-WHEN (K = 5) (r)",
    "SELECT-WHEN (V >= 50) (r)",
    "TIMESLICE [10..90] (SELECT-WHEN (V >= 20) (r))",
    "PROJECT [V] (TIMESLICE [5..120] (r))",
    "TIMESLICE [0..80] (r UNION r)",
    "(TIMESLICE [0..100] (r)) MINUS (TIMESLICE [50..200] (r))",
    "(TIMESLICE [0..128] (r)) INTERSECT-O (TIMESLICE [64..256] (r))",
    "SELECT-IF (V >= 10, FORALL, [16..48]) (r)",
    "evt TIMEJOIN@AT r",
    "TIMESLICE [8..40] (evt TIMEJOIN@AT r)",
    "(TIMESLICE [0..64] (evt)) TIMEJOIN@AT (TIMESLICE [0..64] (r))",
    "SLICE@AT (evt)",
    "WHEN (TIMESLICE [5..95] (r))",
    "TIMESLICE (WHEN (SELECT-WHEN (K = 1) (r))) (r)",
    "COUNT V (r)",
];

/// Canonical byte serialization (sorted tuple renderings) so physically
/// different tuple orders compare equal.
fn canonical(result: &QueryResult) -> String {
    match result {
        QueryResult::Relation(r) => {
            let mut lines: Vec<String> = r.iter().map(|t| t.to_string()).collect();
            lines.sort();
            format!("scheme {}\n{}", r.scheme(), lines.join("\n"))
        }
        QueryResult::Lifespan(l) => l.to_string(),
        QueryResult::Function(f) => f.to_string(),
    }
}

/// Every battery query answers identically through the eager snapshot
/// and through the paged pipeline (both the global-pool entry point and
/// an explicit thrash-sized pool).
fn assert_paged_agrees(dir: &std::path::Path, ctx: &str) {
    let eager = Database::load(dir).unwrap().snapshot();
    let paged = PagedDatabase::open(dir).unwrap();
    let tiny = PagedDatabase::open_with_pool(dir, BufferPool::new(2)).unwrap();
    for q in QUERIES {
        let want = run_query_on_snapshot(q, &eager);
        let got = run_query_on_paged(q, &paged);
        match (&want, &got) {
            (Ok(a), Ok(b)) => {
                assert_eq!(canonical(a), canonical(b), "{ctx}: `{q}` diverged paged");
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{ctx}: `{q}`"),
            _ => panic!("{ctx}: `{q}` succeeded on one path only: {want:?} vs {got:?}"),
        }
        // Same query through a 2-frame pool: eviction mid-materialization
        // must not change a byte.
        let (snap, _w) = paged_snapshot_for_query(q, &tiny).unwrap();
        let thrashed = run_query_on_snapshot(q, &snap);
        match (&want, &thrashed) {
            (Ok(a), Ok(b)) => {
                assert_eq!(canonical(a), canonical(b), "{ctx}: `{q}` diverged thrashed");
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{ctx}: `{q}`"),
            _ => panic!("{ctx}: `{q}`: {want:?} vs thrashed {thrashed:?}"),
        }
    }
}

/// One scripted mutation. Schedules stay within what a paged open
/// tolerates: inserts and checkpoints (the heavier ops are covered by
/// the Mode-error tests in the storage crate).
#[derive(Clone, Debug)]
enum Op {
    InsertR { k: i64, lo: i64, len: i64, v: i64 },
    InsertEvt { e: i64, lo: i64, len: i64, at: i64 },
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0i64..40), (0i64..900), (1i64..60), (0i64..100))
            .prop_map(|(k, lo, len, v)| Op::InsertR { k, lo, len, v }),
        ((0i64..20), (0i64..900), (1i64..40), (0i64..950))
            .prop_map(|(e, lo, len, at)| Op::InsertEvt { e, lo, len, at }),
        Just(Op::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::from_env_or(32))]

    /// Random insert/checkpoint schedules: after the run (final state =
    /// checkpoint + possibly a WAL tail of inserts), the paged pipeline
    /// answers the whole battery identically to the eager one.
    #[test]
    fn paged_pipeline_is_observationally_identical(
        ops in prop::collection::vec(op_strategy(), 1..24),
        span_log2 in 2u32..9,
    ) {
        let dir = tmp("prop");
        {
            let mut db = Database::open(&dir).unwrap();
            db.set_partition_policy(PartitionPolicy::SpanLog2(span_log2));
            db.create_relation("r", r_scheme()).unwrap();
            db.create_relation("evt", evt_scheme()).unwrap();
            // A paged open needs at least one checkpoint.
            db.checkpoint().unwrap();
            for op in &ops {
                match op {
                    Op::InsertR { k, lo, len, v } => {
                        db.insert("r", r_tup(*k, *lo, *len, *v)).ok();
                    }
                    Op::InsertEvt { e, lo, len, at } => {
                        db.insert("evt", evt_tup(*e, *lo, *len, *at)).ok();
                    }
                    Op::Checkpoint => db.checkpoint().unwrap(),
                }
            }
        }
        assert_paged_agrees(&dir, "post-ops");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic smoke variant (fast, runs even with PROPTEST_CASES=1):
/// a dense seeded state with tuples in many partitions plus a WAL tail.
#[test]
fn paged_pipeline_battery_on_seeded_state() {
    let dir = tmp("seeded");
    {
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(PartitionPolicy::SpanLog2(6)); // span 64
        db.create_relation("r", r_scheme()).unwrap();
        db.create_relation("evt", evt_scheme()).unwrap();
        let mut ops = Vec::new();
        for k in 0..200 {
            let lo = (k * 19) % 3_900;
            ops.push(WalRecord::Insert {
                relation: "r".into(),
                tuple: r_tup(k % 40, lo, 1 + k % 50, k),
            });
        }
        for e in 0..60 {
            let lo = (e * 31) % 3_900;
            ops.push(WalRecord::Insert {
                relation: "evt".into(),
                tuple: evt_tup(e % 20, lo, 1 + e % 30, (e * 13) % 950),
            });
        }
        for r in db.commit_batch(ops) {
            r.ok(); // duplicate keys may be refused; both paths see the same state
        }
        db.checkpoint().unwrap();
        // A WAL tail on top of the checkpoint.
        for k in 0..25 {
            db.insert("r", r_tup(40 + k, (k * 101) % 3_900, 15, k)).ok();
        }
    }
    assert_paged_agrees(&dir, "seeded");

    // Witness that the battery's narrow windows actually pruned: a
    // fresh paged view answering only the [40..70] slice must leave
    // most partitions unopened.
    let pool = BufferPool::new(8);
    let paged = PagedDatabase::open_with_pool(&dir, Arc::clone(&pool)).unwrap();
    let _ = run_query_on_snapshot(
        "TIMESLICE [40..70] (r)",
        &paged_snapshot_for_query("TIMESLICE [40..70] (r)", &paged)
            .unwrap()
            .0,
    )
    .unwrap();
    let opened = paged.opened_partitions("r");
    let total = paged.partition_map("r").unwrap().iter().count();
    assert!(
        opened.len() * 2 < total.max(2),
        "narrow slice opened {}/{total} partitions",
        opened.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The parser/planner agree with the storage layer about windows: a
/// query whose window is `None` (computed slice) must still answer
/// correctly — it materializes everything rather than guessing.
#[test]
fn computed_windows_disable_pruning_not_correctness() {
    let dir = tmp("computed");
    {
        let mut db = Database::open(&dir).unwrap();
        db.set_partition_policy(PartitionPolicy::SpanLog2(5));
        db.create_relation("r", r_scheme()).unwrap();
        db.create_relation("evt", evt_scheme()).unwrap();
        for k in 0..50 {
            db.insert("r", r_tup(k, (k * 83) % 3_900, 20, k)).unwrap();
        }
        db.checkpoint().unwrap();
    }
    let paged = PagedDatabase::open(&dir).unwrap();
    let q = "TIMESLICE (WHEN (SELECT-WHEN (K = 7) (r))) (r)";
    let parsed = parse_query(q).unwrap();
    if let hrdm_query::Query::Relation(e) = &parsed {
        let (optimized, _) = hrdm_query::optimize(e);
        assert_eq!(
            hrdm_query::materialization_window(&optimized),
            None,
            "a computed slice window must force full materialization"
        );
    } else {
        panic!("expected a relation query");
    }
    let eager = Database::load(&dir).unwrap().snapshot();
    let want = run_query_on_snapshot(q, &eager).unwrap();
    let got = run_query_on_paged(q, &paged).unwrap();
    assert_eq!(canonical(&want), canonical(&got));
    std::fs::remove_dir_all(&dir).ok();
}
