// The legacy materializing evaluator stays the reference oracle for the
// streaming executor, so this file uses it deliberately.
#![allow(deprecated)]

//! The optimizer's rewrite rules are semantics-preserving: random
//! expression trees evaluate identically before and after optimization.

mod common;

use common::{other_relation_strategy, relation_strategy};
use hrdm_core::prelude::*;
use hrdm_query::{eval_expr, optimize, Expr, LifespanExpr};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: a random expression over relations named `r` (test scheme) and
/// `s` (other scheme), built to be *well-typed* by construction.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::rel("r")), Just(Expr::rel("r2"))];
    leaf.prop_recursive(4, 24, 3, |inner| {
        let pred = (
            0i64..4,
            prop_oneof![
                Just(Comparator::Eq),
                Just(Comparator::Le),
                Just(Comparator::Gt)
            ],
        )
            .prop_map(|(c, op)| Predicate::attr_op_value("V", op, c));
        let lifespan = common::lifespan_strategy().prop_map(LifespanExpr::Literal);
        prop_oneof![
            // Unary operators (keep the scheme compatible for set ops).
            (inner.clone(), pred.clone()).prop_map(|(e, p)| Expr::SelectWhen {
                input: Box::new(e),
                predicate: p,
            }),
            (inner.clone(), pred.clone()).prop_map(|(e, p)| Expr::SelectIf {
                input: Box::new(e),
                predicate: p,
                quantifier: Quantifier::Exists,
                lifespan: None,
            }),
            (inner.clone(), lifespan).prop_map(|(e, l)| Expr::TimeSlice {
                input: Box::new(e),
                lifespan: l,
            }),
            inner.clone().prop_map(|e| e.project(["K", "V", "W"])),
            // Binary, scheme-compatible combinations.
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Intersection(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Difference(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimized_plans_evaluate_identically(
        e in expr_strategy(),
        r in relation_strategy(),
        r2 in relation_strategy(),
    ) {
        let mut src: BTreeMap<String, Relation> = BTreeMap::new();
        src.insert("r".into(), r);
        src.insert("r2".into(), r2);

        let (optimized, _trace) = optimize(&e);
        let before = eval_expr(&e, &src);
        let after = eval_expr(&optimized, &src);
        match (before, after) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "expr: {}", e),
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "divergent outcomes for {}: {:?} vs {:?}", e, a.is_ok(), b.is_ok()),
        }
    }

    #[test]
    fn optimization_growth_is_bounded(e in expr_strategy()) {
        // Fusion rules shrink; distribution over union duplicates at most
        // one slice node per union, so growth is at most linear.
        let (optimized, _trace) = optimize(&e);
        prop_assert!(
            optimized.size() <= e.size() * 2,
            "{} grew to {}",
            e,
            optimized
        );
    }

    #[test]
    fn display_parse_round_trip(e in expr_strategy()) {
        // The textual form of any expression re-parses to the same tree —
        // the language and the AST printer stay in lockstep.
        let printed = e.to_string();
        let reparsed = hrdm_query::parse_expr(&printed);
        prop_assert_eq!(reparsed.as_ref(), Ok(&e), "printed: {}", printed);
    }

    #[test]
    fn optimization_is_idempotent(e in expr_strategy()) {
        let (once, _) = optimize(&e);
        let (twice, trace2) = optimize(&once);
        prop_assert_eq!(once, twice);
        prop_assert!(trace2.is_empty(), "second pass still fired: {:?}", trace2);
    }

    #[test]
    fn join_expressions_survive_optimization(
        r in relation_strategy(),
        s in other_relation_strategy(),
        c in 0i64..4,
    ) {
        // A hand-built multi-operator query with a join (joins need
        // distinct schemes, so they live outside the recursive strategy).
        let e = Expr::TimeSlice {
            input: Box::new(Expr::SelectWhen {
                input: Box::new(Expr::ThetaJoin {
                    left: Box::new(Expr::rel("r")),
                    right: Box::new(Expr::rel("s")),
                    a: "V".into(),
                    op: Comparator::Le,
                    b: "X".into(),
                }),
                predicate: Predicate::attr_op_value("W", Comparator::Ge, c),
            }),
            lifespan: LifespanExpr::Literal(Lifespan::interval(0, 20)),
        };
        let mut src: BTreeMap<String, Relation> = BTreeMap::new();
        src.insert("r".into(), r);
        src.insert("s".into(), s);
        let (optimized, trace) = optimize(&e);
        prop_assert!(!trace.is_empty()); // timeslice pushes through select-when
        prop_assert_eq!(
            eval_expr(&e, &src).unwrap(),
            eval_expr(&optimized, &src).unwrap()
        );
    }
}
