// The legacy materializing evaluator stays the reference oracle for the
// streaming executor, so this file uses it deliberately.
#![allow(deprecated)]

//! The access-path planner is semantics-preserving: random expression
//! trees over random relations evaluate identically through the plain
//! evaluator (sequential scans everywhere) and through
//! optimize → plan → eval_plan (index scans where available).

mod common;

use common::{other_relation_strategy, relation_strategy};
use hrdm_core::prelude::*;
use hrdm_query::{eval_expr, eval_plan, optimize, plan, Expr, IndexedRelations, LifespanExpr};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: a random, well-typed expression over relations `r` (test
/// scheme, key `K`) and `r2` (other scheme, key `K2`), exercising every
/// index-eligible shape: literal TIME-SLICEs, key-equality σWHEN/σIF,
/// NATURAL-JOIN, plus the plain operators.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::rel("r")),
        Just(Expr::rel("r2")),
        // NATJOIN of the two base relations: no common attributes, so it
        // degenerates to a product over lifespan intersections — still a
        // good planner case (no key probe possible).
        Just(Expr::NaturalJoin(
            Box::new(Expr::rel("r")),
            Box::new(Expr::rel("r2")),
        )),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        let key_pred = (0i64..6).prop_map(|k| Predicate::eq_value("K", k));
        let value_pred = (
            0i64..4,
            prop_oneof![
                Just(Comparator::Eq),
                Just(Comparator::Le),
                Just(Comparator::Gt)
            ],
        )
            .prop_map(|(c, op)| Predicate::attr_op_value("V", op, c));
        let mixed_pred = (key_pred.clone(), value_pred.clone()).prop_map(|(k, v)| k.and(v));
        let pred = prop_oneof![key_pred, value_pred, mixed_pred];
        let lifespan = common::lifespan_strategy().prop_map(LifespanExpr::Literal);
        prop_oneof![
            (inner.clone(), pred.clone()).prop_map(|(e, p)| Expr::SelectWhen {
                input: Box::new(e),
                predicate: p,
            }),
            (
                inner.clone(),
                pred.clone(),
                prop_oneof![Just(Quantifier::Exists), Just(Quantifier::Forall)]
            )
                .prop_map(|(e, p, q)| Expr::SelectIf {
                    input: Box::new(e),
                    predicate: p,
                    quantifier: q,
                    lifespan: None,
                }),
            (inner.clone(), lifespan).prop_map(|(e, l)| Expr::TimeSlice {
                input: Box::new(e),
                lifespan: l,
            }),
            inner.clone().prop_map(|e| e.project(["K", "V", "W"])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Union(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Intersection(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Difference(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn planned_evaluation_matches_plain_evaluation(
        e in expr_strategy(),
        r in relation_strategy(),
        r2 in other_relation_strategy(),
    ) {
        // Expressions mixing the two schemes can be ill-typed (e.g. union
        // of incompatible schemes); both evaluators must then fail alike.
        let mut map = BTreeMap::new();
        map.insert("r".to_string(), r);
        map.insert("r2".to_string(), r2);
        let plain = eval_expr(&e, &map);

        let src = IndexedRelations::new(map.clone());
        let (optimized, _) = optimize(&e);
        let planned = eval_plan(&plan(&optimized, &src), &src);

        match (plain, planned) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (Ok(_), Err(err)) => panic!("plain succeeded, planner failed on {e}: {err:?}"),
            (Err(err), Ok(_)) => panic!("planner succeeded, plain failed on {e}: {err:?}"),
        }
    }

    /// Interleaved writes and queries against a `Database`: the inserts
    /// maintain the indexes incrementally (no invalidation, no rebuild),
    /// and after *every* write each random expression must still evaluate
    /// identically through the planner and through plain scans.
    #[test]
    fn equivalence_holds_under_interleaved_inserts(
        e in expr_strategy(),
        r in relation_strategy(),
        r2 in other_relation_strategy(),
        growth in proptest::collection::vec(
            (common::lifespan_strategy(), common::segments_strategy(),
             common::segments_strategy()),
            1..4,
        ),
    ) {
        let mut db = hrdm_storage::Database::new();
        db.create_relation("r", r.scheme().clone()).unwrap();
        db.put_relation("r", r).unwrap();
        db.create_relation("r2", r2.scheme().clone()).unwrap();
        db.put_relation("r2", r2).unwrap();

        for (i, (life, v, w)) in growth.into_iter().enumerate() {
            // Keys 100+ never collide with relation_strategy's 0..5.
            let t = common::build_tuple(
                &common::test_scheme(), "K", 100 + i as i64, &life,
                &[("V", v), ("W", w)],
            );
            db.insert("r", t).unwrap();

            let mut map = BTreeMap::new();
            map.insert("r".to_string(), db.relation("r").unwrap().clone());
            map.insert("r2".to_string(), db.relation("r2").unwrap().clone());
            let plain = eval_expr(&e, &map);
            let (optimized, _) = optimize(&e);
            let planned = eval_plan(&plan(&optimized, &db), &db);
            match (plain, planned) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "after insert {}", i),
                (Err(_), Err(_)) => {}
                (Ok(_), Err(err)) =>
                    panic!("plain succeeded, planner failed on {e} after insert {i}: {err:?}"),
                (Err(err), Ok(_)) =>
                    panic!("planner succeeded, plain failed on {e} after insert {i}: {err:?}"),
            }
        }
    }
}
