//! The algebraic properties the paper asserts in §5, property-tested on
//! random *historical* relations (full temporal generality, not just the
//! snapshot reduction).

mod common;

use common::{other_relation_strategy, relation_strategy, semantically_equal};
use hrdm_core::prelude::*;
use proptest::prelude::*;

fn pred_v(op: Comparator, c: i64) -> Predicate {
    Predicate::attr_op_value("V", op, c)
}

fn pred_w(op: Comparator, c: i64) -> Predicate {
    Predicate::attr_op_value("W", op, c)
}

fn lifespan_lit() -> impl Strategy<Value = Lifespan> {
    common::lifespan_strategy()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- §5: "the commutativity of select" -------------------------------

    #[test]
    fn select_when_commutes(r in relation_strategy(), c1 in 0i64..4, c2 in 0i64..4) {
        let p = pred_v(Comparator::Eq, c1);
        let q = pred_w(Comparator::Le, c2);
        let pq = select_when(&select_when(&r, &p).unwrap(), &q).unwrap();
        let qp = select_when(&select_when(&r, &q).unwrap(), &p).unwrap();
        prop_assert_eq!(pq, qp);
    }

    #[test]
    fn select_if_commutes(r in relation_strategy(), c1 in 0i64..4, c2 in 0i64..4) {
        let p = pred_v(Comparator::Ge, c1);
        let q = pred_w(Comparator::Ne, c2);
        let pq = select_if(
            &select_if(&r, &p, Quantifier::Exists, None).unwrap(),
            &q,
            Quantifier::Exists,
            None,
        )
        .unwrap();
        let qp = select_if(
            &select_if(&r, &q, Quantifier::Exists, None).unwrap(),
            &p,
            Quantifier::Exists,
            None,
        )
        .unwrap();
        prop_assert_eq!(pq, qp);
    }

    // ---- §5: select-when fusion (σW_p ∘ σW_q = σW_{p∧q}) -----------------

    #[test]
    fn select_when_fuses_to_conjunction(r in relation_strategy(), c1 in 0i64..4, c2 in 0i64..4) {
        let p = pred_v(Comparator::Eq, c1);
        let q = pred_w(Comparator::Gt, c2);
        let nested = select_when(&select_when(&r, &p).unwrap(), &q).unwrap();
        let fused = select_when(&r, &p.clone().and(q.clone())).unwrap();
        prop_assert_eq!(nested, fused);
    }

    // ---- §5: "the distribution of select over the binary set-theoretic
    // operators" -----------------------------------------------------------

    #[test]
    fn select_if_distributes_over_union(
        r1 in relation_strategy(),
        r2 in relation_strategy(),
        c in 0i64..4,
    ) {
        let p = pred_v(Comparator::Eq, c);
        let lhs = select_if(&union(&r1, &r2).unwrap(), &p, Quantifier::Exists, None).unwrap();
        let rhs = union(
            &select_if(&r1, &p, Quantifier::Exists, None).unwrap(),
            &select_if(&r2, &p, Quantifier::Exists, None).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn select_if_distributes_over_difference(
        r1 in relation_strategy(),
        r2 in relation_strategy(),
        c in 0i64..4,
    ) {
        // σ(r1 − r2) = σ(r1) − r2 for whole-tuple selection.
        let p = pred_v(Comparator::Le, c);
        let lhs =
            select_if(&difference(&r1, &r2).unwrap(), &p, Quantifier::Exists, None).unwrap();
        let rhs = difference(
            &select_if(&r1, &p, Quantifier::Exists, None).unwrap(),
            &r2,
        )
        .unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    // ---- §5: "the distribution of TIMESLICE over the binary set-theoretic
    // operators" (safe for ∪ under set semantics) --------------------------

    #[test]
    fn timeslice_distributes_over_union(
        r1 in relation_strategy(),
        r2 in relation_strategy(),
        l in lifespan_lit(),
    ) {
        let lhs = timeslice(&union(&r1, &r2).unwrap(), &l);
        let rhs = union(&timeslice(&r1, &l), &timeslice(&r2, &l)).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    // ---- §5: "commutativity of TIMESLICE with both flavors of SELECT" ----

    #[test]
    fn timeslice_commutes_with_select_when(
        r in relation_strategy(),
        l in lifespan_lit(),
        c in 0i64..4,
    ) {
        let p = pred_v(Comparator::Eq, c);
        let lhs = timeslice(&select_when(&r, &p).unwrap(), &l);
        let rhs = select_when(&timeslice(&r, &l), &p).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn timeslice_of_select_if_bounded(
        r in relation_strategy(),
        l in lifespan_lit(),
        c in 0i64..4,
    ) {
        // σIF(τ_L(r), p, ∃, None) = τ_L(σIF(r, p, ∃, Some(L))): bounding the
        // quantifier replays the slice.
        let p = pred_v(Comparator::Eq, c);
        let lhs = select_if(&timeslice(&r, &l), &p, Quantifier::Exists, None).unwrap();
        let rhs = timeslice(
            &select_if(&r, &p, Quantifier::Exists, Some(&l)).unwrap(),
            &l,
        );
        prop_assert_eq!(lhs, rhs);
    }

    // ---- TIME-SLICE composition -------------------------------------------

    #[test]
    fn timeslice_composes_by_intersection(
        r in relation_strategy(),
        l1 in lifespan_lit(),
        l2 in lifespan_lit(),
    ) {
        let nested = timeslice(&timeslice(&r, &l1), &l2);
        let direct = timeslice(&r, &l1.intersect(&l2));
        prop_assert_eq!(&nested, &direct);
        // And commutes.
        let flipped = timeslice(&timeslice(&r, &l2), &l1);
        prop_assert_eq!(nested, flipped);
    }

    // ---- §5: "the commutativity of the natural join" ----------------------

    #[test]
    fn natural_join_commutes_semantically(
        r1 in relation_strategy(),
        r2 in other_relation_strategy(),
    ) {
        let ab = natural_join(&r1, &r2).unwrap();
        let ba = natural_join(&r2, &r1).unwrap();
        prop_assert!(semantically_equal(&ab, &ba));
    }

    // ---- §4.6: the equijoin is the θ-join at equality ---------------------

    #[test]
    fn equijoin_is_theta_eq(r1 in relation_strategy(), r2 in other_relation_strategy()) {
        let a = equijoin(&r1, &r2, &"V".into(), &"X".into()).unwrap();
        let b = theta_join(&r1, &r2, &"V".into(), Comparator::Eq, &"X".into()).unwrap();
        prop_assert_eq!(a, b);
    }

    // ---- §5: joins are null-free, products are not necessarily ------------

    #[test]
    fn joins_are_null_free(r1 in relation_strategy(), r2 in other_relation_strategy()) {
        // The paper's §5 claim assumes model-level totality (every value
        // total over its vls); partiality already present in an operand is
        // not a join-introduced null, so totalize first.
        let r1 = common::totalize(&r1);
        let r2 = common::totalize(&r2);
        let j = theta_join(&r1, &r2, &"V".into(), Comparator::Le, &"X".into()).unwrap();
        prop_assert_eq!(null_volume(&j), 0);
        let n = natural_join(&r1, &r2).unwrap();
        prop_assert_eq!(null_volume(&n), 0);
    }

    // ---- §5: "the JOIN operations … [are] equivalent to the appropriate
    // SELECT-WHEN of the Cartesian product, and thus no nulls result" ------

    #[test]
    fn theta_join_is_select_when_of_product(
        r1 in relation_strategy(),
        r2 in other_relation_strategy(),
    ) {
        let direct = theta_join(&r1, &r2, &"V".into(), Comparator::Le, &"X".into()).unwrap();
        let via_product = select_when(
            &cartesian_product(&r1, &r2).unwrap(),
            &Predicate::cmp(Operand::attr("V"), Comparator::Le, Operand::attr("X")),
        )
        .unwrap();
        prop_assert_eq!(direct, via_product);
    }

    // ---- §5: the union-flavored join is "essentially equivalent to a
    // SELECT-IF of the Cartesian product" ----------------------------------

    #[test]
    fn union_join_is_select_if_of_product(
        r1 in relation_strategy(),
        r2 in other_relation_strategy(),
    ) {
        let direct =
            theta_join_union(&r1, &r2, &"V".into(), Comparator::Le, &"X".into()).unwrap();
        let via_product = select_if(
            &cartesian_product(&r1, &r2).unwrap(),
            &Predicate::cmp(Operand::attr("V"), Comparator::Le, Operand::attr("X")),
            Quantifier::Exists,
            None,
        )
        .unwrap();
        prop_assert_eq!(direct, via_product);
    }

    // ---- Object-based set ops respect keys --------------------------------

    #[test]
    fn union_o_of_key_disjoint_relations_is_plain_union(r in relation_strategy()) {
        // Shift keys of a copy so the two relations share no objects.
        let scheme = r.scheme().clone();
        let shifted: Vec<Tuple> = r
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut b = Tuple::builder(t.lifespan().clone())
                    .constant("K", 1000 + i as i64);
                for (attr, tv) in t.values() {
                    if attr.name() != "K" {
                        b = b.value(attr.clone(), tv.clone());
                    }
                }
                b.finish(&scheme).unwrap()
            })
            .collect();
        let r2 = Relation::with_tuples(scheme, shifted).unwrap();
        let uo = union_o(&r, &r2).unwrap();
        let u = union(&r, &r2).unwrap();
        prop_assert_eq!(uo, u);
    }

    #[test]
    fn object_difference_with_self_is_empty(r in relation_strategy()) {
        prop_assert!(difference_o(&r, &r).unwrap().is_empty());
        // And object intersection with self gives back every non-empty tuple.
        let io = intersection_o(&r, &r).unwrap();
        prop_assert_eq!(io.len(), r.iter().filter(|t| t.bears_information()).count());
    }

    // ---- WHEN homomorphisms ------------------------------------------------

    #[test]
    fn when_of_union_is_union_of_whens(r1 in relation_strategy(), r2 in relation_strategy()) {
        let lhs = when(&union(&r1, &r2).unwrap());
        let rhs = when(&r1).union(&when(&r2));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn when_of_timeslice_is_within_the_slice(r in relation_strategy(), l in lifespan_lit()) {
        let sliced = when(&timeslice(&r, &l));
        prop_assert!(l.contains_lifespan(&sliced));
        prop_assert_eq!(&sliced, &when(&r).intersect(&l));
    }

    // ---- PROJECT laws -------------------------------------------------------

    #[test]
    fn project_is_idempotent_and_fuses(r in relation_strategy()) {
        let x = [Attribute::new("K"), Attribute::new("V")];
        let y = [Attribute::new("V")];
        let once = project(&r, &x).unwrap();
        prop_assert_eq!(&project(&once, &x).unwrap(), &once);
        let nested = project(&once, &y).unwrap();
        let direct = project(&r, &y).unwrap();
        prop_assert_eq!(nested, direct);
    }
}
