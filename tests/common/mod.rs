//! Shared generators and helpers for the workspace integration tests.
//!
//! Each test binary compiles this module independently and uses a subset of
//! the helpers, so unused-code lints are suppressed here.
#![allow(dead_code)]

use hrdm_core::prelude::*;
use proptest::prelude::*;

/// Universe of test time points.
pub const UNIVERSE: (i64, i64) = (0, 40);

/// The standard test scheme: `r(K*: int, V: int, W: int)` over the universe.
pub fn test_scheme() -> Scheme {
    let era = Lifespan::interval(UNIVERSE.0, UNIVERSE.1);
    Scheme::builder()
        .key_attr("K", ValueKind::Int, era.clone())
        .attr("V", HistoricalDomain::int(), era.clone())
        .attr("W", HistoricalDomain::int(), era)
        .build()
        .expect("test scheme is well-formed")
}

/// A second scheme with disjoint attributes, for products and joins:
/// `s(K2*: int, X: int)`.
pub fn other_scheme() -> Scheme {
    let era = Lifespan::interval(UNIVERSE.0, UNIVERSE.1);
    Scheme::builder()
        .key_attr("K2", ValueKind::Int, era.clone())
        .attr("X", HistoricalDomain::int(), era)
        .build()
        .expect("test scheme is well-formed")
}

/// Strategy: an arbitrary lifespan within the universe.
pub fn lifespan_strategy() -> impl Strategy<Value = Lifespan> {
    prop::collection::vec((UNIVERSE.0..=UNIVERSE.1, 0i64..=10), 1..4).prop_map(|pairs| {
        Lifespan::from_intervals(
            pairs
                .into_iter()
                .map(|(lo, len)| Interval::of(lo, (lo + len).min(UNIVERSE.1))),
        )
    })
}

/// Strategy: a piecewise-constant int function, clipped to `within` at use.
pub fn segments_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec((UNIVERSE.0..=UNIVERSE.1, 0i64..=8, 0i64..4), 0..4).prop_map(|raw| {
        // Make segments disjoint by sorting and clipping each to start
        // after the previous one ends.
        let mut segs: Vec<(i64, i64, i64)> = Vec::new();
        let mut cursor = UNIVERSE.0;
        let mut sorted = raw;
        sorted.sort_by_key(|&(lo, _, _)| lo);
        for (lo, len, v) in sorted {
            let lo = lo.max(cursor);
            let hi = (lo + len).min(UNIVERSE.1);
            if lo > UNIVERSE.1 || lo > hi {
                continue;
            }
            segs.push((lo, hi, v));
            cursor = hi + 2;
        }
        segs
    })
}

/// Builds a valid tuple on `scheme` with the given key, lifespan, and raw
/// segment data (clipped to `vls` per attribute).
#[allow(clippy::type_complexity)]
pub fn build_tuple(
    scheme: &Scheme,
    key_attr: &str,
    key: i64,
    life: &Lifespan,
    attr_segments: &[(&str, Vec<(i64, i64, i64)>)],
) -> Tuple {
    let mut b = Tuple::builder(life.clone()).constant(key_attr, key);
    for (attr, segs) in attr_segments {
        let tv = TemporalValue::of(
            &segs
                .iter()
                .map(|&(lo, hi, v)| (lo, hi, Value::Int(v)))
                .collect::<Vec<_>>(),
        );
        let vls = life.intersect(
            scheme
                .als(&Attribute::new(*attr))
                .expect("attribute exists in test scheme"),
        );
        b = b.value(*attr, tv.restrict(&vls));
    }
    b.finish(scheme).expect("generated tuple is valid")
}

/// Strategy: a valid relation on [`test_scheme`] with up to 5 tuples,
/// distinct keys.
pub fn relation_strategy() -> impl Strategy<Value = Relation> {
    prop::collection::vec(
        (
            lifespan_strategy(),
            segments_strategy(),
            segments_strategy(),
        ),
        0..5,
    )
    .prop_map(|tuples| {
        let scheme = test_scheme();
        let built: Vec<Tuple> = tuples
            .into_iter()
            .enumerate()
            .map(|(i, (life, v, w))| {
                build_tuple(&scheme, "K", i as i64, &life, &[("V", v), ("W", w)])
            })
            .collect();
        Relation::with_tuples(scheme, built).expect("distinct keys by construction")
    })
}

/// Strategy: a valid relation on [`other_scheme`].
pub fn other_relation_strategy() -> impl Strategy<Value = Relation> {
    prop::collection::vec((lifespan_strategy(), segments_strategy()), 0..5).prop_map(|tuples| {
        let scheme = other_scheme();
        let built: Vec<Tuple> = tuples
            .into_iter()
            .enumerate()
            .map(|(i, (life, x))| build_tuple(&scheme, "K2", i as i64, &life, &[("X", x)]))
            .collect();
        Relation::with_tuples(scheme, built).expect("distinct keys by construction")
    })
}

/// Restricts every tuple to the region where **all** its attributes are
/// defined — the "total over `vls`" reading the paper's model level assumes.
/// Information-free tuples are dropped.
pub fn totalize(r: &Relation) -> Relation {
    let tuples: Vec<Tuple> = r
        .iter()
        .map(|t| {
            let mut defined = t.lifespan().clone();
            for tv in t.values().values() {
                defined = defined.intersect(&tv.domain());
            }
            t.restrict(&defined)
        })
        .filter(|t| t.bears_information())
        .collect();
    Relation::with_tuples(r.scheme().clone(), tuples).expect("totalizing preserves keys")
}

/// Semantic equality of relations irrespective of attribute order in the
/// scheme: same attribute names with same ALS, same multiset of tuples.
pub fn semantically_equal(a: &Relation, b: &Relation) -> bool {
    use std::collections::BTreeMap;
    let names = |r: &Relation| -> BTreeMap<String, Lifespan> {
        r.scheme()
            .attrs()
            .iter()
            .map(|d| (d.name().name().to_string(), d.lifespan().clone()))
            .collect()
    };
    if names(a) != names(b) {
        return false;
    }
    let canon = |r: &Relation| -> Vec<String> {
        let mut rows: Vec<String> = r
            .iter()
            .map(|t| {
                let mut cells: Vec<String> = t
                    .values()
                    .iter()
                    .map(|(attr, tv)| format!("{attr}={tv}"))
                    .collect();
                cells.sort();
                format!("l={} {}", t.lifespan(), cells.join(" "))
            })
            .collect();
        rows.sort();
        rows
    };
    canon(a) == canon(b)
}
